# Convenience targets for the IP-leasing reproduction.

PYTHON ?= python

.PHONY: install test coverage lint check check-warm ratchet-update docs bench bench-pipeline bench-xlarge bench-serve bench-stream bench-temporal report data clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

coverage:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/ --cov=repro --cov-report=term --cov-fail-under=90

lint: check
	$(PYTHON) scripts/lint.py

check:
	PYTHONPATH=src $(PYTHON) -m repro.cli check --fail-on warning
	PYTHONPATH=src $(PYTHON) -m repro.check.ratchet compare

# Prove the warm cache path is actually exercised: run check twice and
# assert the second run reused at least one cached module.
check-warm:
	PYTHONPATH=src $(PYTHON) -m repro.cli check --fail-on never >/dev/null
	PYTHONPATH=src $(PYTHON) -m repro.cli check --fail-on never --format json --stats \
		| $(PYTHON) -c "import json,sys; d=json.load(sys.stdin); \
assert d['cache']['reused'] > 0, d.get('cache'); \
print('warm cache OK: reused', d['cache']['reused'], 'modules,', d['cache']['analyzed'], 'analyzed')"

ratchet-update:
	PYTHONPATH=src $(PYTHON) -m repro.check.ratchet update

docs:
	PYTHONPATH=src $(PYTHON) -m repro.diagnostics > docs/DIAGNOSTICS.md
	PYTHONPATH=src $(PYTHON) -m repro.check > docs/STATIC_ANALYSIS.md

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-pipeline:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --out BENCH_pipeline.json

# Full internet-scale tier with the shared-memory engine and memory
# columns; takes minutes (world build dominates). See PERFORMANCE.md.
bench-xlarge:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --out BENCH_pipeline.json \
		--sizes xlarge --repeats 1 --no-extensions \
		--memory --spawn --shm

bench-serve:
	PYTHONPATH=src $(PYTHON) -m repro.cli loadgen --out BENCH_serve.json

bench-stream:
	PYTHONPATH=src $(PYTHON) -m repro.cli stream --size large --out BENCH_stream.json

bench-temporal:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench-temporal --size small --epochs 12 --out BENCH_temporal.json

report:
	$(PYTHON) -m repro.cli report --out REPORT.md

data:
	$(PYTHON) -m repro.cli generate --out data/

clean:
	rm -rf data/ REPORT.md .pytest_cache .benchmarks .repro-check-cache.json
	find . -name __pycache__ -type d -exec rm -rf {} +
