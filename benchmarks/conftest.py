"""Shared fixtures for the benchmark harness.

All benches run against the calibrated ``paper_world`` scenario (the
April 2024 Internet at 1/50 scale, seed 20240401).  The world and the
inference result are session-scoped: benches measure their own stage and
reuse everything upstream.
"""

import pytest

from repro.core import LeaseInferencePipeline, curate_reference
from repro.simulation import build_world, paper_world


@pytest.fixture(scope="session")
def world():
    """The calibrated synthetic April 2024 Internet."""
    return build_world(paper_world())


@pytest.fixture(scope="session")
def inference(world):
    """The full §5 inference over the world."""
    pipeline = LeaseInferencePipeline(
        world.whois,
        world.routing_table,
        world.relationships,
        world.as2org,
    )
    return pipeline.run()


@pytest.fixture(scope="session")
def reference(world):
    """The §5.3 curated reference dataset."""
    return curate_reference(
        world.whois,
        world.broker_registry,
        world.routing_table,
        not_leased_exclusions=world.curation_exclusions,
        negative_isp_org_ids=world.negative_isp_org_ids,
    )
