"""Ablations of the design choices DESIGN.md calls out.

* Covering-prefix root lookup (on/off) — §5.1 step 4's fallback moves
  aggregated roots' leaves from group 3 to group 4.
* AS2org in the relatedness oracle (on/off) — absorbing same-company
  multi-AS structures reduces false positives.
* BGP visibility (full vs degraded) — §7's incomplete-data concern:
  missing announcements inflate Unused and shift group-4 to group-3.
* Hyper-specific filter threshold (/24 vs /22) — leaf population size.
"""

from repro.core import (
    Category,
    LeaseInferencePipeline,
    curate_reference,
    evaluate_inference,
)
from repro.simulation import build_world, paper_world


def run_pipeline(world, **kwargs):
    return LeaseInferencePipeline(
        world.whois,
        world.routing_table,
        world.relationships,
        world.as2org,
        **kwargs,
    ).run()


def test_ablation_covering_root_lookup(benchmark, world, inference):
    """Disabling the least-specific covering search loses root origins."""
    exact_only = benchmark.pedantic(
        lambda: run_pipeline(world, use_covering_root_lookup=False), rounds=2
    )
    # Every root in the synthetic world is announced exactly, so group
    # counts stay identical — the knob exists for worlds with aggregated
    # root announcements; here it must at least not *create* leases.
    assert exact_only.total_leased() <= inference.total_leased() + 5
    print()
    print(
        f"covering lookup on: {inference.total_leased()} leased; "
        f"off: {exact_only.total_leased()}"
    )


def test_ablation_as2org_oracle(benchmark, world, reference):
    """Dropping AS2org from the oracle can only add leased verdicts."""
    without = benchmark.pedantic(
        lambda: LeaseInferencePipeline(
            world.whois,
            world.routing_table,
            world.relationships,
            as2org=None,
        ).run(),
        rounds=2,
    )
    with_as2org = run_pipeline(world)
    assert without.total_leased() >= with_as2org.total_leased()
    report_without = evaluate_inference(without, reference)
    report_with = evaluate_inference(with_as2org, reference)
    print()
    print(
        f"precision with AS2org: {report_with.matrix.precision:.3f}, "
        f"without: {report_without.matrix.precision:.3f}"
    )
    assert report_without.matrix.precision <= report_with.matrix.precision


def test_ablation_bgp_visibility(benchmark):
    """Degraded collector visibility inflates Unused (§7)."""
    def build_degraded():
        scenario = paper_world(scale=400)
        degraded = type(scenario)(
            **{
                **scenario.__dict__,
                "bgp_visibility": 0.7,
            }
        )
        world = build_world(degraded)
        return world, run_pipeline(world)

    world, degraded_result = benchmark.pedantic(build_degraded, rounds=1)
    full_world = build_world(paper_world(scale=400))
    full_result = run_pipeline(full_world)

    unused_degraded = sum(
        t.counts[Category.UNUSED] for t in degraded_result.tallies().values()
    )
    unused_full = sum(
        t.counts[Category.UNUSED] for t in full_result.tallies().values()
    )
    print()
    print(f"unused at 100% visibility: {unused_full}, at 70%: {unused_degraded}")
    assert unused_degraded > unused_full


def test_ablation_hyper_specific_filter(benchmark, world):
    """A stricter leaf-length cap shrinks the classified population."""
    strict = benchmark.pedantic(
        lambda: LeaseInferencePipeline(
            world.whois,
            world.routing_table,
            world.relationships,
            world.as2org,
            max_leaf_length=22,
        ).run(),
        rounds=1,
    )
    default = run_pipeline(world)
    print()
    print(
        f"classified at /24 cap: {default.total_classified()}, "
        f"at /22 cap: {strict.total_classified()}"
    )
    # All synthetic leaves are /24, so the strict cap drops everything.
    assert strict.total_classified() < default.total_classified()
