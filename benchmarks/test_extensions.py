"""Benches for the paper's future-work extensions (§7/§8).

* Legacy lease inference — recovers the legacy blocks §6.2 counts as
  false negatives.
* Longitudinal churn — lease-market dynamics between two epochs.
* RPKI validation profile — leased announcements validate VALID far more
  often than the background (the §6.4 bypass effect).
"""

import dataclasses

from repro.bgp import RoutingTable
from repro.core import (
    RelatednessOracle,
    compare_epochs,
    infer_leases,
    infer_legacy_leases,
    validation_profile,
)
from repro.simulation import TruthKind


def test_legacy_lease_inference(benchmark, world):
    oracle = RelatednessOracle(world.relationships, world.as2org)
    verdicts = benchmark.pedantic(
        infer_legacy_leases,
        args=(world.whois, world.routing_table, oracle),
        rounds=3,
    )

    legacy_truth = {
        entry.prefix
        for entry in world.ground_truth.of_kind(TruthKind.LEASED_LEGACY)
    }
    leased = {inf.prefix for inf in verdicts if inf.is_leased}
    print()
    print(
        f"legacy blocks: {len(verdicts)}, inferred leased: {len(leased)}, "
        f"ground-truth legacy leases: {len(legacy_truth)}"
    )
    # The extension recovers every §6.2 legacy false negative.
    assert legacy_truth <= leased


def test_longitudinal_churn(benchmark, world, inference):
    # Epoch 2: withdraw 10% of leases, re-lease 10% to new origins.
    leased = sorted(inference.leased(), key=lambda inf: inf.prefix)
    ended = {inf.prefix for inf in leased[:: 10]}
    re_leased = {inf.prefix for inf in leased[5 :: 10]}
    table2 = RoutingTable()
    for prefix, origins in world.routing_table.items():
        if prefix in ended:
            continue
        for origin in origins:
            table2.add_route(
                prefix, 64_000 if prefix in re_leased else origin
            )
    later = infer_leases(
        world.whois, table2, world.relationships, world.as2org
    )

    churn = benchmark.pedantic(
        compare_epochs, args=(inference, later), rounds=3
    )
    print()
    print(
        f"ended={len(churn.ended_leases)} new={len(churn.new_leases)} "
        f"persisting={len(churn.persisting)} re-leased="
        f"{len(churn.re_leased)} turnover={churn.turnover_rate:.2%}"
    )
    assert churn.ended_leases == frozenset(ended)
    assert re_leased <= churn.re_leased
    assert 0.05 <= churn.turnover_rate <= 0.15


def test_rpki_validation_profile(benchmark, world, inference):
    leased = inference.leased_prefixes()
    background = set(world.routing_table.prefixes()) - leased

    def profile_both():
        return (
            validation_profile(leased, world.routing_table, world.roas),
            validation_profile(background, world.routing_table, world.roas),
        )

    leased_profile, background_profile = benchmark.pedantic(
        profile_both, rounds=3
    )
    print()
    print(
        f"leased: {leased_profile.valid_share:.1%} valid "
        f"({leased_profile.covered_share:.1%} covered); background: "
        f"{background_profile.valid_share:.1%} valid"
    )
    # Facilitator RPKI management: leased space validates VALID at least
    # as often as the background, despite being more abused (§6.4).
    assert leased_profile.valid_share >= background_profile.valid_share
    assert leased_profile.valid > 0
