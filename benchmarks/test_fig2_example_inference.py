"""Fig. 2 — the worked single-prefix inference example (§5.1-§5.2).

The paper's diagram: GCI Network holds portable 213.210.0.0/18 with
RIR-assigned AS8851 and originates it in BGP; 213.210.33.0/24 is a
non-portable sub-assignment maintained by IPXO-MNT and originated by the
unrelated AS15169 — inferred leased (group 4).
"""

from repro.asdata import ASRelationships
from repro.bgp import P2C, RoutingTable
from repro.core import Category, LeaseInferencePipeline
from repro.net import AddressRange, Prefix
from repro.rir import RIR
from repro.whois import AutNumRecord, InetnumRecord, OrgRecord, WhoisDatabase


def build_fig2_registry():
    database = WhoisDatabase(RIR.RIPE)
    database.add(
        OrgRecord(rir=RIR.RIPE, org_id="ORG-GCI1-RIPE", name="GCI Network")
    )
    database.add(
        AutNumRecord(
            rir=RIR.RIPE, asn=8851, org_id="ORG-GCI1-RIPE", as_name="GCI-AS"
        )
    )
    database.add(
        InetnumRecord(
            rir=RIR.RIPE,
            range=AddressRange.parse("213.210.0.0 - 213.210.63.255"),
            status="ALLOCATED PA",
            org_id="ORG-GCI1-RIPE",
            maintainers=("MNT-GCICOM",),
        )
    )
    database.add(
        InetnumRecord(
            rir=RIR.RIPE,
            range=AddressRange.parse("213.210.33.0 - 213.210.33.255"),
            status="ASSIGNED PA",
            maintainers=("IPXO-MNT",),
        )
    )
    database.add(
        InetnumRecord(
            rir=RIR.RIPE,
            range=AddressRange.parse("213.210.2.0 - 213.210.3.255"),
            status="ASSIGNED PA",
            maintainers=("MNT-GCICOM",),
        )
    )
    table = RoutingTable()
    table.add_route(Prefix.parse("213.210.0.0/18"), 8851)
    table.add_route(Prefix.parse("213.210.33.0/24"), 15169)
    relationships = ASRelationships()
    relationships.add(3356, 8851, P2C)
    relationships.add(3356, 15169, P2C)
    return database, table, relationships


def run_fig2():
    database, table, relationships = build_fig2_registry()
    pipeline = LeaseInferencePipeline(database, table, relationships)
    return pipeline.run()


def test_fig2_example_inference(benchmark):
    result = benchmark(run_fig2)

    leased = result.lookup(Prefix.parse("213.210.33.0/24"))
    print()
    print(
        f"{leased.prefix}: {leased.category.label} (group "
        f"{leased.category.group}) — holder {leased.holder_org_id}, "
        f"facilitator {leased.facilitator_handles}, "
        f"originator AS{min(leased.originators)}"
    )

    # The leased prefix: origin AS15169 related to neither AS8851 role.
    assert leased.category is Category.LEASED_GROUP4
    assert leased.leaf_origins == {15169}
    assert leased.root_origins == {8851}
    assert leased.root_assigned_asns == {8851}
    assert leased.facilitator_handles == ("IPXO-MNT",)

    # The sibling /23: aggregated into the /18 (grey box in the figure).
    aggregated = result.lookup(Prefix.parse("213.210.2.0/23"))
    assert aggregated.category is Category.AGGREGATED_CUSTOMER
