"""Fig. 3 — RPKI and BGP behaviour of an IPXO-leased prefix (§6.5).

Paper: a two-year history in which successive lessee ASes hold the
prefix, with AS0 ROAs between leases "likely for marking the end of a
lease or abuse-related purposes".
"""

from repro.core import BgpOriginHistory, PeriodKind, build_timeline
from repro.reporting import render_timeline


def reconstruct_timeline(world):
    featured = world.featured
    bgp = BgpOriginHistory()
    for timestamp, origins in featured.bgp_observations:
        bgp.add_observation(timestamp, origins)
    return build_timeline(featured.prefix, bgp, featured.rpki_archive)


def test_fig3_lease_timeline(benchmark, world):
    timeline = benchmark(reconstruct_timeline, world)

    print()
    print(render_timeline(timeline))

    expected_leases = sum(
        1 for _begin, _end, lessee in world.featured.schedule if lessee
    )
    assert timeline.lease_count() == expected_leases
    assert expected_leases >= 4  # several distinct leases over two years

    # AS0 markers sit between leases, never first.
    assert len(timeline.as0_periods()) >= 2
    assert timeline.periods[0].kind is PeriodKind.LEASE

    # Each lease period binds a different lessee AS.
    lessees = [min(p.asns) for p in timeline.lease_periods()]
    assert len(set(lessees)) == len(lessees)

    # RPKI and BGP agree during leases: the origin is the authorized AS.
    for period in timeline.lease_periods():
        real_rpki = {asn for asn in period.rpki_asns if asn != 0}
        assert period.bgp_asns <= real_rpki or not period.bgp_asns
