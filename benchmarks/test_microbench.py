"""Engineering micro-benches for the hot substrate paths.

These document the throughput of the primitives the pipeline leans on:
radix-trie construction and lookups, range→CIDR decomposition, RPSL
parsing, and Gao-Rexford propagation.
"""

import random

from repro.asdata import ASRelationships
from repro.bgp import ASTopology, propagate
from repro.net import Prefix, PrefixTrie, range_to_prefixes
from repro.whois import parse_rpsl


def make_prefixes(count=20_000, seed=5):
    rng = random.Random(seed)
    prefixes = []
    for _index in range(count):
        length = rng.choice((16, 20, 22, 24))
        network = rng.getrandbits(32)
        mask = (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        prefixes.append(Prefix(network & mask, length))
    return prefixes


def test_trie_insert_throughput(benchmark):
    prefixes = make_prefixes()

    def build():
        trie = PrefixTrie()
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        return trie

    trie = benchmark(build)
    assert len(trie) > 10_000


def test_trie_covering_lookup_throughput(benchmark):
    prefixes = make_prefixes()
    trie = PrefixTrie()
    for index, prefix in enumerate(prefixes):
        trie.insert(prefix, index)
    probes = make_prefixes(count=5_000, seed=9)

    def lookups():
        hits = 0
        for probe in probes:
            if trie.covering(probe):
                hits += 1
        return hits

    hits = benchmark(lookups)
    assert 0 <= hits <= len(probes)


def test_range_decomposition_throughput(benchmark):
    rng = random.Random(3)
    ranges = []
    for _index in range(2_000):
        first = rng.getrandbits(32)
        last = min(0xFFFFFFFF, first + rng.getrandbits(16))
        ranges.append((first, last))

    def decompose():
        total = 0
        for first, last in ranges:
            total += len(list(range_to_prefixes(first, last)))
        return total

    total = benchmark(decompose)
    assert total >= len(ranges)


def test_rpsl_parse_throughput(benchmark):
    block = (
        "inetnum:        10.{a}.{b}.0 - 10.{a}.{b}.255\n"
        "netname:        NET-{a}-{b}\n"
        "country:        DE\n"
        "org:            ORG-{a}-RIPE\n"
        "status:         ASSIGNED PA\n"
        "mnt-by:         M{a}-MNT\n"
        "source:         RIPE\n\n"
    )
    text = "".join(
        block.format(a=a, b=b) for a in range(40) for b in range(50)
    )

    def parse():
        return sum(1 for _obj in parse_rpsl(text))

    count = benchmark(parse)
    assert count == 2_000


def test_propagation_throughput(benchmark):
    # A 3-tier topology with ~1.2k ASes.
    topology = ASTopology()
    rng = random.Random(4)
    tier1 = list(range(1, 6))
    for index, left in enumerate(tier1):
        for right in tier1[index + 1 :]:
            topology.add_p2p(left, right)
    tier2 = list(range(10, 70))
    for asn in tier2:
        for provider in rng.sample(tier1, 2):
            topology.add_p2c(provider, asn)
    edge = list(range(100, 1_300))
    for asn in edge:
        topology.add_p2c(rng.choice(tier2), asn)

    origins = rng.sample(edge, 50)

    def run():
        reached = 0
        for origin in origins:
            reached += len(propagate(topology, origin))
        return reached

    reached = benchmark(run)
    # Everyone reaches everyone on a connected topology.
    assert reached == len(origins) * len(topology)


def test_relationships_from_topology_throughput(benchmark):
    topology = ASTopology()
    rng = random.Random(6)
    for asn in range(2, 3_000):
        topology.add_p2c(rng.randrange(1, asn), asn)

    dataset = benchmark(ASRelationships.from_topology, topology)
    assert dataset.num_edges() == 2_998
