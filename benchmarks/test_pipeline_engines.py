"""Engine comparison benches: reference vs serial vs sharded-parallel.

The committed perf trajectory lives in ``BENCH_pipeline.json`` (written
by ``repro bench``); these pytest-benchmark cases are the interactive
counterpart for profiling one engine mode at a time on the calibrated
paper world.  Every case asserts equivalence with the reference run so
a fast-but-wrong engine can never post a number.
"""

import pytest

from repro.core import LeaseInferencePipeline


@pytest.fixture(scope="module")
def reference_result(world):
    return LeaseInferencePipeline(
        world.whois,
        world.routing_table,
        world.relationships,
        world.as2org,
    ).run_reference()


def _make_pipeline(world):
    return LeaseInferencePipeline(
        world.whois,
        world.routing_table,
        world.relationships,
        world.as2org,
    )


def test_reference_engine(benchmark, world, reference_result):
    result = benchmark.pedantic(
        lambda: _make_pipeline(world).run_reference(), rounds=2
    )
    assert result == reference_result


def test_serial_engine(benchmark, world, reference_result):
    result = benchmark.pedantic(
        lambda: _make_pipeline(world).run(workers=1), rounds=2
    )
    assert result == reference_result


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_engine(benchmark, world, reference_result, workers):
    result = benchmark.pedantic(
        lambda: _make_pipeline(world).run(workers=workers), rounds=2
    )
    assert result == reference_result
