"""Robustness: the reproduced shapes hold across seeds.

The paper's claims should not depend on one lucky draw of the synthetic
world.  This bench regenerates the world under several seeds (at a
smaller scale for speed) and checks that every headline shape — leased
share, region ordering, precision/recall band, DROP risk ratio — holds
in each.
"""

from repro.core import (
    curate_reference,
    drop_correlation,
    evaluate_inference,
    infer_leases,
)
from repro.rir import RIR
from repro.simulation import build_world, paper_world

SEEDS = (1, 7, 20240401)
SCALE = 150


def run_all_seeds():
    outcomes = []
    for seed in SEEDS:
        world = build_world(paper_world(seed=seed, scale=SCALE))
        result = infer_leases(
            world.whois,
            world.routing_table,
            world.relationships,
            world.as2org,
        )
        reference = curate_reference(
            world.whois,
            world.broker_registry,
            world.routing_table,
            not_leased_exclusions=world.curation_exclusions,
            negative_isp_org_ids=world.negative_isp_org_ids,
        )
        report = evaluate_inference(result, reference)
        drop = drop_correlation(result, world.routing_table, world.drop)
        outcomes.append((seed, world, result, report, drop))
    return outcomes


def test_shapes_hold_across_seeds(benchmark):
    outcomes = benchmark.pedantic(run_all_seeds, rounds=1)
    print()
    for seed, world, result, report, drop in outcomes:
        share = result.total_leased() / world.routing_table.num_prefixes()
        print(
            f"seed {seed}: leased {100 * share:.1f}%, "
            f"precision {report.matrix.precision:.2f}, "
            f"recall {report.matrix.recall:.2f}, "
            f"drop ratio {drop.risk_ratio:.1f}x"
        )
        # Headline shapes, per seed.
        assert 0.03 <= share <= 0.06
        assert report.matrix.precision >= 0.9
        assert 0.6 <= report.matrix.recall <= 0.95
        assert drop.risk_ratio > 2.0
        leased = {rir: result.tally(rir).leased for rir in RIR}
        assert leased[RIR.RIPE] > leased[RIR.ARIN] > leased[RIR.APNIC]
        assert leased[RIR.AFRINIC] >= leased[RIR.LACNIC]
