"""Pipeline scaling: generation and inference cost vs world size.

Not a paper experiment — an engineering bench documenting that both the
generator and the inference scale roughly linearly in the number of
blocks, so the 1/50-scale default is a convenience, not a ceiling.
"""

import pytest

from repro.core import LeaseInferencePipeline
from repro.simulation import build_world, paper_world


@pytest.mark.parametrize("scale", [400, 100])
def test_world_generation_scaling(benchmark, scale):
    scenario = paper_world(scale=scale)
    world = benchmark.pedantic(build_world, args=(scenario,), rounds=1)
    assert world.whois.total_inetnums() > scenario.total_leaves
    print()
    print(
        f"scale 1/{scale}: {world.whois.total_inetnums():,} blocks, "
        f"{world.routing_table.num_prefixes():,} BGP prefixes"
    )


@pytest.mark.parametrize("scale", [400, 100])
def test_inference_scaling(benchmark, scale):
    world = build_world(paper_world(scale=scale))

    def run():
        return LeaseInferencePipeline(
            world.whois,
            world.routing_table,
            world.relationships,
            world.as2org,
        ).run()

    result = benchmark.pedantic(run, rounds=2)
    assert result.total_classified() > 0
    leaves_per_second = result.total_classified() / benchmark.stats["mean"]
    print()
    print(
        f"scale 1/{scale}: {result.total_classified():,} leaves classified "
        f"({leaves_per_second:,.0f} leaves/s)"
    )
    assert leaves_per_second > 1_000
