"""§6.1 — comparison with the Prehn et al. maintainer baseline.

Paper: the maintainer-difference heuristic (leased iff leaf maintainer
differs from the parent's) produces false positives on customer blocks
registered under the customer's own maintainer and false negatives when
holders lease under their own maintainer — but it does catch inactive
leases, which the BGP-grounded method files under Unused.
"""

from repro.core import ConfusionMatrix, maintainer_baseline
from repro.simulation import TruthKind


def test_sec61_baseline_comparison(benchmark, world, inference, reference):
    baseline = benchmark.pedantic(
        maintainer_baseline, args=(world.whois,), rounds=3
    )

    ours = inference.leased_prefixes()
    truth = world.ground_truth

    # Score both methods against ground truth over all labelled leaves.
    our_matrix = ConfusionMatrix()
    base_matrix = ConfusionMatrix()
    for entry in truth:
        if entry.kind is TruthKind.LEASED_LEGACY:
            continue  # outside both methods' tree
        actual = entry.kind.is_leased
        our_matrix.add_prediction(actual, entry.prefix in ours)
        base_matrix.add_prediction(
            actual, baseline.get(entry.prefix, False)
        )

    print()
    print(
        f"ours:     precision={our_matrix.precision:.3f} "
        f"recall={our_matrix.recall:.3f}"
    )
    print(
        f"baseline: precision={base_matrix.precision:.3f} "
        f"recall={base_matrix.recall:.3f}"
    )

    # Shape: our method is far more precise.
    assert our_matrix.precision > base_matrix.precision + 0.1

    # Shape: the baseline catches inactive leases we miss.
    inactive = [
        entry.prefix for entry in truth.of_kind(TruthKind.LEASED_INACTIVE)
    ]
    baseline_catches = sum(1 for prefix in inactive if baseline.get(prefix))
    ours_catches = sum(1 for prefix in inactive if prefix in ours)
    assert ours_catches == 0
    assert baseline_catches > len(inactive) * 0.5

    # Shape: customer-own-maintainer blocks are baseline FPs, not ours.
    customer_kinds = (
        TruthKind.AGGREGATED_CUSTOMER,
        TruthKind.ISP_CUSTOMER,
        TruthKind.DELEGATED_CUSTOMER,
    )
    baseline_fps = 0
    our_fps = 0
    for kind in customer_kinds:
        for entry in truth.of_kind(kind):
            if baseline.get(entry.prefix):
                baseline_fps += 1
            if entry.prefix in ours:
                our_fps += 1
    assert baseline_fps > 100  # the 15% own-maintainer customers
    assert our_fps == 0
