"""§6.3 — overlap between lease originators and serial BGP hijackers.

Paper: 2.9% of the 9,217 lease originators are serial hijackers; those
ASes originate 13.3% of all leased prefixes, versus 3.1% of non-leased
prefixes — leased space is disproportionately announced by hijackers.
Also: M247/Stark/Datacamp-style hosters top the originator ranking, and
IPXO is a top-three facilitator in RIPE, ARIN, and APNIC.
"""

from repro.core import hijacker_overlap, top_facilitators, top_originators
from repro.reporting import render_hijacker_stats
from repro.rir import RIR
from repro.simulation.world import GLOBAL_BROKER_NAME


def test_sec63_serial_hijackers(benchmark, world, inference):
    stats = benchmark.pedantic(
        hijacker_overlap,
        args=(inference, world.routing_table, world.hijackers),
        rounds=3,
    )

    print()
    print(render_hijacker_stats(stats))

    # Shape: a small minority of originators, but an outsized prefix share.
    assert 0.01 <= stats.originator_share <= 0.10
    assert 0.08 <= stats.leased_share <= 0.20
    assert stats.leased_share > 2 * stats.non_leased_share

    # Shape: the named hosting providers top the RIPE originator ranking.
    ranking = top_originators(inference, k=5)[RIR.RIPE]
    top_asns = [asn for asn, _count in ranking]
    named_hosting = set(world.topology.asns()[:0])  # placeholder: resolve via as2org
    named = {
        asn
        for asn in top_asns
        if world.as2org.org_name(world.as2org.org_of(asn) or "")
        in (
            "M247 Europe SRL",
            "Stark Industries Solutions LTD",
            "Datacamp Limited",
        )
    }
    assert len(named) >= 2

    # Shape: IPXO is the top facilitator in its three regions.
    facilitators = top_facilitators(inference, k=3)
    for rir in (RIR.RIPE, RIR.ARIN, RIR.APNIC):
        handles = [handle for handle, _count in facilitators[rir]]
        assert "IPXO-MNT" in handles, (rir, handles, GLOBAL_BROKER_NAME)
