"""§6.4 — potential abuse of leased prefixes.

Paper: 1.1% of leased prefixes are originated by Spamhaus ASN-DROP ASes
versus 0.2% of non-leased prefixes — "approximately five times more
likely".  ROAs covering leased prefixes name a blocklisted AS 1.6% of
the time versus 0.2% for non-leased space.
"""

from repro.core import drop_correlation, roa_abuse_analysis
from repro.reporting import render_drop_stats, render_roa_stats


def test_sec64_drop_correlation(benchmark, world, inference):
    stats = benchmark.pedantic(
        drop_correlation,
        args=(inference, world.routing_table, world.drop),
        rounds=3,
    )

    print()
    print(render_drop_stats(stats))

    # Shape: small absolute shares, large relative risk (paper ~5x).
    assert 0.005 <= stats.leased_share <= 0.03
    assert stats.non_leased_share <= 0.005
    assert 3.0 <= stats.risk_ratio <= 10.0


def test_sec64_roa_blocklist_analysis(benchmark, world, inference):
    leased = inference.leased_prefixes()
    non_leased = set(world.routing_table.prefixes()) - leased
    drop = world.drop

    def analyze():
        return (
            roa_abuse_analysis(leased, world.roas, drop),
            roa_abuse_analysis(non_leased, world.roas, drop),
        )

    leased_stats, non_leased_stats = benchmark.pedantic(analyze, rounds=3)

    print()
    print(render_roa_stats(leased_stats, non_leased_stats))

    # Shape: leased space has plenty of ROAs (paper: 31k for 47k prefixes)
    # and its ROAs are several times more likely to name a DROP AS.
    assert leased_stats.coverage >= 0.4
    assert leased_stats.roas_total > 300
    assert leased_stats.blocklisted_share > 3 * max(
        non_leased_stats.blocklisted_share, 1e-9
    )
    # Even more likely than the raw BGP origination share (§6.4's point).
    assert leased_stats.blocklisted_share >= 0.008
