"""§6.5 — defense against abuse: AS0 ROAs between leases.

Paper: IPXO publishes AS0 ROAs between leases of the same prefix,
making any announcement of the parked space RPKI-invalid (the Stop,
DROP, and ROA defense of Oliver et al.).
"""

from repro.core import BgpOriginHistory, build_timeline
from repro.rpki import ValidationState, validate_origin


def detect_as0_windows(world):
    featured = world.featured
    bgp = BgpOriginHistory()
    for timestamp, origins in featured.bgp_observations:
        bgp.add_observation(timestamp, origins)
    timeline = build_timeline(featured.prefix, bgp, featured.rpki_archive)
    return timeline.as0_periods()


def test_sec65_as0_defense(benchmark, world):
    as0_periods = benchmark(detect_as0_windows, world)

    featured = world.featured
    assert len(as0_periods) >= 2

    print()
    for period in as0_periods:
        print(
            f"AS0 window on {featured.prefix}: "
            f"[{period.start}, {period.end})"
        )

    # During every AS0 window, ANY origination of the prefix is
    # RPKI-invalid — including by past and future lessees.
    lessees = {
        lessee for _b, _e, lessee in featured.schedule if lessee is not None
    }
    for period in as0_periods:
        snapshot = featured.rpki_archive.snapshot_at(period.start)
        assert snapshot.has_as0(featured.prefix)
        for origin in sorted(lessees) + [65_000]:
            state = validate_origin(snapshot, featured.prefix, origin)
            assert state is ValidationState.INVALID

    # Outside the AS0 windows the authorized lessee validates cleanly.
    first_lease = featured.schedule[0]
    snapshot = featured.rpki_archive.snapshot_at(first_lease[0])
    assert (
        validate_origin(snapshot, featured.prefix, first_lease[2])
        is ValidationState.VALID
    )
