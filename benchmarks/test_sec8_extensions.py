"""Benches for the §8 discussion items.

* Geolocation inconsistency — leased space geolocates inconsistently
  across databases (the IPXO four-continents anecdote).
* Hijack-detection confusion — re-leases dominate origin-change alarms,
  the false-alarm burden §8 warns about.
* MRT end-to-end — the RIB survives a round trip through the binary
  TABLE_DUMP_V2 archives collectors actually publish.
"""

from repro.bgp import RoutingTable, read_mrt, write_mrt
from repro.core import (
    AlarmAttribution,
    attribute_alarms,
    geo_consistency,
    infer_leases,
    origin_changes,
    risk_ratio_ci,
)
from repro.simulation.geo import build_geo_databases


def test_sec8_geolocation_inconsistency(benchmark, world, inference):
    databases = build_geo_databases(world)
    leased = inference.leased_prefixes()
    background = set(world.routing_table.prefixes()) - leased

    def analyze():
        return (
            geo_consistency(leased, databases),
            geo_consistency(background, databases),
        )

    leased_stats, background_stats = benchmark.pedantic(analyze, rounds=3)

    print()
    print(
        f"leased: {leased_stats.inconsistent_share:.1%} inconsistent, "
        f"{leased_stats.multi_continent_share:.1%} multi-continent, "
        f"max spread {leased_stats.max_continent_spread} continents"
    )
    print(
        f"background: {background_stats.inconsistent_share:.1%} "
        f"inconsistent, {background_stats.multi_continent_share:.1%} "
        "multi-continent"
    )
    # Shape: leased space far less consistent; some blocks span >=4
    # continents across the five databases (the paper's anecdote).
    assert leased_stats.inconsistent_share > 0.8
    assert background_stats.inconsistent_share < 0.3
    assert leased_stats.max_continent_spread >= 4
    assert (
        leased_stats.multi_continent_share
        > 3 * background_stats.multi_continent_share
    )


def test_sec8_hijack_alarm_confusion(benchmark, world, inference):
    # Epoch two: a quarter of leases turn over; two genuine hijacks occur.
    leased = sorted(inference.leased_prefixes())
    re_leased = set(leased[::4])
    background = [
        prefix
        for prefix in world.routing_table.prefixes()
        if prefix not in set(leased)
    ]
    hijacked = set(background[:2])
    hijacker_asn = 65_066
    later = RoutingTable()
    for prefix, origins in world.routing_table.items():
        for origin in origins:
            later.add_route(prefix, 64_000 if prefix in re_leased else origin)
    for prefix in hijacked:
        later.add_route(prefix, hijacker_asn)

    later_result = infer_leases(
        world.whois, later, world.relationships, world.as2org
    )
    hijackers = type(world.hijackers)(
        sorted(set(world.hijackers.asns()) | {hijacker_asn})
    )

    def analyze():
        changes = origin_changes(world.routing_table, later)
        return attribute_alarms(changes, inference, later_result, hijackers)

    report = benchmark.pedantic(analyze, rounds=3)
    print()
    print(
        f"{report.total} origin-change alarms: "
        f"{report.count(AlarmAttribution.LEASE_CHURN)} lease churn, "
        f"{report.count(AlarmAttribution.HIJACKER)} hijacker, "
        f"{report.count(AlarmAttribution.UNEXPLAINED)} unexplained"
    )
    # Shape: lease churn dominates the alarm stream (§8's warning), but
    # the genuine hijacks are still surfaced.
    assert report.lease_share > 0.9
    assert report.count(AlarmAttribution.HIJACKER) == len(hijacked)


def test_mrt_pipeline_round_trip(benchmark, world, inference):
    entries = world.to_table_dump_entries()

    def round_trip():
        return RoutingTable.from_entries(read_mrt(write_mrt(entries)))

    table = benchmark.pedantic(round_trip, rounds=1)
    assert table.num_prefixes() == world.routing_table.num_prefixes()
    # Inference over the MRT-round-tripped table is identical.
    result = infer_leases(
        world.whois, table, world.relationships, world.as2org
    )
    assert result.leased_prefixes() == inference.leased_prefixes()
    print()
    print(
        f"MRT file: {len(write_mrt(entries)):,} bytes for "
        f"{table.num_prefixes():,} prefixes"
    )


def test_sec64_risk_ratio_significance(benchmark, world, inference):
    """The DROP risk ratio is significantly above 1 (bootstrap CI)."""
    from repro.core import drop_correlation

    stats = drop_correlation(inference, world.routing_table, world.drop)

    def compute_ci():
        return risk_ratio_ci(
            stats.leased_by_blocklisted,
            stats.leased_prefixes,
            stats.non_leased_by_blocklisted,
            stats.non_leased_prefixes,
        )

    ci = benchmark.pedantic(compute_ci, rounds=3)
    print()
    print(f"risk ratio {ci}")
    assert ci.contains(stats.risk_ratio)
    assert ci.low > 1.5  # robustly elevated, as the paper's 5x implies


def test_sec1_irr_hygiene(benchmark, world, inference):
    """§1 motivation: circulation leaves routing databases inaccurate —
    leased announcements mismatch their route objects far more often."""
    from repro.core.irr import irr_hygiene
    from repro.simulation.irr import build_route_registry

    registry = build_route_registry(world)
    leased = inference.leased_prefixes()
    background = set(world.routing_table.prefixes()) - leased

    def analyze():
        return (
            irr_hygiene(leased, world.routing_table, registry),
            irr_hygiene(background, world.routing_table, registry),
        )

    leased_stats, background_stats = benchmark.pedantic(analyze, rounds=3)
    print()
    print(
        f"stale route objects: leased {leased_stats.stale_share:.1%} vs "
        f"background {background_stats.stale_share:.1%}"
    )
    assert leased_stats.stale_share > 0.4
    assert background_stats.stale_share < 0.05
    assert leased_stats.stale_share > 5 * max(
        background_stats.stale_share, 1e-9
    )
