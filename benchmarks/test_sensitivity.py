"""Sensitivity of the evaluation to curation parameters.

Two sweeps the paper's §5.3 workflow implicitly fixes:

* the fuzzy-matching threshold for broker names — too strict loses the
  paper's 39 manually-matched brokers, too loose merges unrelated
  companies;
* the share of leases a registered broker facilitates — controls the
  reference dataset's size but should not move precision.
"""

import dataclasses

from repro.brokers import match_brokers
from repro.core import curate_reference, evaluate_inference, infer_leases
from repro.rir import RIR
from repro.simulation import build_world, paper_world


def test_fuzzy_threshold_sweep(benchmark, world):
    thresholds = (0.75, 0.88, 0.97)

    def sweep():
        outcomes = {}
        for threshold in thresholds:
            report = match_brokers(
                world.broker_registry.brokers(RIR.RIPE),
                world.whois[RIR.RIPE],
                fuzzy_threshold=threshold,
            )
            outcomes[threshold] = (
                report.exact_count,
                report.fuzzy_count,
                len(report.unmatched),
            )
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=2)
    print()
    for threshold, (exact, fuzzy, unmatched) in outcomes.items():
        print(
            f"threshold {threshold}: exact={exact} fuzzy={fuzzy} "
            f"unmatched={unmatched}"
        )
    # Exact matches are threshold-independent.
    exacts = {exact for exact, _f, _u in outcomes.values()}
    assert len(exacts) == 1
    # Stricter thresholds can only shrink the fuzzy bucket and grow the
    # unmatched one.
    fuzzies = [outcomes[t][1] for t in thresholds]
    assert fuzzies == sorted(fuzzies, reverse=True)
    unmatched = [outcomes[t][2] for t in thresholds]
    assert unmatched == sorted(unmatched)
    # Most registered brokers resolve at the default threshold (the
    # paper's absent-broker case stays unmatched).
    exact, fuzzy, missing = outcomes[0.88]
    assert exact + fuzzy >= missing


def test_broker_share_sweep(benchmark):
    shares = (0.15, 0.33, 0.6)

    def sweep():
        outcomes = {}
        for share in shares:
            scenario = dataclasses.replace(
                paper_world(scale=200), broker_facilitated_share=share
            )
            world = build_world(scenario)
            result = infer_leases(
                world.whois,
                world.routing_table,
                world.relationships,
                world.as2org,
            )
            reference = curate_reference(
                world.whois,
                world.broker_registry,
                world.routing_table,
                not_leased_exclusions=world.curation_exclusions,
                negative_isp_org_ids=world.negative_isp_org_ids,
            )
            report = evaluate_inference(result, reference)
            outcomes[share] = (
                len(reference.positives),
                report.matrix.precision,
            )
        return outcomes

    outcomes = benchmark.pedantic(sweep, rounds=1)
    print()
    for share, (positives, precision) in outcomes.items():
        print(
            f"broker share {share}: {positives} positives, "
            f"precision {precision:.3f}"
        )
    # More broker facilitation -> more positive labels ...
    positives = [outcomes[s][0] for s in shares]
    assert positives == sorted(positives)
    # ... while precision stays high throughout.
    assert all(precision >= 0.9 for _p, precision in outcomes.values())
