"""Table 1 — leased prefixes per inference group per RIR (§6.1).

Paper: 47,318 leased prefixes = 4.1% of 1,146,921 advertised prefixes;
RIPE largest, then ARIN, APNIC, AFRINIC, LACNIC; group-3 leases dominate
group-4 leases in RIPE while ARIN has the largest group-4 share.
"""

from repro.core import Category, LeaseInferencePipeline
from repro.reporting import render_table1
from repro.rir import RIR


def run_census(world):
    pipeline = LeaseInferencePipeline(
        world.whois, world.routing_table, world.relationships, world.as2org
    )
    return pipeline.run()


def test_table1_regional_census(benchmark, world):
    result = benchmark.pedantic(run_census, args=(world,), rounds=3)

    print()
    print(render_table1(result, world.routing_table.num_prefixes()))

    # Shape: leased share of all advertised prefixes near the paper's 4.1%.
    leased_share = result.total_leased() / world.routing_table.num_prefixes()
    assert 0.03 <= leased_share <= 0.06

    # Shape: leased *address space* is a much smaller slice than leased
    # prefix count (leases are small blocks) — the paper's 0.9% vs 4.1%.
    space_share = (
        result.leased_address_space()
        / world.routing_table.total_address_space()
    )
    print(
        f"leased address space: {100 * space_share:.2f}% of routed space "
        f"(paper: 0.9%)"
    )
    assert space_share < leased_share
    assert 0.001 <= space_share <= 0.03

    # Shape: regional ordering of leased counts matches Table 1.
    leased = {rir: result.tally(rir).leased for rir in RIR}
    assert leased[RIR.RIPE] > leased[RIR.ARIN] > leased[RIR.APNIC]
    assert leased[RIR.AFRINIC] > leased[RIR.LACNIC]

    # Shape: every category is populated in RIPE, and group-2 aggregated
    # customers dominate, as in the paper (204k of 356k).
    ripe = result.tally(RIR.RIPE)
    assert all(ripe.counts[category] > 0 for category in Category)
    assert ripe.counts[Category.AGGREGATED_CUSTOMER] > ripe.total * 0.4

    # Shape: ARIN has the largest group-4 leased count (paper: 5,633).
    group4 = {rir: result.tally(rir).counts[Category.LEASED_GROUP4] for rir in RIR}
    assert max(group4, key=group4.get) is RIR.ARIN
