"""Table 2 — confusion matrix against the curated reference (§6.2).

Paper: 14,856 validated prefixes; precision 0.98, recall 0.82,
specificity 0.98, accuracy 0.88.  False negatives are dominated by
inactive leases classified Unused (1,605) plus legacy blocks outside the
tree (138); false positives cluster on subsidiary ISP structures
(Vodafone, 110 of 121).
"""

from repro.core import curate_reference, evaluate_inference
from repro.reporting import render_table2


def run_evaluation(world, inference):
    reference = curate_reference(
        world.whois,
        world.broker_registry,
        world.routing_table,
        not_leased_exclusions=world.curation_exclusions,
        negative_isp_org_ids=world.negative_isp_org_ids,
    )
    return evaluate_inference(inference, reference), reference


def test_table2_evaluation(benchmark, world, inference):
    report, reference = benchmark.pedantic(
        run_evaluation, args=(world, inference), rounds=3
    )
    matrix = report.matrix

    print()
    print(render_table2(matrix))
    print(
        f"FN breakdown: {report.fn_unused} inactive (Unused), "
        f"{report.fn_invisible} legacy/invisible"
    )

    # Shape: high precision, recall dragged down by inactive leases.
    assert matrix.precision >= 0.95
    assert 0.70 <= matrix.recall <= 0.90
    assert matrix.specificity >= 0.95

    # Shape: the two FN modes of §6.2 and nothing else.
    assert report.fn_unused > 0
    assert report.fn_invisible > 0
    assert report.fn_unused + report.fn_invisible == matrix.fn

    # Shape: the FPs come from the subsidiary-ISP effect.
    assert matrix.fp >= 1
    assert len(report.fp_by_holder) >= 1

    # The reference dataset has both label polarities at scale.
    assert len(reference.positives) > 100
    assert len(reference.negatives) > 50
