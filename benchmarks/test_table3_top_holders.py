"""Table 3 — top 3 IP holders by inferred leases per RIR (§6.3).

Paper: Resilans AB tops RIPE, EGIHosting tops ARIN (PSINet second),
Cloud Innovation dominates AFRINIC with a huge gap to #2.
"""

from repro.core import top_holders
from repro.reporting import render_table3
from repro.rir import RIR


def test_table3_top_holders(benchmark, world, inference):
    ranking = benchmark.pedantic(
        top_holders, args=(inference, world.whois, 3), rounds=3
    )

    print()
    print(render_table3(ranking))

    assert ranking[RIR.RIPE][0][0] == "Resilans AB"
    assert ranking[RIR.ARIN][0][0] == "EGIHosting"
    assert ranking[RIR.ARIN][1][0] == "PSINet, Inc."
    assert ranking[RIR.AFRINIC][0][0] == "Cloud Innovation Ltd"

    # The AFRINIC gap: #1 far exceeds #2 (paper: 2,014 vs 38).
    afrinic = ranking[RIR.AFRINIC]
    assert afrinic[0][1] >= 10 * afrinic[1][1]

    # Every region has three ranked holders with positive counts.
    for rir in RIR:
        assert len(ranking[rir]) == 3
        assert all(count > 0 for _name, count in ranking[rir])
