#!/usr/bin/env python3
"""Abuse audit of leased address space (§6.3-§6.4).

Quantifies how much more likely leased prefixes are to be announced by
abusive ASes: overlap with serial BGP hijackers, origination by
Spamhaus ASN-DROP ASes, and ROAs that authorize blocklisted ASes.

Run with::

    python examples/abuse_audit.py [--scale 100]
"""

import argparse

from repro.core import (
    LeaseInferencePipeline,
    drop_correlation,
    hijacker_overlap,
    roa_abuse_analysis,
    top_originators,
)
from repro.reporting import (
    render_drop_stats,
    render_hijacker_stats,
    render_roa_stats,
)
from repro.rir import RIR
from repro.simulation import build_world, paper_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=50)
    parser.add_argument("--seed", type=int, default=20240401)
    args = parser.parse_args()

    world = build_world(paper_world(seed=args.seed, scale=args.scale))
    result = LeaseInferencePipeline(
        world.whois, world.routing_table, world.relationships, world.as2org
    ).run()
    drop = world.drop

    print(render_hijacker_stats(
        hijacker_overlap(result, world.routing_table, world.hijackers)
    ))
    print()
    print(render_drop_stats(
        drop_correlation(result, world.routing_table, drop)
    ))
    print()

    leased = result.leased_prefixes()
    non_leased = set(world.routing_table.prefixes()) - leased
    print(render_roa_stats(
        roa_abuse_analysis(leased, world.roas, drop),
        roa_abuse_analysis(non_leased, world.roas, drop),
    ))
    print()

    print("Top originators of leased prefixes (hosting providers):")
    for rir in (RIR.RIPE, RIR.ARIN):
        rows = []
        for asn, count in top_originators(result, k=5)[rir]:
            org = world.as2org.org_of(asn)
            name = world.as2org.org_name(org) if org else f"AS{asn}"
            flags = []
            if asn in world.hijackers:
                flags.append("hijacker")
            if asn in drop:
                flags.append("DROP")
            suffix = f" [{', '.join(flags)}]" if flags else ""
            rows.append(f"    AS{asn:<7} {name:<36} {count:>4}{suffix}")
        print(f"  {rir.name}:")
        print("\n".join(rows))

    print()
    print(
        "Monthly DROP snapshots used:",
        ", ".join(world.drop_archive.months()),
        f"(union: {len(drop)} ASes)",
    )


if __name__ == "__main__":
    main()
