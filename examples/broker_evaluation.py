#!/usr/bin/env python3
"""Broker-based evaluation: curate the reference dataset and score (§5.3/§6.2).

Walks the paper's evaluation workflow on the synthetic world:

1. match registered brokers to WHOIS organisations (exact + fuzzy names),
2. collect the blocks their maintainers manage,
3. exclude broker-as-ISP connectivity blocks (the manual filter),
4. add residential-ISP blocks as negative labels,
5. score the inference and break down the error modes,
6. compare against the Prehn et al. maintainer-difference baseline.

Run with::

    python examples/broker_evaluation.py [--scale 100]
"""

import argparse

from repro.core import (
    ConfusionMatrix,
    LeaseInferencePipeline,
    curate_reference,
    evaluate_inference,
    maintainer_baseline,
)
from repro.reporting import render_table2
from repro.rir import RIR
from repro.simulation import TruthKind, build_world, paper_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=50)
    parser.add_argument("--seed", type=int, default=20240401)
    args = parser.parse_args()

    world = build_world(paper_world(seed=args.seed, scale=args.scale))
    result = LeaseInferencePipeline(
        world.whois, world.routing_table, world.relationships, world.as2org
    ).run()

    reference = curate_reference(
        world.whois,
        world.broker_registry,
        world.routing_table,
        not_leased_exclusions=world.curation_exclusions,
        negative_isp_org_ids=world.negative_isp_org_ids,
    )

    print("Broker matching per registry:")
    for rir, report in reference.match_reports.items():
        print(
            f"  {rir.name:<8} exact={report.exact_count} "
            f"fuzzy={report.fuzzy_count} unmatched={len(report.unmatched)}"
        )
    print(
        f"Curated labels: {len(reference.positives)} leased, "
        f"{len(reference.negatives)} non-leased "
        f"({len(reference.excluded_not_leased)} broker blocks excluded "
        "as connectivity customers)"
    )
    print()

    report = evaluate_inference(result, reference)
    print(render_table2(report.matrix))
    print()
    print("Error anatomy (mirrors §6.2):")
    print(
        f"  {report.fn_unused} FNs are inactive leases classified Unused"
    )
    print(
        f"  {report.fn_invisible} FNs are legacy blocks outside the tree"
    )
    print(
        f"  {report.matrix.fp} FPs, clustered on: "
        f"{sorted(report.fp_by_holder)}"
    )
    print()

    # Baseline comparison over ground truth (§6.1).
    baseline = maintainer_baseline(world.whois)
    ours = result.leased_prefixes()
    our_matrix, base_matrix = ConfusionMatrix(), ConfusionMatrix()
    for entry in world.ground_truth:
        if entry.kind is TruthKind.LEASED_LEGACY:
            continue
        actual = entry.kind.is_leased
        our_matrix.add_prediction(actual, entry.prefix in ours)
        base_matrix.add_prediction(actual, baseline.get(entry.prefix, False))
    print("Against full ground truth (all generated leaves):")
    print(
        f"  this paper : precision={our_matrix.precision:.3f} "
        f"recall={our_matrix.recall:.3f}"
    )
    print(
        f"  Prehn 2020 : precision={base_matrix.precision:.3f} "
        f"recall={base_matrix.recall:.3f}"
    )


if __name__ == "__main__":
    main()
