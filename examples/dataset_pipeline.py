#!/usr/bin/env python3
"""File-based measurement pipeline: generate → write → load → infer.

Mirrors how the real study consumes downloaded datasets (§4): the world
is materialized to disk in native formats (RPSL/ARIN/LACNIC WHOIS dumps,
pipe-format table dumps, CAIDA serial-1 relationships, AS2org JSONL,
VRP CSV, Spamhaus JSONL, broker CSV), loaded back from files only, and
the inference runs on the loaded copies.

Run with::

    python examples/dataset_pipeline.py [--out /tmp/leasing-data]
"""

import argparse
import tempfile
from pathlib import Path

from repro.core import LeaseInferencePipeline
from repro.reporting import render_table1
from repro.simulation import build_world, paper_world
from repro.simulation.io import load_datasets, write_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument("--scale", type=int, default=100)
    parser.add_argument("--seed", type=int, default=20240401)
    args = parser.parse_args()
    out = args.out or Path(tempfile.mkdtemp(prefix="leasing-data-"))

    print(f"generating the world at 1/{args.scale} scale ...")
    world = build_world(paper_world(seed=args.seed, scale=args.scale))
    write_world(world, out)
    print(f"wrote datasets to {out}:")
    for path in sorted(out.rglob("*")):
        if path.is_file():
            size = path.stat().st_size
            print(f"  {path.relative_to(out)!s:<28} {size:>10,} bytes")
    print()

    print("loading everything back from disk ...")
    bundle = load_datasets(out)
    in_memory = world.routing_table.num_prefixes()
    reloaded = bundle.routing_table.num_prefixes()
    assert reloaded == in_memory, (reloaded, in_memory)
    print(
        f"  round trip OK: {reloaded:,} BGP prefixes, "
        f"{bundle.whois.total_inetnums():,} WHOIS blocks"
    )
    print()

    result = LeaseInferencePipeline(
        bundle.whois,
        bundle.routing_table,
        bundle.relationships,
        bundle.as2org,
    ).run()
    print(render_table1(result, bundle.routing_table.num_prefixes()))


if __name__ == "__main__":
    main()
