#!/usr/bin/env python3
"""Lease-period reconstruction for one prefix (Fig. 3, §6.5).

Replays two years of RPKI snapshots and BGP origin observations for an
IPXO-facilitated prefix, segments its history into lease periods and
AS0 "do not originate" gaps, and shows how the AS0 ROAs make any
announcement of the parked space RPKI-invalid.

Run with::

    python examples/lease_timeline.py
"""

import argparse
import datetime

from repro.core import BgpOriginHistory, build_timeline
from repro.reporting import render_timeline
from repro.rpki import ValidationState, validate_origin
from repro.simulation import build_world, paper_world


def day(timestamp: int) -> str:
    return datetime.datetime.utcfromtimestamp(timestamp).strftime("%Y-%m-%d")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=200)
    parser.add_argument("--seed", type=int, default=20240401)
    args = parser.parse_args()

    world = build_world(paper_world(seed=args.seed, scale=args.scale))
    featured = world.featured

    bgp = BgpOriginHistory()
    for timestamp, origins in featured.bgp_observations:
        bgp.add_observation(timestamp, origins)
    timeline = build_timeline(featured.prefix, bgp, featured.rpki_archive)

    print(render_timeline(timeline))
    print()

    print(f"Segmented history of {featured.prefix}:")
    for period in timeline.periods:
        end = day(period.end) if period.end is not None else "ongoing"
        asns = ", ".join(f"AS{a}" for a in sorted(period.asns)) or "-"
        print(
            f"  {day(period.start)} .. {end:<10}  "
            f"{period.kind.value:<5}  {asns}"
        )
    print()
    print(
        f"{timeline.lease_count()} distinct leases to "
        f"{len(timeline.distinct_lessee_asns())} ASes, separated by "
        f"{len(timeline.as0_periods())} AS0 windows"
    )
    print()

    # Demonstrate the §6.5 defense: in an AS0 window, everything is
    # invalid, so route-origin-validating networks drop the announcement.
    window = timeline.as0_periods()[0]
    snapshot = featured.rpki_archive.snapshot_at(window.start)
    attacker = 65_000
    state = validate_origin(snapshot, featured.prefix, attacker)
    assert state is ValidationState.INVALID
    print(
        f"During the AS0 window starting {day(window.start)}, an "
        f"announcement of {featured.prefix} by AS{attacker} validates as "
        f"{state.value.upper()} — ROV-enforcing networks drop it."
    )


if __name__ == "__main__":
    main()
