#!/usr/bin/env python3
"""Longitudinal lease-market dynamics (the paper's §8 future work).

Simulates two measurement epochs half a year apart: between them, some
leases end (blocks withdrawn or returned), some blocks are re-leased to
new lessees, and fresh leases appear on previously idle space.  The
churn analysis quantifies market turnover the way a longitudinal rerun
of the paper's pipeline would.

Run with::

    python examples/market_dynamics.py [--scale 100]
"""

import argparse

from repro.bgp import RoutingTable
from repro.core import Category, LeaseInferencePipeline, compare_epochs
from repro.rir import RIR
from repro.simulation import build_world, paper_world


def second_epoch_table(world, inference, rng_step: int = 7):
    """Derive the later epoch's routing table from the first.

    Every ``rng_step``-th lease ends; every other ``rng_step``-th is
    re-leased to a new origin; a handful of unused blocks become leases.
    """
    leased = sorted(inference.leased(), key=lambda inf: inf.prefix)
    ended = {inf.prefix for inf in leased[::rng_step]}
    re_leased = {inf.prefix for inf in leased[rng_step // 2 :: rng_step]}
    fresh = [
        inf.prefix
        for inf in inference.in_category(Category.UNUSED)[:: rng_step * 3]
    ]
    table = RoutingTable()
    for prefix, origins in world.routing_table.items():
        if prefix in ended:
            continue
        for origin in origins:
            table.add_route(
                prefix, 64_900 if prefix in re_leased else origin
            )
    for index, prefix in enumerate(fresh):
        table.add_route(prefix, 64_910 + (index % 5))
    return table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=50)
    parser.add_argument("--seed", type=int, default=20240401)
    args = parser.parse_args()

    world = build_world(paper_world(seed=args.seed, scale=args.scale))

    def infer(table):
        return LeaseInferencePipeline(
            world.whois, table, world.relationships, world.as2org
        ).run()

    epoch1 = infer(world.routing_table)
    epoch2 = infer(second_epoch_table(world, epoch1))
    churn = compare_epochs(epoch1, epoch2)

    print("Lease-market churn between the two epochs:")
    print(f"  epoch 1 leases : {epoch1.total_leased():,}")
    print(f"  epoch 2 leases : {epoch2.total_leased():,}")
    print(f"  ended          : {len(churn.ended_leases):,}")
    print(f"  new            : {len(churn.new_leases):,}")
    print(f"  persisting     : {len(churn.persisting):,}")
    print(f"  re-leased      : {len(churn.re_leased):,} (same block, new lessee)")
    print(f"  turnover rate  : {churn.turnover_rate:.1%}")
    print(f"  growth rate    : {churn.growth_rate:+.1%}")
    print()
    print("Per-region churn (new / ended / persisting / re-leased):")
    for rir in RIR:
        region = churn.by_rir[rir]
        print(
            f"  {rir.name:<8} {region.new:>4} / {region.ended:>4} / "
            f"{region.persisting:>4} / {region.re_leased:>4}"
        )


if __name__ == "__main__":
    main()
