#!/usr/bin/env python3
"""Quickstart: the paper's Fig. 2 worked example, end to end.

Builds a five-object WHOIS registry by hand (a holder, its ASN, a
portable /18 and two sub-assignments), a two-route BGP table, and an AS
relationship file, then runs the inference and explains each verdict.

Run with::

    python examples/quickstart.py
"""

from repro.asdata import ASRelationships
from repro.bgp import P2C, RoutingTable
from repro.core import LeaseInferencePipeline
from repro.net import AddressRange, Prefix
from repro.reporting import render_table1
from repro.rir import RIR
from repro.whois import AutNumRecord, InetnumRecord, OrgRecord, WhoisDatabase


def build_registry() -> WhoisDatabase:
    """The WHOIS side of Fig. 2: GCI Network and its sub-assignments."""
    database = WhoisDatabase(RIR.RIPE)
    database.add(
        OrgRecord(rir=RIR.RIPE, org_id="ORG-GCI1-RIPE", name="GCI Network")
    )
    database.add(
        AutNumRecord(
            rir=RIR.RIPE, asn=8851, org_id="ORG-GCI1-RIPE", as_name="GCI-AS"
        )
    )
    # The portable root: allocated to GCI by the RIPE NCC.
    database.add(
        InetnumRecord(
            rir=RIR.RIPE,
            range=AddressRange.parse("213.210.0.0 - 213.210.63.255"),
            status="ALLOCATED PA",
            org_id="ORG-GCI1-RIPE",
            maintainers=("MNT-GCICOM",),
            net_name="GCI-NET",
        )
    )
    # A sub-assignment maintained by a facilitator (IPXO).
    database.add(
        InetnumRecord(
            rir=RIR.RIPE,
            range=AddressRange.parse("213.210.33.0 - 213.210.33.255"),
            status="ASSIGNED PA",
            maintainers=("IPXO-MNT",),
            net_name="IPXO-LEASED",
        )
    )
    # An ordinary customer sub-assignment, maintained by GCI itself.
    database.add(
        InetnumRecord(
            rir=RIR.RIPE,
            range=AddressRange.parse("213.210.2.0 - 213.210.3.255"),
            status="ASSIGNED PA",
            maintainers=("MNT-GCICOM",),
            net_name="GCI-CUSTOMER",
        )
    )
    return database


def build_bgp() -> RoutingTable:
    """The routing side: GCI originates its /18; AS15169 the leased /24."""
    table = RoutingTable()
    table.add_route(Prefix.parse("213.210.0.0/18"), 8851)
    table.add_route(Prefix.parse("213.210.33.0/24"), 15169)
    return table


def build_relationships() -> ASRelationships:
    """Both ASes buy transit from AS3356 but are unrelated to each other."""
    relationships = ASRelationships()
    relationships.add(3356, 8851, P2C)
    relationships.add(3356, 15169, P2C)
    return relationships


def main() -> None:
    database = build_registry()
    pipeline = LeaseInferencePipeline(
        database, build_bgp(), build_relationships()
    )
    result = pipeline.run()

    print(render_table1(result))
    print()
    for inference in result:
        roles = (
            f"holder={inference.holder_org_id} "
            f"facilitator={','.join(inference.facilitator_handles)} "
            f"origins={sorted(inference.originators) or '-'}"
        )
        print(
            f"{str(inference.prefix):>18}  ->  "
            f"{inference.category.label:<20} (group "
            f"{inference.category.group})  {roles}"
        )
    print()
    leased = result.lookup(Prefix.parse("213.210.33.0/24"))
    print(
        "213.210.33.0/24 is inferred LEASED because its BGP origin "
        f"(AS{min(leased.leaf_origins)}) is related neither to the ASN "
        f"assigned to its address provider (AS{min(leased.root_assigned_asns)}) "
        "nor to the BGP origin of the portable parent prefix "
        f"(AS{min(leased.root_origins)})."
    )


if __name__ == "__main__":
    main()
