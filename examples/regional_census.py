#!/usr/bin/env python3
"""Regional leasing census: Table 1 and Table 3 on the synthetic Internet.

Synthesizes the calibrated April 2024 world (1/50 scale by default),
runs the full §5 inference over all five RIR databases, and prints the
paper's Table 1 (prefix counts per inference group per region) and
Table 3 (top IP holders per region).

Run with::

    python examples/regional_census.py [--scale 100] [--seed 1]
"""

import argparse

from repro.core import (
    LeaseInferencePipeline,
    holder_profiles,
    top_facilitators,
    top_holders,
)
from repro.reporting import render_table1, render_table3
from repro.rir import RIR
from repro.simulation import build_geo_databases, build_world, paper_world


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=50)
    parser.add_argument("--seed", type=int, default=20240401)
    args = parser.parse_args()

    print(f"synthesizing the Internet at 1/{args.scale} scale ...")
    world = build_world(paper_world(seed=args.seed, scale=args.scale))
    print(
        f"  {world.whois.total_inetnums():,} WHOIS blocks, "
        f"{world.routing_table.num_prefixes():,} BGP prefixes, "
        f"{len(world.topology):,} ASes"
    )
    print()

    pipeline = LeaseInferencePipeline(
        world.whois, world.routing_table, world.relationships, world.as2org
    )
    result = pipeline.run()

    print(render_table1(result, world.routing_table.num_prefixes()))
    print()
    print(render_table3(top_holders(result, world.whois, 3)))
    print()

    print("Top facilitators (leaf-block maintainers on leased prefixes):")
    facilitators = top_facilitators(result, k=3)
    for rir in RIR:
        rows = ", ".join(
            f"{handle} ({count})" for handle, count in facilitators[rir]
        )
        print(f"  {rir.name:<8} {rows}")

    print()
    print("Top-holder profiles (Table 3 narrative):")
    profiles = holder_profiles(
        result, world.whois, build_geo_databases(world), k=2
    )
    for rir in (RIR.RIPE, RIR.AFRINIC):
        for profile in profiles[rir]:
            destinations = ", ".join(
                f"{country} ({count})"
                for country, count in profile.top_countries(3)
            )
            print(
                f"  {rir.name:<8} {profile.name}: "
                f"{profile.leased_prefixes} leases to "
                f"{len(profile.lessee_asns)} ASes across "
                f"{profile.country_count} countries [{destinations}]"
            )

    total = result.total_leased()
    routed = world.routing_table.num_prefixes()
    print()
    print(
        f"=> {total:,} leased prefixes = {100 * total / routed:.1f}% of "
        f"{routed:,} advertised prefixes (paper: 47,318 = 4.1% of 1,146,921)"
    )


if __name__ == "__main__":
    main()
