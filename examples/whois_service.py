#!/usr/bin/env python3
"""Serve the synthetic registries over a real WHOIS (RFC 3912) socket.

Starts a TCP WHOIS server over a generated world's five databases and
issues client queries against it — the interactive counterpart of the
bulk-dump workflow: look up a leased prefix, see its facilitator
maintainer and the covering allocation, then pivot to the holder's AS.

Run with::

    python examples/whois_service.py
"""

from repro.core import LeaseInferencePipeline
from repro.simulation import build_world, small_world
from repro.whois.server import WhoisServer, whois_query


def main() -> None:
    world = build_world(small_world())
    result = LeaseInferencePipeline(
        world.whois, world.routing_table, world.relationships, world.as2org
    ).run()
    lease = sorted(result.leased(), key=lambda inf: inf.prefix)[0]

    with WhoisServer(world.whois) as server:
        host, port = server.address
        print(f"WHOIS server listening on {host}:{port}\n")

        queries = [
            str(lease.prefix),  # the leased block
            f"AS{min(lease.root_assigned_asns)}",  # the holder's AS
            lease.holder_org_id or "",  # the holder organisation
            "192.0.2.1",  # unregistered space
        ]
        for query in queries:
            print(f"$ whois -h {host} -p {port} {query!r}")
            response = whois_query(host, port, query)
            for line in response.splitlines():
                print(f"    {line}")
            print()

    print(
        f"(inference classifies {lease.prefix} as "
        f"{lease.category.label}, facilitated by "
        f"{', '.join(lease.facilitator_handles)})"
    )


if __name__ == "__main__":
    main()
