#!/usr/bin/env python
"""Repository lint gate: ruff + mypy when available, plus a built-in floor.

The container images used for CI and for offline reproduction do not
always ship ruff/mypy; ``make lint`` must still mean something there.
This runner therefore always enforces a tool-free floor —

* every ``.py`` file byte-compiles (``compileall``),
* no line exceeds the configured 88-column limit,
* no trailing whitespace, no hard tabs in source lines,

— and additionally runs ``ruff check`` and ``mypy`` (configured in
``pyproject.toml``) whenever those tools are importable.  A missing
tool is reported as skipped, not as a failure.
"""

from __future__ import annotations

import compileall
import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import Iterator, List

REPO = Path(__file__).resolve().parent.parent
SOURCE_DIRS = ("src", "tests", "benchmarks", "scripts")
MAX_LINE = 88


def _python_files() -> Iterator[Path]:
    for name in SOURCE_DIRS:
        root = REPO / name
        if root.is_dir():
            yield from sorted(root.rglob("*.py"))


def check_compile() -> List[str]:
    problems = []
    for name in SOURCE_DIRS:
        root = REPO / name
        if root.is_dir() and not compileall.compile_dir(
            str(root), quiet=2, force=False
        ):
            problems.append(f"{name}/: byte-compilation failed")
    return problems


def check_style_floor() -> List[str]:
    problems = []
    for path in _python_files():
        relative = path.relative_to(REPO)
        for number, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if len(line) > MAX_LINE:
                problems.append(
                    f"{relative}:{number}: line too long "
                    f"({len(line)} > {MAX_LINE})"
                )
            if line != line.rstrip():
                problems.append(
                    f"{relative}:{number}: trailing whitespace"
                )
            if "\t" in line:
                problems.append(f"{relative}:{number}: hard tab")
    return problems


def run_tool(module: str, *arguments: str) -> int:
    """Run an optional tool as ``python -m``; None-like 0 when absent."""
    if importlib.util.find_spec(module) is None:
        print(f"{module}: not installed, skipped")
        return 0
    command = [sys.executable, "-m", module, *arguments]
    print(f"$ {' '.join(command[1:])}")
    return subprocess.run(command, cwd=REPO).returncode


def main() -> int:
    failures = 0

    problems = check_compile() + check_style_floor()
    for problem in problems:
        print(problem)
    if problems:
        failures += 1
    print(f"floor checks: {'FAILED' if problems else 'ok'} "
          f"({sum(1 for _ in _python_files())} files)")

    if run_tool("ruff", "check", *SOURCE_DIRS):
        failures += 1
    if run_tool("mypy"):
        failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
