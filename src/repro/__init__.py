"""repro — a reproduction of "Sublet Your Subnet: Inferring IP Leasing in
the Wild" (Du, Fontugne, Testart, Snoeren, claffy — IMC 2024).

The package implements the paper's lease-inference methodology and every
substrate it consumes:

* :mod:`repro.net` — IPv4 primitives (prefixes, ranges, radix trie),
* :mod:`repro.whois` — per-RIR WHOIS formats and indexed databases,
* :mod:`repro.bgp` — routing tables, table dumps, topology, propagation,
* :mod:`repro.asdata` — AS relationships, AS2org, hijacker lists,
* :mod:`repro.rpki` — ROAs, archives, origin validation,
* :mod:`repro.abuse` — the Spamhaus ASN-DROP list,
* :mod:`repro.brokers` — broker registries and name matching,
* :mod:`repro.core` — the inference pipeline and all §6 analyses,
* :mod:`repro.simulation` — the synthetic Internet standing in for the
  paper's (unfetchable) bulk datasets,
* :mod:`repro.reporting` — paper-style table and figure rendering.

Quick start::

    from repro import build_world, infer_leases, small_world

    world = build_world(small_world())
    result = infer_leases(
        world.whois, world.routing_table, world.relationships, world.as2org
    )
    print(result.total_leased(), "leased prefixes")
"""

from .core import (
    Category,
    ConfusionMatrix,
    InferenceResult,
    LeaseInferencePipeline,
    build_timeline,
    curate_reference,
    drop_correlation,
    evaluate_inference,
    hijacker_overlap,
    infer_leases,
    maintainer_baseline,
    roa_abuse_analysis,
    top_facilitators,
    top_holders,
    top_originators,
)
from .net import AddressRange, Prefix, PrefixTrie
from .rir import ALL_RIRS, RIR
from .simulation import build_world, paper_world, small_world

__version__ = "1.0.0"

__all__ = [
    "ALL_RIRS",
    "AddressRange",
    "Category",
    "ConfusionMatrix",
    "InferenceResult",
    "LeaseInferencePipeline",
    "Prefix",
    "PrefixTrie",
    "RIR",
    "build_timeline",
    "build_world",
    "curate_reference",
    "drop_correlation",
    "evaluate_inference",
    "hijacker_overlap",
    "infer_leases",
    "maintainer_baseline",
    "paper_world",
    "roa_abuse_analysis",
    "small_world",
    "top_facilitators",
    "top_holders",
    "top_originators",
    "__version__",
]
