"""Abuse substrate: the Spamhaus ASN-DROP list and its monthly archive."""

from .dropdb import AsnDropEntry, AsnDropList, DropArchive

__all__ = ["AsnDropEntry", "AsnDropList", "DropArchive"]
