"""Spamhaus ASN-DROP list modelling.

The published ASN-DROP is JSON-lines, one record per blocklisted AS
(``{"asn": 400992, "rir": "arin", "asname": "...", "cc": ".."}``), and
the paper downloads monthly snapshots from February through May 2024
(§4).  :class:`AsnDropList` models one snapshot; :class:`DropArchive`
holds the monthly series.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

__all__ = ["AsnDropEntry", "AsnDropList", "DropArchive"]


@dataclass(frozen=True, order=True)
class AsnDropEntry:
    """One blocklisted AS."""

    asn: int
    asname: str = ""
    rir: str = ""
    cc: str = ""

    def __post_init__(self) -> None:
        if self.asn < 0:
            raise ValueError(f"negative ASN: {self.asn}")


class AsnDropList:
    """One ASN-DROP snapshot."""

    def __init__(self, entries: Iterable[AsnDropEntry] = ()) -> None:
        self._entries: Dict[int, AsnDropEntry] = {}
        for entry in entries:
            self._entries[entry.asn] = entry

    @classmethod
    def from_asns(cls, asns: Iterable[int]) -> "AsnDropList":
        """Build a snapshot from bare ASNs."""
        return cls(AsnDropEntry(asn=asn) for asn in asns)

    @classmethod
    def from_json(cls, text: str) -> "AsnDropList":
        """Parse JSON-lines text (metadata records without ``asn`` skipped)."""
        entries: List[AsnDropEntry] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "asn" not in record:
                continue  # Spamhaus appends a metadata/timestamp record
            entries.append(
                AsnDropEntry(
                    asn=int(record["asn"]),
                    asname=record.get("asname", ""),
                    rir=record.get("rir", ""),
                    cc=record.get("cc", ""),
                )
            )
        return cls(entries)

    def to_json(self) -> str:
        """Serialize to JSON-lines."""
        lines = []
        for entry in sorted(self._entries.values()):
            record = {"asn": entry.asn}
            if entry.asname:
                record["asname"] = entry.asname
            if entry.rir:
                record["rir"] = entry.rir
            if entry.cc:
                record["cc"] = entry.cc
            lines.append(json.dumps(record, sort_keys=True))
        return "\n".join(lines) + ("\n" if lines else "")

    def __contains__(self, asn: int) -> bool:
        return asn in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[AsnDropEntry]:
        return iter(sorted(self._entries.values()))

    def asns(self) -> FrozenSet[int]:
        """The blocklisted ASNs."""
        return frozenset(self._entries)


class DropArchive:
    """Monthly ASN-DROP snapshots keyed by ``YYYY-MM``."""

    def __init__(self) -> None:
        self._snapshots: Dict[str, AsnDropList] = {}

    def add_month(self, month: str, snapshot: AsnDropList) -> None:
        """Record the snapshot for *month* (``YYYY-MM``)."""
        _validate_month(month)
        self._snapshots[month] = snapshot

    def month(self, month: str) -> Optional[AsnDropList]:
        """The snapshot for *month*, or None."""
        return self._snapshots.get(month)

    def months(self) -> List[str]:
        """Available months, ascending."""
        return sorted(self._snapshots)

    def union(self) -> AsnDropList:
        """ASes blocklisted in any month (the paper's Feb-May union)."""
        merged: Dict[int, AsnDropEntry] = {}
        for month in self.months():
            for entry in self._snapshots[month]:
                merged.setdefault(entry.asn, entry)
        return AsnDropList(merged.values())

    def ever_listed(self, asn: int) -> bool:
        """True when *asn* appears in any monthly snapshot."""
        return any(asn in snapshot for snapshot in self._snapshots.values())

    def __len__(self) -> int:
        return len(self._snapshots)


def _validate_month(month: str) -> None:
    parts = month.split("-")
    if (
        len(parts) != 2
        or len(parts[0]) != 4
        or not parts[0].isdigit()
        or not parts[1].isdigit()
        or not 1 <= int(parts[1]) <= 12
    ):
        raise ValueError(f"month must be YYYY-MM, got {month!r}")
