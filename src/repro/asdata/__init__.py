"""AS metadata substrates: relationships, AS2org, and hijacker lists."""

from .as2org import AS2Org
from .hijackers import SerialHijackerList
from .relationships import ASRelationships

__all__ = ["AS2Org", "ASRelationships", "SerialHijackerList"]
