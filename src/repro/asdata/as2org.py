"""CAIDA AS-to-Organization (AS2org) dataset.

The published dataset is JSON-lines with two record types: organisation
records (``"type": "Organization"``) and ASN records (``"type": "ASN"``)
keyed to organisations by ``organizationId``.  The inference uses it to
treat ASes of the same organisation as related; §6.1/§7 note that missing
merger-and-acquisition coverage (the PSINet case) produces
misclassifications, which the scenario generator reproduces by omitting
selected mappings.
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = ["AS2Org"]


class AS2Org:
    """ASN → organisation mapping with same-organisation queries."""

    def __init__(self) -> None:
        self._org_of: Dict[int, str] = {}
        self._members: Dict[str, Set[int]] = {}
        self._org_names: Dict[str, str] = {}

    # -- construction ----------------------------------------------------
    def add_org(self, org_id: str, name: str = "") -> None:
        """Register an organisation."""
        self._members.setdefault(org_id, set())
        if name:
            self._org_names[org_id] = name

    def map_asn(self, asn: int, org_id: str) -> None:
        """Map *asn* to *org_id* (replacing any previous mapping)."""
        previous = self._org_of.get(asn)
        if previous is not None:
            self._members[previous].discard(asn)
        self._org_of[asn] = org_id
        self._members.setdefault(org_id, set()).add(asn)

    def remove_asn(self, asn: int) -> None:
        """Drop *asn* from the dataset (modelling dataset incompleteness)."""
        org_id = self._org_of.pop(asn, None)
        if org_id is not None:
            self._members[org_id].discard(asn)

    # -- JSONL format ---------------------------------------------------------
    @classmethod
    def from_jsonl(cls, text: str) -> "AS2Org":
        """Parse the CAIDA JSON-lines flavour."""
        dataset = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "Organization":
                dataset.add_org(
                    record["organizationId"], record.get("name", "")
                )
            elif kind == "ASN":
                dataset.map_asn(int(record["asn"]), record["organizationId"])
            # other record types are ignored
        return dataset

    def to_jsonl(self) -> str:
        """Serialize back to JSON-lines."""
        lines: List[str] = []
        for org_id in sorted(self._members):
            record = {"type": "Organization", "organizationId": org_id}
            name = self._org_names.get(org_id)
            if name:
                record["name"] = name
            lines.append(json.dumps(record, sort_keys=True))
        for asn in sorted(self._org_of):
            lines.append(
                json.dumps(
                    {
                        "type": "ASN",
                        "asn": str(asn),
                        "organizationId": self._org_of[asn],
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + ("\n" if lines else "")

    # -- queries -------------------------------------------------------------
    def org_of(self, asn: int) -> Optional[str]:
        """The organisation of *asn*, or None when unmapped."""
        return self._org_of.get(asn)

    def org_name(self, org_id: str) -> str:
        """Display name of *org_id* (empty when unknown)."""
        return self._org_names.get(org_id, "")

    def members(self, org_id: str) -> FrozenSet[int]:
        """ASes mapped to *org_id*."""
        return frozenset(self._members.get(org_id, ()))

    def same_org(self, left: int, right: int) -> bool:
        """True when both ASes map to the same organisation."""
        left_org = self._org_of.get(left)
        return left_org is not None and left_org == self._org_of.get(right)

    def asns(self) -> List[int]:
        """All mapped ASNs, ascending."""
        return sorted(self._org_of)

    def orgs(self) -> List[str]:
        """All organisation ids, ascending."""
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._org_of)
