"""Serial BGP hijacker list (Testart et al., IMC 2019).

The paper compares lease originators against "a list of 957 inferred
serial BGP hijackers" (§6.3).  This module models that list as a simple
set of ASNs with an on-disk format of one ASN per line plus ``#``
comments.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

__all__ = ["SerialHijackerList"]


class SerialHijackerList:
    """A set of ASes flagged as serial hijackers."""

    def __init__(self, asns: Iterable[int] = ()) -> None:
        self._asns: FrozenSet[int] = frozenset(asns)
        if any(asn < 0 for asn in self._asns):
            raise ValueError("negative ASN in hijacker list")

    @classmethod
    def from_text(cls, text: str) -> "SerialHijackerList":
        """Parse one-ASN-per-line text (``AS`` prefix tolerated)."""
        asns: List[int] = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line.upper().startswith("AS"):
                line = line[2:]
            asns.append(int(line))
        return cls(asns)

    def to_text(self) -> str:
        """Serialize to one ASN per line with a header comment."""
        lines = ["# serial BGP hijacker ASNs"]
        lines.extend(str(asn) for asn in sorted(self._asns))
        return "\n".join(lines) + "\n"

    def __contains__(self, asn: int) -> bool:
        return asn in self._asns

    def __len__(self) -> int:
        return len(self._asns)

    def __iter__(self):
        return iter(sorted(self._asns))

    def asns(self) -> FrozenSet[int]:
        """The flagged ASNs."""
        return self._asns
