"""CAIDA AS Relationships dataset (serial-1 format).

The file format is one edge per line, ``provider|customer|-1`` for
transit and ``peer|peer|0`` for settlement-free peering, with ``#``
comment headers.  The inference uses it as a relatedness oracle: the
classifier asks whether *any* relationship links two ASes (§5.2 groups 3
and 4).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..bgp.topology import P2C, P2P, ASTopology

__all__ = ["ASRelationships"]


class ASRelationships:
    """An immutable-ish view of inter-AS business relationships."""

    def __init__(self) -> None:
        self._rel: Dict[Tuple[int, int], int] = {}
        self._neighbors: Dict[int, Set[int]] = {}

    # -- construction ----------------------------------------------------
    def add(self, left: int, right: int, code: int) -> None:
        """Add one edge in CAIDA orientation (code P2C: left provides right)."""
        if code not in (P2C, P2P):
            raise ValueError(f"unknown relationship code: {code}")
        if left == right:
            raise ValueError(f"self relationship on AS{left}")
        self._rel[(left, right)] = code
        self._rel[(right, left)] = P2P if code == P2P else 1  # 1 = customer-of
        self._neighbors.setdefault(left, set()).add(right)
        self._neighbors.setdefault(right, set()).add(left)

    @classmethod
    def from_topology(
        cls,
        topology: ASTopology,
        exclude: Optional[Iterable[Tuple[int, int]]] = None,
    ) -> "ASRelationships":
        """Derive the dataset from a simulated topology.

        *exclude* drops specific ``(a, b)`` links (any orientation),
        modelling the incompleteness of BGP-inferred relationship data the
        paper discusses in §7.
        """
        excluded = set()
        for a, b in exclude or ():
            excluded.add((a, b))
            excluded.add((b, a))
        dataset = cls()
        for left, right, code in topology.edges():
            if (left, right) in excluded:
                continue
            dataset.add(left, right, code)
        return dataset

    # -- serial-1 text format ----------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "ASRelationships":
        """Parse serial-1 text (``a|b|code`` lines, ``#`` comments)."""
        dataset = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            if len(fields) < 3:
                raise ValueError(f"malformed relationship line: {line!r}")
            dataset.add(int(fields[0]), int(fields[1]), int(fields[2]))
        return dataset

    def to_text(self) -> str:
        """Serialize to serial-1 text with a CAIDA-style header."""
        lines = [
            "# format: <provider-as>|<customer-as>|-1",
            "# format: <peer-as>|<peer-as>|0",
        ]
        for (left, right), code in sorted(self._rel.items()):
            if code == P2C or (code == P2P and left < right):
                lines.append(f"{left}|{right}|{code}")
        return "\n".join(lines) + "\n"

    # -- queries -------------------------------------------------------------
    def relationship(self, left: int, right: int) -> Optional[int]:
        """The code from *left*'s perspective: P2C provider-of, 1
        customer-of, P2P peer — or None when unrelated/unobserved."""
        return self._rel.get((left, right))

    def are_related(self, left: int, right: int) -> bool:
        """True when any direct relationship links the two ASes."""
        return (left, right) in self._rel

    def neighbors(self, asn: int) -> FrozenSet[int]:
        """All ASes with any relationship to *asn*."""
        return frozenset(self._neighbors.get(asn, ()))

    def providers(self, asn: int) -> FrozenSet[int]:
        """Direct providers of *asn*."""
        return frozenset(
            other
            for other in self._neighbors.get(asn, ())
            if self._rel.get((other, asn)) == P2C
        )

    def customers(self, asn: int) -> FrozenSet[int]:
        """Direct customers of *asn*."""
        return frozenset(
            other
            for other in self._neighbors.get(asn, ())
            if self._rel.get((asn, other)) == P2C
        )

    def peers(self, asn: int) -> FrozenSet[int]:
        """Settlement-free peers of *asn*."""
        return frozenset(
            other
            for other in self._neighbors.get(asn, ())
            if self._rel.get((asn, other)) == P2P
        )

    def asns(self) -> List[int]:
        """All ASNs appearing in the dataset, ascending."""
        return sorted(self._neighbors)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate unique edges in CAIDA orientation."""
        for (left, right), code in sorted(self._rel.items()):
            if code == P2C or (code == P2P and left < right):
                yield left, right, code

    def num_edges(self) -> int:
        """Number of unique relationship edges."""
        return sum(1 for _edge in self.edges())
