"""Pipeline benchmark harness: the perf trajectory behind BENCH_pipeline.json.

Times the three stages of a full reproduction run — world generation,
tree build, classification — for every engine mode (the frozen
reference engine, the fast serial engine, and each requested parallel
worker count) over synthetic worlds of increasing size, and writes the
results as ``BENCH_pipeline.json`` so every future PR has a number to
beat.  Every mode's output is digested and checked equivalent to the
reference engine's; a benchmark that produces different classifications
reports ``"equivalent": false`` and exits non-zero.

Methodology notes (they matter on small machines):

* Each mode runs on a **fresh pipeline** instance.  Keeping a previous
  engine's allocation trees alive inflates fork copy-on-write costs for
  the parallel modes and would charge one mode for another's garbage.
* Results are digested and dropped immediately, and ``gc.collect()``
  runs between repeats, for the same reason.
* Wall times are best-of-``repeats``; throughput is classifiable
  leaves per second of full run (tree build + classify).
"""

from __future__ import annotations

import gc
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .core import LeaseInferencePipeline
from .core.results import InferenceResult
from .core.sharding import DEFAULT_SHARD_SIZE
from .simulation import BENCH_SIZES, bench_world, build_world

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_WORKER_COUNTS",
    "run_benchmark",
    "write_benchmark",
    "schema_shape",
]

SCHEMA_VERSION = 1

#: Parallel modes measured by default.
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (2, 4)

#: A digest of one result: enough to prove equivalence, small enough to
#: keep alive across modes without distorting fork costs.
_Digest = List[Tuple[str, int, int, str]]


def _digest(result: InferenceResult) -> _Digest:
    return [
        (
            inference.rir.name,
            inference.prefix.network,
            inference.prefix.length,
            inference.category.name,
        )
        for inference in result
    ]


def _bench_shard_size(leaves: int, workers: int) -> Optional[int]:
    """A shard size that actually exercises the pool on any world.

    Worlds larger than two default shards use the production default
    (``None``); smaller worlds get a size that still yields several
    shards per worker, so even the CI smoke run covers the fork path.
    """
    if leaves > 2 * DEFAULT_SHARD_SIZE:
        return None
    return max(16, leaves // (workers * 4) or 16)


def _time_mode(
    make_pipeline: Callable[[], LeaseInferencePipeline],
    run: Callable[[LeaseInferencePipeline], InferenceResult],
    repeats: int,
) -> Tuple[float, Dict[str, float], _Digest, Optional[Dict[str, object]]]:
    """Best wall time, its stage split, the digest, and cache stats."""
    best_wall: Optional[float] = None
    best_stages: Dict[str, float] = {}
    digest: _Digest = []
    cache: Optional[Dict[str, object]] = None
    for _ in range(max(1, repeats)):
        pipeline = make_pipeline()
        gc.collect()
        started = time.perf_counter()
        result = run(pipeline)
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_stages = dict(pipeline.timings)
            digest = _digest(result)
            try:
                cache = pipeline.cache_stats().as_dict()
            except RuntimeError:
                cache = None
        del result, pipeline
    assert best_wall is not None
    return best_wall, best_stages, digest, cache


def run_benchmark(
    sizes: Optional[Sequence[str]] = None,
    worker_counts: Iterable[int] = DEFAULT_WORKER_COUNTS,
    repeats: int = 2,
    seed: int = 20240401,
    quick: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the harness and return the ``BENCH_pipeline.json`` payload.

    ``quick`` is the CI smoke configuration: the small world only, one
    parallel mode, one repeat — seconds, not minutes.
    """

    def say(message: str) -> None:
        if log is not None:
            log(message)

    if quick:
        sizes = ["small"]
        worker_counts = (2,)
        repeats = 1
    sizes = list(sizes) if sizes is not None else list(BENCH_SIZES)
    worker_list = sorted(set(int(w) for w in worker_counts if int(w) > 1))

    worlds: List[Dict[str, object]] = []
    for size in sizes:
        say(f"[bench] building {size} world (seed {seed}) ...")
        started = time.perf_counter()
        world = build_world(bench_world(size, seed=seed))
        generate_s = time.perf_counter() - started

        def make_pipeline() -> LeaseInferencePipeline:
            return LeaseInferencePipeline(
                world.whois,
                world.routing_table,
                world.relationships,
                world.as2org,
            )

        say(f"[bench] {size}: generate {generate_s:.2f}s; reference run ...")
        ref_wall, ref_stages, ref_digest, _ = _time_mode(
            make_pipeline, lambda p: p.run_reference(), repeats
        )
        leaves = len(ref_digest)

        modes: List[Dict[str, object]] = [
            _mode_payload(
                "reference",
                workers=1,
                shard_size=None,
                wall=ref_wall,
                stages=ref_stages,
                leaves=leaves,
                ref_wall=ref_wall,
                serial_wall=None,
                cache=None,
                equivalent=True,
            )
        ]

        say(f"[bench] {size}: {leaves} leaves; serial run ...")
        serial_wall, serial_stages, serial_digest, serial_cache = _time_mode(
            make_pipeline, lambda p: p.run(workers=1), repeats
        )
        modes.append(
            _mode_payload(
                "serial",
                workers=1,
                shard_size=None,
                wall=serial_wall,
                stages=serial_stages,
                leaves=leaves,
                ref_wall=ref_wall,
                serial_wall=serial_wall,
                cache=serial_cache,
                equivalent=serial_digest == ref_digest,
            )
        )

        for workers in worker_list:
            shard_size = _bench_shard_size(leaves, workers)
            say(f"[bench] {size}: parallel-{workers} run ...")
            wall, stages, digest, cache = _time_mode(
                make_pipeline,
                lambda p, w=workers, s=shard_size: p.run(
                    workers=w, shard_size=s
                ),
                repeats,
            )
            modes.append(
                _mode_payload(
                    f"parallel-{workers}",
                    workers=workers,
                    shard_size=shard_size or DEFAULT_SHARD_SIZE,
                    wall=wall,
                    stages=stages,
                    leaves=leaves,
                    ref_wall=ref_wall,
                    serial_wall=serial_wall,
                    cache=cache,
                    equivalent=digest == ref_digest,
                )
            )

        worlds.append(
            {
                "size": size,
                "seed": seed,
                "classifiable_leaves": leaves,
                "routed_prefixes": world.routing_table.num_prefixes(),
                "stages": {"generate_s": round(generate_s, 4)},
                "modes": modes,
            }
        )
        del make_pipeline, world
        gc.collect()

    return {
        "schema": {"name": "BENCH_pipeline", "version": SCHEMA_VERSION},
        "config": {
            "seed": seed,
            "sizes": sizes,
            "workers": worker_list,
            "repeats": max(1, repeats),
            "quick": quick,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": _cpu_count(),
        },
        "worlds": worlds,
    }


def _mode_payload(
    mode: str,
    workers: int,
    shard_size: Optional[int],
    wall: float,
    stages: Dict[str, float],
    leaves: int,
    ref_wall: float,
    serial_wall: Optional[float],
    cache: Optional[Dict[str, object]],
    equivalent: bool,
) -> Dict[str, object]:
    return {
        "mode": mode,
        "workers": workers,
        "shard_size": shard_size,
        "wall_s": round(wall, 4),
        "leaves_per_s": round(leaves / wall, 1) if wall else 0.0,
        "speedup_vs_reference": round(ref_wall / wall, 2) if wall else 0.0,
        "speedup_vs_serial": (
            round(serial_wall / wall, 2)
            if serial_wall is not None and wall
            else None
        ),
        "stages": {name: round(value, 4) for name, value in stages.items()},
        "cache": cache,
        "equivalent": equivalent,
    }


def _cpu_count() -> int:
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        import os

        return os.cpu_count() or 1


def all_equivalent(report: Dict[str, object]) -> bool:
    """True when every mode of every world matched the reference."""
    return all(
        bool(mode["equivalent"])
        for world in report["worlds"]  # type: ignore[union-attr]
        for mode in world["modes"]  # type: ignore[index]
    )


def write_benchmark(report: Dict[str, object], path: Path) -> None:
    """Write the payload as pretty, key-stable JSON."""
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def schema_shape(value: object) -> object:
    """The payload with every number replaced by its type name.

    Two runs of the same configuration must produce identical shapes —
    that is the schema-determinism contract the tests pin (timings and
    throughputs differ run to run; keys, modes, and orderings may not).
    """
    if isinstance(value, dict):
        return {key: schema_shape(item) for key, item in value.items()}
    if isinstance(value, list):
        return [schema_shape(item) for item in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return type(value).__name__
    return value


def run_from_args(args) -> int:
    """CLI entry: ``repro bench``."""
    from .reporting import render_bench_report

    sizes = None
    if getattr(args, "sizes", None):
        sizes = [size.strip() for size in args.sizes.split(",") if size.strip()]
        unknown = [size for size in sizes if size not in BENCH_SIZES]
        if unknown:
            print(f"unknown bench sizes: {', '.join(unknown)} "
                  f"(expected {', '.join(BENCH_SIZES)})")
            return 2
    workers = DEFAULT_WORKER_COUNTS
    if getattr(args, "workers", None):
        try:
            workers = tuple(
                int(w) for w in str(args.workers).split(",") if w.strip()
            )
        except ValueError:
            print(f"bad --workers {args.workers!r}; expected e.g. 2,4")
            return 2
    report = run_benchmark(
        sizes=sizes,
        worker_counts=workers,
        repeats=args.repeats,
        seed=args.seed,
        quick=args.quick,
        log=print,
    )
    write_benchmark(report, args.out)
    print(render_bench_report(report))
    print(f"wrote {args.out}")
    if not all_equivalent(report):
        print("FAIL: a mode diverged from the reference engine")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    from .cli import main

    sys.exit(main(["bench"] + sys.argv[1:]))
