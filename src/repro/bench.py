"""Pipeline benchmark harness: the perf trajectory behind BENCH_pipeline.json.

Times the three stages of a full reproduction run — world generation,
tree build, classification — for every engine mode (the frozen
reference engine, the fast serial engine, and each requested parallel
worker count) over synthetic worlds of increasing size, then times the
legacy, RPKI, and longitudinal extension pipelines per engine off the
shared ``AnalysisContext``, and **appends** the run to the
``BENCH_pipeline.json`` trajectory so every future PR has a number to
beat and the history survives regeneration.  Every mode's output is
digested and checked equivalent to its reference engine; a benchmark
that produces different classifications reports ``"equivalent": false``
and exits non-zero.

Methodology notes (they matter on small machines):

* Each mode runs on a **fresh pipeline** instance.  Keeping a previous
  engine's allocation trees alive inflates fork copy-on-write costs for
  the parallel modes and would charge one mode for another's garbage.
* Results are digested and dropped immediately, and ``gc.collect()``
  runs between repeats, for the same reason.
* Wall times are best-of-``repeats``; throughput is classifiable
  leaves per second of full run (tree build + classify).
"""

from __future__ import annotations

import gc
import json
import platform
import random
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .core import (
    IncrementalEngine,
    LeaseInferencePipeline,
    LegacyLeasePipeline,
    RelatednessOracle,
    RpkiValidationPipeline,
    clone_routing_table,
    compare_epochs,
    compare_epochs_fast,
    replay_into_table,
    result_digest,
)
from .core.results import InferenceResult
from .core.sharding import DEFAULT_SHARD_SIZE
from .simulation import (
    BENCH_SIZES,
    DEFAULT_BENCH_SIZES,
    bench_world,
    build_world,
    bursts_from_replay,
    evolve_world,
    render_replay_log,
    simulate_update_bursts,
)

__all__ = [
    "SCHEMA_VERSION",
    "STREAM_SCHEMA_VERSION",
    "all_equivalent",
    "append_trajectory",
    "build_temporal_product",
    "load_trajectory",
    "run_benchmark",
    "run_stream_benchmark",
    "stream_from_args",
    "temporal_from_args",
    "write_benchmark",
    "schema_shape",
]

#: v2: per-world ``extensions`` section (legacy / RPKI / longitudinal
#: engine timings) and append-trajectory files — ``write_benchmark``
#: accumulates runs instead of overwriting (v1 payloads migrate to
#: ``runs[0]``).
#: v3: memory accounting — per-mode ``payload_bytes`` (what each spawn
#: worker unpickles) and ``segment_bytes`` (the shared-memory RIB),
#: ``--memory`` peak-RSS columns, spawn / shared-memory engine modes,
#: and a cpus-aware ``speedup_vs_serial`` that reports
#: ``"insufficient_cpus"`` instead of a misleading ratio when the host
#: has fewer cores than the mode has workers.
SCHEMA_VERSION = 3

#: Parallel modes measured by default.
DEFAULT_WORKER_COUNTS: Tuple[int, ...] = (2, 4)

#: A digest of one result: enough to prove equivalence, small enough to
#: keep alive across modes without distorting fork costs.
_Digest = List[Tuple[str, int, int, str]]


def _digest(result: InferenceResult) -> _Digest:
    return [
        (
            inference.rir.name,
            inference.prefix.network,
            inference.prefix.length,
            inference.category.name,
        )
        for inference in result
    ]


def _bench_shard_size(leaves: int, workers: int) -> Optional[int]:
    """A shard size that actually exercises the pool on any world.

    Worlds larger than two default shards use the production default
    (``None``); smaller worlds get a size that still yields several
    shards per worker, so even the CI smoke run covers the fork path.
    """
    if leaves > 2 * DEFAULT_SHARD_SIZE:
        return None
    return max(16, leaves // (workers * 4) or 16)


def _time_mode(
    make_pipeline: Callable[[], LeaseInferencePipeline],
    run: Callable[[LeaseInferencePipeline], InferenceResult],
    repeats: int,
    measure_payload: bool = False,
) -> Tuple[
    float,
    Dict[str, float],
    _Digest,
    Optional[Dict[str, object]],
    Optional[Dict[str, int]],
]:
    """Best wall time, its stage split, the digest, cache stats, and the
    worker-payload sizes recorded by the best run (shared-memory runs
    always record them; plain parallel runs only under
    ``measure_payload``)."""
    best_wall: Optional[float] = None
    best_stages: Dict[str, float] = {}
    digest: _Digest = []
    cache: Optional[Dict[str, object]] = None
    payload: Optional[Dict[str, int]] = None
    for _ in range(max(1, repeats)):
        pipeline = make_pipeline()
        pipeline.measure_payload = measure_payload
        gc.collect()
        started = time.perf_counter()
        result = run(pipeline)
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
            best_stages = dict(pipeline.timings)
            digest = _digest(result)
            payload = dict(pipeline.shm_stats) if pipeline.shm_stats else None
            try:
                cache = pipeline.cache_stats().as_dict()
            except RuntimeError:
                cache = None
        del result, pipeline
    assert best_wall is not None
    return best_wall, best_stages, digest, cache, payload


def _peak_rss() -> Tuple[Optional[int], Optional[int]]:
    """High-water RSS bytes of this process and its reaped children.

    ``ru_maxrss`` is a lifetime maximum, so per-mode values are
    monotonically non-decreasing across a bench run: a mode's number is
    the peak *up to and including* that mode.  The child figure covers
    terminated pool workers, which every parallel mode reaps before the
    reading is taken.  Linux reports kilobytes; returns ``(None, None)``
    where :mod:`resource` is unavailable.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-Unix
        return None, None
    unit = 1024 if sys.platform != "darwin" else 1
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * unit
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * unit
    return own, children


def run_benchmark(
    sizes: Optional[Sequence[str]] = None,
    worker_counts: Iterable[int] = DEFAULT_WORKER_COUNTS,
    repeats: int = 2,
    seed: int = 20240401,
    quick: bool = False,
    extensions: bool = True,
    memory: bool = False,
    spawn: bool = False,
    shm: bool = False,
    internet_scale: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run the harness and return one ``BENCH_pipeline.json`` run payload.

    ``quick`` is the CI smoke configuration: one parallel mode, one
    repeat, and — unless ``sizes`` is given explicitly — the small
    world only.  ``extensions`` additionally times the legacy, RPKI,
    and longitudinal pipelines per engine from the shared
    :class:`AnalysisContext` of the base run.  ``memory`` records peak
    RSS and spawn-payload bytes per mode; ``shm`` adds a
    ``parallel-N-shm`` (fork + shared-memory RIB) mode; ``spawn`` adds
    ``spawn-N`` and ``spawn-N-shm`` modes — the pair whose
    ``payload_bytes`` gap is the point of the shared-memory engine.
    ``internet_scale`` overrides the downsampling divisor of the
    ``xlarge`` / ``internet`` tiers (larger divisor, smaller world).
    """

    def say(message: str) -> None:
        if log is not None:
            log(message)

    if quick:
        sizes = list(sizes) if sizes else ["small"]
        worker_counts = (2,)
        repeats = 1
    sizes = list(sizes) if sizes is not None else list(DEFAULT_BENCH_SIZES)
    worker_list = sorted(set(int(w) for w in worker_counts if int(w) > 1))
    cpus = _cpu_count()

    worlds: List[Dict[str, object]] = []
    for size in sizes:
        say(f"[bench] building {size} world (seed {seed}) ...")
        started = time.perf_counter()
        scale = internet_scale if size in ("xlarge", "internet") else None
        world = build_world(bench_world(size, seed=seed, scale=scale))
        generate_s = time.perf_counter() - started

        def make_pipeline() -> LeaseInferencePipeline:
            return LeaseInferencePipeline(
                world.whois,
                world.routing_table,
                world.relationships,
                world.as2org,
            )

        say(f"[bench] {size}: generate {generate_s:.2f}s; reference run ...")
        ref_wall, ref_stages, ref_digest, _, _ = _time_mode(
            make_pipeline, lambda p: p.run_reference(), repeats
        )
        leaves = len(ref_digest)

        modes: List[Dict[str, object]] = [
            _mode_payload(
                "reference",
                workers=1,
                shard_size=None,
                wall=ref_wall,
                stages=ref_stages,
                leaves=leaves,
                ref_wall=ref_wall,
                serial_wall=None,
                cache=None,
                equivalent=True,
                cpus=cpus,
                memory=memory,
            )
        ]

        say(f"[bench] {size}: {leaves} leaves; serial run ...")
        serial_wall, serial_stages, serial_digest, serial_cache, _ = (
            _time_mode(make_pipeline, lambda p: p.run(workers=1), repeats)
        )
        modes.append(
            _mode_payload(
                "serial",
                workers=1,
                shard_size=None,
                wall=serial_wall,
                stages=serial_stages,
                leaves=leaves,
                ref_wall=ref_wall,
                serial_wall=serial_wall,
                cache=serial_cache,
                equivalent=serial_digest == ref_digest,
                cpus=cpus,
                memory=memory,
            )
        )

        for workers in worker_list:
            shard_size = _bench_shard_size(leaves, workers)
            variants: List[Tuple[str, Optional[str], bool]] = [
                (f"parallel-{workers}", None, False)
            ]
            if shm:
                variants.append((f"parallel-{workers}-shm", None, True))
            if spawn:
                variants.append((f"spawn-{workers}", "spawn", False))
                variants.append((f"spawn-{workers}-shm", "spawn", True))
            for mode_name, start_method, use_shm in variants:
                say(f"[bench] {size}: {mode_name} run ...")
                wall, stages, digest, cache, payload = _time_mode(
                    make_pipeline,
                    lambda p, w=workers, s=shard_size, m=start_method, u=use_shm: p.run(
                        workers=w, shard_size=s, start_method=m, use_shm=u
                    ),
                    repeats,
                    measure_payload=memory,
                )
                modes.append(
                    _mode_payload(
                        mode_name,
                        workers=workers,
                        shard_size=shard_size or DEFAULT_SHARD_SIZE,
                        wall=wall,
                        stages=stages,
                        leaves=leaves,
                        ref_wall=ref_wall,
                        serial_wall=serial_wall,
                        cache=cache,
                        equivalent=digest == ref_digest,
                        cpus=cpus,
                        memory=memory,
                        payload=payload,
                    )
                )

        world_payload: Dict[str, object] = {
            "size": size,
            "seed": seed,
            "classifiable_leaves": leaves,
            "routed_prefixes": world.routing_table.num_prefixes(),
            "stages": {"generate_s": round(generate_s, 4)},
            "modes": modes,
        }
        if extensions:
            say(f"[bench] {size}: extension pipelines ...")
            world_payload["extensions"] = _bench_extensions(
                world, worker_list, repeats
            )
        worlds.append(world_payload)
        del make_pipeline, world
        gc.collect()

    return {
        "schema": {"name": "BENCH_pipeline", "version": SCHEMA_VERSION},
        "config": {
            "seed": seed,
            "sizes": sizes,
            "workers": worker_list,
            "repeats": max(1, repeats),
            "quick": quick,
            "extensions": extensions,
            "memory": memory,
            "spawn": spawn,
            "shm": shm,
            "internet_scale": internet_scale,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": cpus,
        },
        "worlds": worlds,
    }


def _mode_payload(
    mode: str,
    workers: int,
    shard_size: Optional[int],
    wall: float,
    stages: Dict[str, float],
    leaves: int,
    ref_wall: float,
    serial_wall: Optional[float],
    cache: Optional[Dict[str, object]],
    equivalent: bool,
    cpus: int,
    memory: bool = False,
    payload: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    # A parallel mode timed on fewer cores than it has workers measures
    # oversubscription, not speedup — mark it rather than publish a
    # number that would read as a regression.
    speedup_vs_serial: object
    if serial_wall is None or not wall:
        speedup_vs_serial = None
    elif workers > cpus:
        speedup_vs_serial = "insufficient_cpus"
    else:
        speedup_vs_serial = round(serial_wall / wall, 2)
    rss_self, rss_children = _peak_rss() if memory else (None, None)
    return {
        "mode": mode,
        "workers": workers,
        "shard_size": shard_size,
        "wall_s": round(wall, 4),
        "leaves_per_s": round(leaves / wall, 1) if wall else 0.0,
        "speedup_vs_reference": round(ref_wall / wall, 2) if wall else 0.0,
        "speedup_vs_serial": speedup_vs_serial,
        "payload_bytes": (payload or {}).get("payload_bytes"),
        "segment_bytes": (payload or {}).get("segment_bytes"),
        "peak_rss_bytes": rss_self,
        "peak_child_rss_bytes": rss_children,
        "stages": {name: round(value, 4) for name, value in stages.items()},
        "cache": cache,
        "equivalent": equivalent,
    }


# -- extension pipelines ---------------------------------------------------

def _time_callable(fn: Callable[[], object], repeats: int):
    """Best wall time across repeats and the (identical) last output."""
    best: Optional[float] = None
    output: object = None
    for _ in range(max(1, repeats)):
        gc.collect()
        started = time.perf_counter()
        output = fn()
        wall = time.perf_counter() - started
        if best is None or wall < best:
            best = wall
    assert best is not None
    return best, output


def _ext_mode(
    mode: str,
    workers: int,
    shard_size: Optional[int],
    wall: float,
    ref_wall: float,
    equivalent: bool,
) -> Dict[str, object]:
    return {
        "mode": mode,
        "workers": workers,
        "shard_size": shard_size,
        "wall_s": round(wall, 4),
        "speedup_vs_reference": round(ref_wall / wall, 2) if wall else 0.0,
        "equivalent": equivalent,
    }


def _ext_modes(
    run_reference: Callable[[], object],
    run_fast: Callable[[int, Optional[int]], object],
    digest: Callable[[object], object],
    count: Callable[[object], int],
    worker_list: Sequence[int],
    repeats: int,
) -> Dict[str, object]:
    """Time one extension pipeline under every engine mode."""
    ref_wall, ref_out = _time_callable(run_reference, repeats)
    ref_digest = digest(ref_out)
    items = count(ref_out)
    modes = [_ext_mode("reference", 1, None, ref_wall, ref_wall, True)]
    serial_wall, out = _time_callable(lambda: run_fast(1, None), repeats)
    modes.append(
        _ext_mode(
            "serial", 1, None, serial_wall, ref_wall,
            digest(out) == ref_digest,
        )
    )
    for workers in worker_list:
        shard_size = _bench_shard_size(items, workers)
        wall, out = _time_callable(
            lambda w=workers, s=shard_size: run_fast(w, s), repeats
        )
        modes.append(
            _ext_mode(
                f"parallel-{workers}",
                workers,
                shard_size or DEFAULT_SHARD_SIZE,
                wall,
                ref_wall,
                digest(out) == ref_digest,
            )
        )
    return {"items": items, "modes": modes}


def _legacy_digest(inferences) -> List[Tuple]:
    return [
        (
            inference.prefix.network,
            inference.prefix.length,
            inference.verdict.name,
            tuple(sorted(inference.origins)),
        )
        for inference in inferences
    ]


def _churn_digest(churn) -> Tuple:
    def prefixes(values):
        return tuple(sorted((p.network, p.length) for p in values))

    return (
        prefixes(churn.new_leases),
        prefixes(churn.ended_leases),
        prefixes(churn.persisting),
        prefixes(churn.re_leased),
        tuple(
            sorted(
                (rir.name, rc.new, rc.ended, rc.persisting, rc.re_leased)
                for rir, rc in churn.by_rir.items()
            )
        ),
    )


def _bench_extensions(
    world, worker_list: Sequence[int], repeats: int
) -> Dict[str, object]:
    """Time legacy / RPKI / longitudinal engines off one shared context.

    The base fast-serial result supplies the extension inputs (the
    leased population for RPKI, the epochs for churn); its
    :class:`AnalysisContext` is built once and reused by every fast
    engine, which is exactly the production configuration.
    """
    pipeline = LeaseInferencePipeline(
        world.whois,
        world.routing_table,
        world.relationships,
        world.as2org,
    )
    base = pipeline.run()
    context = pipeline.context
    oracle = RelatednessOracle(world.relationships, world.as2org)
    leased = sorted(base.leased_prefixes())

    legacy_pipeline = LegacyLeasePipeline(
        world.whois, world.routing_table, oracle, context=context
    )
    legacy = _ext_modes(
        run_reference=legacy_pipeline.run_reference,
        run_fast=lambda w, s: legacy_pipeline.run(workers=w, shard_size=s),
        digest=_legacy_digest,
        count=len,
        worker_list=worker_list,
        repeats=repeats,
    )

    rpki_pipeline = RpkiValidationPipeline(
        world.routing_table, world.roas, context=context
    )
    rpki = _ext_modes(
        run_reference=lambda: rpki_pipeline.profile_reference(leased),
        run_fast=lambda w, s: rpki_pipeline.profile(
            leased, workers=w, shard_size=s
        ),
        digest=lambda p: (p.valid, p.invalid, p.not_found),
        count=lambda _profile: len(leased),
        worker_list=worker_list,
        repeats=repeats,
    )

    longitudinal = _ext_modes(
        run_reference=lambda: compare_epochs(base, base),
        run_fast=lambda w, s: compare_epochs_fast(
            base, base, workers=w, shard_size=s
        ),
        digest=_churn_digest,
        count=lambda churn: len(churn.persisting),
        worker_list=worker_list,
        repeats=repeats,
    )

    return {"legacy": legacy, "rpki": rpki, "longitudinal": longitudinal}


def _cpu_count() -> int:
    try:
        import os

        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        import os

        return os.cpu_count() or 1


def all_equivalent(report: Dict[str, object]) -> bool:
    """True when every mode of every world (and every extension pipeline)
    matched its reference engine."""
    for world in report["worlds"]:  # type: ignore[union-attr]
        for mode in world["modes"]:  # type: ignore[index]
            if not bool(mode["equivalent"]):
                return False
        for section in world.get("extensions", {}).values():  # type: ignore[union-attr]
            for mode in section["modes"]:
                if not bool(mode["equivalent"]):
                    return False
    return True


def load_trajectory(path: Path) -> List[Dict[str, object]]:
    """The runs already recorded at *path* (empty for new/unreadable files).

    v1 files hold a single run payload at top level; it becomes
    ``runs[0]`` of the migrated trajectory, keeping its own v1
    ``schema`` stamp as provenance.
    """
    if not path.exists():
        return []
    try:
        existing = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    if isinstance(existing, dict):
        runs = existing.get("runs")
        if isinstance(runs, list):
            return runs
        if "worlds" in existing:
            return [existing]
    return []


def append_trajectory(
    report: Dict[str, object],
    path: Path,
    name: str,
    version: int = SCHEMA_VERSION,
) -> None:
    """Append one run payload to the schema-v2 trajectory at *path*.

    The file accumulates one entry per run —
    ``{"schema": {"name": ..., "version": ...}, "runs": [oldest, ...,
    newest]}`` — so a perf history survives regeneration instead of
    being overwritten.  Pre-v2 single-run files are migrated in place.
    Shared by the pipeline bench (``BENCH_pipeline.json``) and the
    serving load generator (``BENCH_serve.json``).
    """
    runs = load_trajectory(path)
    runs.append(report)
    payload = {
        "schema": {"name": name, "version": version},
        "runs": runs,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def write_benchmark(report: Dict[str, object], path: Path) -> None:
    """Append the run to the ``BENCH_pipeline.json`` trajectory."""
    append_trajectory(report, path, "BENCH_pipeline", SCHEMA_VERSION)


def schema_shape(value: object) -> object:
    """The payload with every number replaced by its type name.

    Two runs of the same configuration must produce identical shapes —
    that is the schema-determinism contract the tests pin (timings and
    throughputs differ run to run; keys, modes, and orderings may not).
    """
    if isinstance(value, dict):
        return {key: schema_shape(item) for key, item in value.items()}
    if isinstance(value, list):
        return [schema_shape(item) for item in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return type(value).__name__
    return value


# -- streaming benchmark ---------------------------------------------------

#: v1: one run per streaming session — config, baseline full-run time,
#: per-burst incremental-vs-rebuild rows, and the single-update probe
#: behind the headline speedup.
STREAM_SCHEMA_VERSION = 1

#: The simulator's default stream seed (distinct from the world seed so
#: the same world can carry many different feeds).
DEFAULT_STREAM_SEED = 20240403


def run_stream_benchmark(
    size: str = "small",
    seed: int = 20240401,
    stream_seed: int = DEFAULT_STREAM_SEED,
    bursts: int = 3,
    burst_size: int = 32,
    verify: bool = True,
    replay_text: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[Dict[str, object], Optional[str]]:
    """One ``BENCH_stream.json`` run: burst-by-burst incremental latency.

    Builds the bench world, runs the full pipeline once (the rebuild
    baseline and the incremental engine's starting state), then applies
    generated update bursts — measuring, per burst, the incremental
    apply against a from-scratch rebuild on the identically mutated
    table, with a digest comparison when ``verify`` is on.  A final
    **single-update** probe captures the headline number: how much
    faster one prefix's churn lands incrementally than via rebuild.

    ``replay_text`` substitutes a committed replay-log fixture for the
    generated feed (the single-update probe is skipped — a replay means
    "reproduce exactly this").  Returns ``(report, replay_json)`` where
    ``replay_json`` re-renders the applied feed for ``--record``.
    """

    def say(message: str) -> None:
        if log is not None:
            log(message)

    replaying = replay_text is not None
    if replay_text is not None:
        size, seed, feed = bursts_from_replay(replay_text)
        probe = None
        bursts = len(feed)
        say(f"[stream] building {size} world (seed {seed}) ...")
        world = build_world(bench_world(size, seed=seed))
    else:
        say(f"[stream] building {size} world (seed {seed}) ...")
        world = build_world(bench_world(size, seed=seed))
        # One extra burst supplies the single-update probe; trimming it
        # to its first message keeps the feed state-consistent because
        # nothing is generated after it.
        feed = simulate_update_bursts(
            world, bursts + 1, burst_size, stream_seed
        )
        probe = feed[bursts][:1]
        feed = feed[:bursts]

    pipeline = LeaseInferencePipeline(
        world.whois, world.routing_table, world.relationships, world.as2org
    )
    say("[stream] baseline full run ...")
    started = time.perf_counter()
    baseline = pipeline.run()
    full_run_s = time.perf_counter() - started
    context = pipeline.context
    assert context is not None
    started = time.perf_counter()
    engine = IncrementalEngine(context)
    engine_build_s = time.perf_counter() - started
    baseline_identical = result_digest(baseline) == engine.digest()
    del baseline
    mutated = clone_routing_table(world.routing_table)

    def rebuild() -> Tuple[float, str]:
        gc.collect()
        restarted = time.perf_counter()
        scratch = LeaseInferencePipeline(
            world.whois, mutated, world.relationships, world.as2org
        ).run()
        wall = time.perf_counter() - restarted
        return wall, result_digest(scratch)

    def measure(
        label: str, burst, burst_index: int
    ) -> Tuple[Dict[str, object], bool]:
        restarted = time.perf_counter()
        report = engine.apply(burst)
        incremental_s = time.perf_counter() - restarted
        replay_into_table(mutated, burst)
        rebuild_s, scratch_digest = rebuild()
        identical = (not verify) or scratch_digest == engine.digest()
        say(
            f"[stream] {label}: {len(burst)} updates, "
            f"{report.reclassified} reclassified, "
            f"incremental {incremental_s * 1000:.1f}ms vs rebuild "
            f"{rebuild_s * 1000:.1f}ms, identical={identical}"
        )
        row: Dict[str, object] = {
            "burst": burst_index,
            "updates": len(burst),
            "applied": report.applied,
            "ignored": report.ignored,
            "changed_prefixes": len(report.changed_prefixes),
            "dirty_roots": len(report.dirty_roots),
            "reclassified": report.reclassified,
            "changed_rows": len(report.changed),
            "incremental_s": round(incremental_s, 6),
            "rebuild_s": round(rebuild_s, 4),
            "speedup_vs_rebuild": (
                round(rebuild_s / incremental_s, 1) if incremental_s else 0.0
            ),
            "bit_identical": identical,
        }
        return row, identical

    rows: List[Dict[str, object]] = []
    all_identical = baseline_identical
    for index, burst in enumerate(feed):
        row, identical = measure(f"burst {index}", burst, index)
        rows.append(row)
        all_identical = all_identical and identical

    single: Optional[Dict[str, object]] = None
    if probe:
        single, identical = measure("single-update probe", probe, bursts)
        all_identical = all_identical and identical

    report_payload: Dict[str, object] = {
        "schema": {"name": "BENCH_stream", "version": STREAM_SCHEMA_VERSION},
        "config": {
            "size": size,
            "seed": seed,
            "stream_seed": None if replaying else stream_seed,
            "bursts": bursts,
            "burst_size": None if replaying else burst_size,
            "verify": verify,
            "replay": replaying,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": _cpu_count(),
        },
        "world": {
            "classifiable_leaves": context.total_leaves(),
            "routed_prefixes": world.routing_table.num_prefixes(),
        },
        "baseline": {
            "full_run_s": round(full_run_s, 4),
            "engine_build_s": round(engine_build_s, 4),
            "baseline_identical": baseline_identical,
        },
        "bursts": rows,
        "single_update": single,
        "totals": {
            "updates": sum(int(str(row["updates"])) for row in rows),
            "reclassified": sum(
                int(str(row["reclassified"])) for row in rows
            ),
            "all_identical": all_identical,
        },
    }
    applied_feed = list(feed) + ([probe] if probe else [])
    replay_json = render_replay_log(size, seed, applied_feed)
    return report_payload, replay_json


def stream_from_args(args) -> int:
    """CLI entry: ``repro stream``."""
    replay_text: Optional[str] = None
    if getattr(args, "replay", None):
        try:
            replay_text = Path(args.replay).read_text()
        except OSError as exc:
            print(f"cannot read replay log {args.replay}: {exc}")
            return 2
    elif args.size not in BENCH_SIZES:
        print(f"unknown world size {args.size!r} "
              f"(expected {', '.join(BENCH_SIZES)})")
        return 2
    report, replay_json = run_stream_benchmark(
        size=args.size,
        seed=args.seed,
        stream_seed=args.stream_seed,
        bursts=args.bursts,
        burst_size=args.burst_size,
        verify=not getattr(args, "no_verify", False),
        replay_text=replay_text,
        log=print,
    )
    append_trajectory(
        report, args.out, "BENCH_stream", STREAM_SCHEMA_VERSION
    )
    print(f"wrote {args.out}")
    if getattr(args, "record", None):
        Path(args.record).write_text(replay_json + "\n")
        print(f"recorded replay log at {args.record}")
    totals = report["totals"]
    assert isinstance(totals, dict)
    if not bool(totals["all_identical"]):
        print("FAIL: incremental result diverged from a from-scratch run")
        return 1
    single = report["single_update"]
    if isinstance(single, dict):
        print(
            f"single-update probe: {single['speedup_vs_rebuild']}x faster "
            "than a full rebuild"
        )
    return 0


# ---------------------------------------------------------------------------
# Temporal benchmark (BENCH_temporal.json)

TEMPORAL_SCHEMA_VERSION = 1

#: The evolution's default churn seed (distinct from the world seed so
#: one world can carry many histories).
DEFAULT_EVOLUTION_SEED = 20240404

#: Point-in-time lookups sampled per temporal bench run.
_TEMPORAL_QUERY_SAMPLES = 64


def _index_image(index) -> Tuple[object, ...]:
    """Everything observable through one index's query surface."""
    return (
        {str(p): index.exact(p) for p in index.prefixes()},
        dict(index.origin_rows()),
        index.category_tallies(),
        index.leased_count,
    )


def build_temporal_product(
    world,
    context,
    result,
    epochs: int,
    evolution_seed: int = DEFAULT_EVOLUTION_SEED,
    checkpoint_interval: Optional[int] = None,
):
    """Evolve *world* and freeze the outcome as a TemporalProduct.

    Returns ``(product, evolution, base_index, epoch_reports)`` —
    everything the temporal benchmark, the serve command, and the CLI
    history command need.  ``epoch_reports`` holds the incremental
    engine's per-epoch :class:`BurstReport` rows (timing callers reuse
    them instead of re-applying).
    """
    from .core.leaseindex import LeaseIndex
    from .temporal import (
        DEFAULT_CHECKPOINT_INTERVAL,
        TemporalLeaseIndex,
        TemporalProduct,
        TimelineStore,
        histories_from_updates,
    )

    candidates = [
        key[0] for rir in context.rirs for key in context.leaf_keys[rir]
    ]
    rir_of = {
        key[0]: rir.name
        for rir in context.rirs
        for key in context.leaf_keys[rir]
    }
    evolution = evolve_world(
        world, candidates, epochs=epochs, seed=evolution_seed
    )
    engine = IncrementalEngine(context)
    base = LeaseIndex.build(context, result)
    epoch_changes = []
    epoch_reports = []
    for timestamp, burst in zip(
        evolution.epoch_timestamps, evolution.epoch_bursts
    ):
        burst_report = engine.apply(list(burst))
        epoch_reports.append(burst_report)
        epoch_changes.append((timestamp, burst_report.changed))
    interval = (
        checkpoint_interval
        if checkpoint_interval is not None
        else DEFAULT_CHECKPOINT_INTERVAL
    )
    temporal_index = TemporalLeaseIndex.build(
        context,
        base,
        evolution.base_timestamp,
        epoch_changes,
        checkpoint_interval=interval,
    )
    timelines = TimelineStore.build(
        histories_from_updates(evolution.all_updates()),
        evolution.archive,
        rir_of,
    )
    product = TemporalProduct(
        index=temporal_index,
        timelines=timelines,
        meta={
            "evolution_seed": evolution_seed,
            "epochs": epochs,
            "targets": len(evolution.schedule),
        },
    )
    return product, evolution, base, epoch_reports


def _verify_timelines(product, evolution) -> bool:
    """Inferred timelines must reproduce the generator's schedule."""
    for prefix, entries in sorted(evolution.schedule.items()):
        payload = product.timelines.history_payload(prefix)
        if payload is None:
            return False
        want_leases = sum(1 for _, holder in entries if holder is not None)
        want_gaps = sum(1 for _, holder in entries if holder is None)
        want_lessees = sorted(
            {holder for _, holder in entries if holder is not None}
        )
        if payload["lease_count"] != want_leases:
            return False
        if payload["as0_gaps"] != want_gaps:
            return False
        if payload["distinct_lessees"] != want_lessees:
            return False
    return True


def run_temporal_benchmark(
    size: str = "small",
    seed: int = 20240401,
    evolution_seed: int = DEFAULT_EVOLUTION_SEED,
    epochs: int = 12,
    checkpoint_interval: Optional[int] = None,
    verify: bool = True,
    log: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """One ``BENCH_temporal.json`` run: delta encoding vs naive history.

    Builds the bench world, evolves *epochs* epochs of lease churn,
    freezes the temporal index, and measures (a) point-in-time query
    latency through the delta encoding and (b) encoded bytes per epoch
    against the naive one-full-index-per-epoch baseline.  With
    ``verify`` on, every epoch's delta-materialized view is checked
    bit-identical to a from-scratch pipeline run over the identically
    mutated routing table, and the inferred per-prefix timelines are
    checked against the generator's ground-truth lease schedule.
    """
    from .temporal import index_encoded_bytes

    def say(message: str) -> None:
        if log is not None:
            log(message)

    say(f"[temporal] building {size} world (seed {seed}) ...")
    world = build_world(bench_world(size, seed=seed))
    pipeline = LeaseInferencePipeline(
        world.whois, world.routing_table, world.relationships, world.as2org
    )
    started = time.perf_counter()
    result = pipeline.run()
    full_run_s = time.perf_counter() - started
    context = pipeline.context
    assert context is not None

    say(f"[temporal] evolving {epochs} epochs of lease churn ...")
    started = time.perf_counter()
    product, evolution, base, epoch_reports = build_temporal_product(
        world,
        context,
        result,
        epochs=epochs,
        evolution_seed=evolution_seed,
        checkpoint_interval=checkpoint_interval,
    )
    build_s = time.perf_counter() - started

    temporal_index = product.index
    sizes = temporal_index.delta_encoded_bytes()
    record_bytes = sizes["record_bytes"]
    assert isinstance(record_bytes, list)

    # Naive baseline: one full index per epoch (epoch 0 included) —
    # measured over the *same* views, which verification below proves
    # bit-identical to from-scratch builds.
    naive_bytes = [
        index_encoded_bytes(temporal_index.index_for_epoch(epoch))
        for epoch in range(epochs + 1)
    ]
    base_bytes = int(str(sizes["base_bytes"]))
    records_total = int(str(sizes["records_total_bytes"]))
    delta_total = base_bytes + records_total
    naive_total = sum(naive_bytes)

    epoch_rows: List[Dict[str, object]] = []
    for number, burst_report in enumerate(epoch_reports, 1):
        epoch_rows.append({
            "epoch": number,
            "timestamp": evolution.epoch_timestamps[number - 1],
            "updates": len(evolution.epoch_bursts[number - 1]),
            "changed_rows": len(burst_report.changed),
            "record_bytes": record_bytes[number - 1],
            "naive_bytes": naive_bytes[number],
        })

    say("[temporal] sampling point-in-time queries ...")
    rng = random.Random(evolution_seed)
    span_start = evolution.base_timestamp
    span_end = evolution.epoch_timestamps[-1] + 1
    targets = sorted(evolution.schedule)
    resolve_times: List[float] = []
    for _probe in range(_TEMPORAL_QUERY_SAMPLES):
        at = rng.randrange(span_start, span_end)
        target = targets[rng.randrange(len(targets))]
        started = time.perf_counter()
        located = temporal_index.index_at(at)
        assert located is not None
        _epoch, view = located
        view.resolve_text(str(target))
        resolve_times.append(time.perf_counter() - started)

    differential = True
    timelines_ok = True
    if verify:
        say("[temporal] differential verify: every epoch vs rebuild ...")
        mutated = clone_routing_table(world.routing_table)
        from .core.leaseindex import LeaseIndex

        for epoch in range(epochs + 1):
            if epoch > 0:
                replay_into_table(
                    mutated, list(evolution.epoch_bursts[epoch - 1])
                )
            scratch_pipeline = LeaseInferencePipeline(
                world.whois, mutated, world.relationships, world.as2org
            )
            scratch_result = scratch_pipeline.run()
            assert scratch_pipeline.context is not None
            scratch = LeaseIndex.build(
                scratch_pipeline.context, scratch_result
            )
            identical = _index_image(scratch) == _index_image(
                temporal_index.index_for_epoch(epoch)
            )
            differential = differential and identical
            say(f"[temporal] epoch {epoch}: identical={identical}")
        timelines_ok = _verify_timelines(product, evolution)
        say(f"[temporal] timelines match ground truth: {timelines_ok}")

    return {
        "schema": {
            "name": "BENCH_temporal",
            "version": TEMPORAL_SCHEMA_VERSION,
        },
        "config": {
            "size": size,
            "seed": seed,
            "evolution_seed": evolution_seed,
            "epochs": epochs,
            "checkpoint_interval": temporal_index.stats()[
                "checkpoint_interval"
            ],
            "verify": verify,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": _cpu_count(),
        },
        "world": {
            "classifiable_leaves": context.total_leaves(),
            "routed_prefixes": world.routing_table.num_prefixes(),
            "churn_targets": len(evolution.schedule),
        },
        "build": {
            "full_run_s": round(full_run_s, 4),
            "temporal_build_s": round(build_s, 4),
        },
        "epochs": epoch_rows,
        "encoding": {
            "base_bytes": base_bytes,
            "records_total_bytes": records_total,
            "delta_total_bytes": delta_total,
            "naive_total_bytes": naive_total,
            "delta_bytes_per_epoch": round(records_total / epochs, 1),
            "naive_bytes_per_epoch": round(naive_total / (epochs + 1), 1),
            "delta_vs_naive_ratio": round(delta_total / naive_total, 4),
        },
        "queries": {
            "samples": len(resolve_times),
            "avg_ms": round(
                sum(resolve_times) / len(resolve_times) * 1000.0, 4
            ),
            "max_ms": round(max(resolve_times) * 1000.0, 4),
        },
        "verification": {
            "differential_identical": differential,
            "timelines_match_ground_truth": timelines_ok,
        },
    }


def temporal_from_args(args) -> int:
    """CLI entry: ``repro bench-temporal``."""
    if args.size not in BENCH_SIZES:
        print(f"unknown world size {args.size!r} "
              f"(expected {', '.join(BENCH_SIZES)})")
        return 2
    if args.epochs < 1:
        print(f"--epochs must be >= 1, got {args.epochs}")
        return 2
    report = run_temporal_benchmark(
        size=args.size,
        seed=args.seed,
        evolution_seed=args.evolution_seed,
        epochs=args.epochs,
        checkpoint_interval=args.checkpoint_interval,
        verify=not getattr(args, "no_verify", False),
        log=print,
    )
    append_trajectory(
        report, args.out, "BENCH_temporal", TEMPORAL_SCHEMA_VERSION
    )
    print(f"wrote {args.out}")
    encoding = report["encoding"]
    assert isinstance(encoding, dict)
    print(
        f"delta encoding: {encoding['delta_total_bytes']:,} bytes vs "
        f"naive {encoding['naive_total_bytes']:,} "
        f"(ratio {encoding['delta_vs_naive_ratio']})"
    )
    verification = report["verification"]
    assert isinstance(verification, dict)
    if not bool(verification["differential_identical"]):
        print("FAIL: a historical view diverged from a from-scratch run")
        return 1
    if not bool(verification["timelines_match_ground_truth"]):
        print("FAIL: inferred timelines diverged from the lease schedule")
        return 1
    return 0


def run_from_args(args) -> int:
    """CLI entry: ``repro bench``."""
    from .reporting import render_bench_report

    sizes = None
    if getattr(args, "sizes", None):
        sizes = [size.strip() for size in args.sizes.split(",") if size.strip()]
        unknown = [size for size in sizes if size not in BENCH_SIZES]
        if unknown:
            print(f"unknown bench sizes: {', '.join(unknown)} "
                  f"(expected {', '.join(BENCH_SIZES)})")
            return 2
    workers = DEFAULT_WORKER_COUNTS
    if getattr(args, "workers", None):
        try:
            workers = tuple(
                int(w) for w in str(args.workers).split(",") if w.strip()
            )
        except ValueError:
            print(f"bad --workers {args.workers!r}; expected e.g. 2,4")
            return 2
    report = run_benchmark(
        sizes=sizes,
        worker_counts=workers,
        repeats=args.repeats,
        seed=args.seed,
        quick=args.quick,
        extensions=not getattr(args, "no_extensions", False),
        memory=getattr(args, "memory", False),
        spawn=getattr(args, "spawn", False),
        shm=getattr(args, "shm", False),
        internet_scale=getattr(args, "xlarge_scale", None),
        log=print,
    )
    write_benchmark(report, args.out)
    print(render_bench_report(report))
    print(f"wrote {args.out}")
    if not all_equivalent(report):
        print("FAIL: a mode diverged from the reference engine")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    from .cli import main

    sys.exit(main(["bench"] + sys.argv[1:]))
