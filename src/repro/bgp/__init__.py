"""BGP substrate: paths, RIBs, table dumps, topology, and propagation."""

from .aspath import ASPath
from .collector import (
    Announcement,
    Collector,
    build_routing_table,
    collect_rib,
)
from .history import (
    AnnounceUpdate,
    UpdateStream,
    WithdrawUpdate,
    format_update,
    parse_update_line,
)
from .mrt import MrtError, read_mrt, write_mrt
from .rib import RibEntry, RoutingTable
from .simulator import Route, RouteKind, propagate
from .table_dump import read_table_dump, write_table_dump
from .topology import P2C, P2P, ASTopology
from .updates import (
    ReplayLog,
    SequenceError,
    SequenceGenerator,
    SequencedUpdate,
    UpdateParseError,
    format_sequenced,
    parse_sequenced_line,
    read_updates,
    write_updates,
)

__all__ = [
    "ASPath",
    "ASTopology",
    "AnnounceUpdate",
    "Announcement",
    "Collector",
    "MrtError",
    "P2C",
    "P2P",
    "ReplayLog",
    "RibEntry",
    "Route",
    "RouteKind",
    "RoutingTable",
    "SequenceError",
    "SequenceGenerator",
    "SequencedUpdate",
    "UpdateParseError",
    "UpdateStream",
    "WithdrawUpdate",
    "build_routing_table",
    "collect_rib",
    "format_sequenced",
    "format_update",
    "parse_sequenced_line",
    "parse_update_line",
    "propagate",
    "read_mrt",
    "read_table_dump",
    "read_updates",
    "write_mrt",
    "write_table_dump",
    "write_updates",
]
