"""AS-path representation.

Paths are stored origin-last, exactly as they appear in BGP UPDATE
messages and MRT table dumps: ``path[0]`` is the collector peer's AS and
``path[-1]`` is the origin AS whose announcement the inference keys on
(§5.1 step 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["ASPath"]


@dataclass(frozen=True)
class ASPath:
    """An immutable AS path (no AS_SET support — sets are long deprecated)."""

    asns: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.asns:
            raise ValueError("empty AS path")
        if any(asn < 0 for asn in self.asns):
            raise ValueError(f"negative ASN in path: {self.asns}")

    @classmethod
    def parse(cls, text: str) -> "ASPath":
        """Parse a space-separated path, e.g. ``"3356 8851 15169"``."""
        try:
            asns = tuple(int(token) for token in text.split())
        except ValueError:
            raise ValueError(f"malformed AS path: {text!r}") from None
        return cls(asns)

    @classmethod
    def of(cls, *asns: int) -> "ASPath":
        """Build a path from positional ASNs."""
        return cls(tuple(asns))

    @property
    def origin(self) -> int:
        """The origin AS (rightmost)."""
        return self.asns[-1]

    @property
    def peer(self) -> int:
        """The collector-peer AS (leftmost)."""
        return self.asns[0]

    def __len__(self) -> int:
        return len(self.asns)

    def __iter__(self) -> Iterator[int]:
        return iter(self.asns)

    def __str__(self) -> str:
        return " ".join(str(asn) for asn in self.asns)

    def without_prepending(self) -> "ASPath":
        """Collapse consecutive duplicate ASNs (path prepending)."""
        collapsed = [self.asns[0]]
        for asn in self.asns[1:]:
            if asn != collapsed[-1]:
                collapsed.append(asn)
        return ASPath(tuple(collapsed))

    def contains_loop(self) -> bool:
        """True when any ASN repeats non-consecutively (routing loop)."""
        collapsed = self.without_prepending()
        return len(set(collapsed.asns)) != len(collapsed.asns)

    def prepend(self, asn: int, count: int = 1) -> "ASPath":
        """A new path with *asn* prepended *count* times (propagation step)."""
        if count < 1:
            raise ValueError("prepend count must be positive")
        return ASPath((asn,) * count + self.asns)
