"""Route collectors: Routeviews / RIPE RIS stand-ins.

A collector multilaterally peers with a set of vantage ASes and records
the route each vantage selected, producing the RIB rows that real
projects publish as table dumps.  Several collectors merge into the
single :class:`~repro.bgp.rib.RoutingTable` the inference uses (§4 "BGP
dataset").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..net import Prefix, int_to_address
from .aspath import ASPath
from .rib import RibEntry, RoutingTable
from .simulator import Route, propagate
from .topology import ASTopology

__all__ = ["Announcement", "Collector", "collect_rib", "build_routing_table"]


@dataclass(frozen=True)
class Announcement:
    """One BGP origination: *origin* announces *prefix*."""

    prefix: Prefix
    origin: int


@dataclass
class Collector:
    """A named collector with its peer (vantage-point) ASes."""

    name: str
    peer_asns: Tuple[int, ...]

    def collect(
        self,
        topology: ASTopology,
        announcements: Sequence[Announcement],
        timestamp: int = 0,
        route_cache: Dict[int, Dict[int, Route]] = None,
    ) -> List[RibEntry]:
        """RIB rows seen by this collector's peers.

        *route_cache* (origin → propagation result) may be shared across
        collectors to avoid recomputing propagation per collector.
        """
        if route_cache is None:
            route_cache = {}
        entries: List[RibEntry] = []
        by_origin: Dict[int, List[Prefix]] = {}
        for announcement in announcements:
            by_origin.setdefault(announcement.origin, []).append(
                announcement.prefix
            )
        for origin in sorted(by_origin):
            routes = route_cache.get(origin)
            if routes is None:
                routes = propagate(topology, origin)
                route_cache[origin] = routes
            for peer_asn in self.peer_asns:
                route = routes.get(peer_asn)
                if route is None:
                    continue  # announcement never reached this vantage
                path = ASPath(route.path)
                peer_address = _peer_address(peer_asn)
                for prefix in by_origin[origin]:
                    entries.append(
                        RibEntry(
                            prefix=prefix,
                            path=path,
                            peer_asn=peer_asn,
                            peer_address=peer_address,
                            timestamp=timestamp,
                        )
                    )
        return entries


def collect_rib(
    collectors: Iterable[Collector],
    topology: ASTopology,
    announcements: Sequence[Announcement],
    timestamp: int = 0,
) -> List[RibEntry]:
    """RIB rows across all *collectors* with a shared propagation cache."""
    route_cache: Dict[int, Dict[int, Route]] = {}
    entries: List[RibEntry] = []
    for collector in collectors:
        entries.extend(
            collector.collect(
                topology, announcements, timestamp, route_cache=route_cache
            )
        )
    return entries


def build_routing_table(
    collectors: Iterable[Collector],
    topology: ASTopology,
    announcements: Sequence[Announcement],
    timestamp: int = 0,
) -> RoutingTable:
    """The merged prefix → origins view across all collectors."""
    return RoutingTable.from_entries(
        collect_rib(collectors, topology, announcements, timestamp)
    )


def _peer_address(peer_asn: int) -> str:
    """Deterministic dotted-quad address for a vantage point."""
    return int_to_address(0xC6120000 | (peer_asn & 0xFFFF))  # 198.18.x.y
