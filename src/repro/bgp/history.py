"""BGP update streams and historical origin reconstruction.

The Fig. 3 BGP series comes from *historical* routing data: for one
prefix, which origin AS announced it when.  This module models the
update plane — timestamped announcements and withdrawals — and replays a
stream into per-prefix origin histories (the
:class:`~repro.core.timeline.BgpOriginHistory` the timeline consumes) or
into the routing table state at any instant.

The on-disk format is the one-line-per-message ``bgpdump -m`` style used
for updates::

    BGP4MP|<ts>|A|<peer_ip>|<peer_asn>|<prefix>|<as_path>|IGP   (announce)
    BGP4MP|<ts>|W|<peer_ip>|<peer_asn>|<prefix>                 (withdraw)
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Union

from ..net import Prefix
from .aspath import ASPath
from .rib import RoutingTable

__all__ = [
    "AnnounceUpdate",
    "WithdrawUpdate",
    "UpdateStream",
    "parse_update_line",
    "format_update",
]

_MARKER = "BGP4MP"


@dataclass(frozen=True, order=True)
class AnnounceUpdate:
    """An announce message: *prefix* reachable via *path* at *timestamp*."""

    timestamp: int
    prefix: Prefix
    path: ASPath
    peer_asn: int = 0
    peer_address: str = "0.0.0.0"

    @property
    def origin(self) -> int:
        """The origin AS of the announcement."""
        return self.path.origin


@dataclass(frozen=True, order=True)
class WithdrawUpdate:
    """A withdraw message: *prefix* no longer reachable at *timestamp*."""

    timestamp: int
    prefix: Prefix
    peer_asn: int = 0
    peer_address: str = "0.0.0.0"


Update = Union[AnnounceUpdate, WithdrawUpdate]


def format_update(update: Update) -> str:
    """Render one update in the pipe format."""
    if isinstance(update, AnnounceUpdate):
        return "|".join(
            (
                _MARKER,
                str(update.timestamp),
                "A",
                update.peer_address,
                str(update.peer_asn),
                str(update.prefix),
                str(update.path),
                "IGP",
            )
        )
    return "|".join(
        (
            _MARKER,
            str(update.timestamp),
            "W",
            update.peer_address,
            str(update.peer_asn),
            str(update.prefix),
        )
    )


def parse_update_line(line: str) -> Update:
    """Parse one pipe-format update line."""
    fields = line.rstrip("\n").split("|")
    if len(fields) < 6 or fields[0] != _MARKER:
        raise ValueError(f"malformed update line: {line!r}")
    timestamp = int(fields[1])
    kind = fields[2]
    peer_address, peer_asn = fields[3], int(fields[4])
    prefix = Prefix.parse(fields[5])
    if kind == "W":
        return WithdrawUpdate(
            timestamp=timestamp,
            prefix=prefix,
            peer_asn=peer_asn,
            peer_address=peer_address,
        )
    if kind == "A":
        if len(fields) < 7:
            raise ValueError(f"announce without path: {line!r}")
        return AnnounceUpdate(
            timestamp=timestamp,
            prefix=prefix,
            path=ASPath.parse(fields[6]),
            peer_asn=peer_asn,
            peer_address=peer_address,
        )
    raise ValueError(f"unknown update kind {kind!r}")


class UpdateStream:
    """A time-ordered collection of BGP updates with replay queries."""

    def __init__(self, updates: Iterable[Update] = ()) -> None:
        self._updates: List[Update] = sorted(
            updates,
            key=lambda u: (u.timestamp, isinstance(u, AnnounceUpdate)),
        )

    def add(self, update: Update) -> None:
        """Insert one update, keeping time order."""
        keys = [u.timestamp for u in self._updates]
        index = bisect.bisect_right(keys, update.timestamp)
        self._updates.insert(index, update)

    def __len__(self) -> int:
        return len(self._updates)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    # -- text format -------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "UpdateStream":
        """Parse a pipe-format update file (malformed lines rejected)."""
        return cls(
            parse_update_line(line)
            for line in text.splitlines()
            if line.strip()
        )

    def to_text(self) -> str:
        """Render the stream back to pipe-format text."""
        lines = [format_update(update) for update in self._updates]
        return "\n".join(lines) + ("\n" if lines else "")

    # -- replay ------------------------------------------------------------
    def table_at(self, timestamp: int) -> RoutingTable:
        """The merged routing state after applying updates up to *timestamp*.

        Withdrawals remove only the withdrawing origin's route for the
        prefix (per-origin granularity is what the inference needs).
        """
        active: Dict[Prefix, Set[int]] = defaultdict(set)
        origin_of_peer: Dict[tuple, int] = {}
        for update in self._updates:
            if update.timestamp > timestamp:
                break
            key = (update.prefix, update.peer_asn, update.peer_address)
            if isinstance(update, AnnounceUpdate):
                previous = origin_of_peer.get(key)
                if previous is not None:
                    active[update.prefix].discard(previous)
                origin_of_peer[key] = update.origin
                active[update.prefix].add(update.origin)
            else:
                previous = origin_of_peer.pop(key, None)
                if previous is not None:
                    active[update.prefix].discard(previous)
        table = RoutingTable()
        for prefix, origins in active.items():
            for origin in origins:
                table.add_route(prefix, origin)
        return table

    def origin_history(self, prefix: Prefix):
        """Replay the stream into the per-prefix origin time series.

        Returns a :class:`repro.core.timeline.BgpOriginHistory` ready for
        :func:`repro.core.timeline.build_timeline`.
        """
        from ..core.timeline import BgpOriginHistory

        history = BgpOriginHistory()
        current: Set[int] = set()
        origin_of_peer: Dict[tuple, int] = {}
        last_timestamp: Optional[int] = None
        for update in self._updates:
            if update.prefix != prefix:
                continue
            if last_timestamp is not None and update.timestamp != last_timestamp:
                history.add_observation(last_timestamp, frozenset(current))
            key = (update.peer_asn, update.peer_address)
            if isinstance(update, AnnounceUpdate):
                previous = origin_of_peer.get(key)
                if previous is not None:
                    current.discard(previous)
                origin_of_peer[key] = update.origin
                current.add(update.origin)
            else:
                previous = origin_of_peer.pop(key, None)
                if previous is not None:
                    current.discard(previous)
            last_timestamp = update.timestamp
        if last_timestamp is not None:
            history.add_observation(last_timestamp, frozenset(current))
        return history

    def prefixes(self) -> Set[Prefix]:
        """All prefixes the stream touches."""
        return {update.prefix for update in self._updates}
