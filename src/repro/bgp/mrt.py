"""MRT export format (RFC 6396): binary TABLE_DUMP_V2 RIBs.

Routeviews and RIPE RIS publish their RIB snapshots as MRT files; the
paper's pipeline downloads and decodes those before anything else (§4).
This module implements the subset real IPv4 RIB archives consist of:

* the common MRT header (timestamp, type, subtype, length),
* ``PEER_INDEX_TABLE`` (subtype 1): collector id, view name, peer table,
* ``RIB_IPV4_UNICAST`` (subtype 2): per-prefix RIB entries whose BGP
  path attributes carry ORIGIN, AS_PATH (AS4), and NEXT_HOP.

Both directions are provided — :func:`write_mrt` encodes RIB rows into
bytes and :func:`read_mrt` decodes them back — so synthetic worlds can
be materialized exactly the way a collector would publish them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..net import Prefix, address_to_int, int_to_address
from .aspath import ASPath
from .rib import RibEntry

__all__ = [
    "MrtError",
    "read_mrt",
    "write_mrt",
    "read_mrt_updates",
    "write_mrt_updates",
]

#: MRT type for TABLE_DUMP_V2 (RFC 6396 §4.3).
TABLE_DUMP_V2 = 13
PEER_INDEX_TABLE = 1
RIB_IPV4_UNICAST = 2
#: MRT type for BGP4MP (RFC 6396 §4.4) and the AS4 message subtype.
BGP4MP = 16
BGP4MP_MESSAGE_AS4 = 4
_BGP_UPDATE = 2
_AFI_IPV4 = 1

# BGP path-attribute type codes.
_ATTR_ORIGIN = 1
_ATTR_AS_PATH = 2
_ATTR_NEXT_HOP = 3
_AS_SEQUENCE = 2

_FLAG_TRANSITIVE = 0x40
_FLAG_EXTENDED = 0x10


class MrtError(ValueError):
    """Raised on malformed MRT data."""


@dataclass(frozen=True)
class PeerEntry:
    """One row of the PEER_INDEX_TABLE."""

    bgp_id: int
    address: str
    asn: int


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def write_mrt(
    entries: Sequence[RibEntry],
    collector_id: int = 0xC0A80001,
    view_name: str = "",
) -> bytes:
    """Encode RIB rows as a TABLE_DUMP_V2 MRT byte stream.

    Emits one PEER_INDEX_TABLE followed by one RIB_IPV4_UNICAST record
    per distinct prefix (entries for the same prefix share the record,
    exactly as collectors do).
    """
    peers: List[PeerEntry] = []
    peer_index: Dict[Tuple[str, int], int] = {}
    for entry in entries:
        key = (entry.peer_address, entry.peer_asn)
        if key not in peer_index:
            peer_index[key] = len(peers)
            peers.append(
                PeerEntry(
                    bgp_id=address_to_int(entry.peer_address),
                    address=entry.peer_address,
                    asn=entry.peer_asn,
                )
            )

    by_prefix: Dict[Prefix, List[RibEntry]] = {}
    for entry in entries:
        by_prefix.setdefault(entry.prefix, []).append(entry)

    chunks: List[bytes] = [
        _record(
            timestamp=entries[0].timestamp if entries else 0,
            subtype=PEER_INDEX_TABLE,
            body=_encode_peer_index(collector_id, view_name, peers),
        )
    ]
    for sequence, prefix in enumerate(sorted(by_prefix)):
        rows = by_prefix[prefix]
        chunks.append(
            _record(
                timestamp=rows[0].timestamp,
                subtype=RIB_IPV4_UNICAST,
                body=_encode_rib(sequence, prefix, rows, peer_index),
            )
        )
    return b"".join(chunks)


def _record(timestamp: int, subtype: int, body: bytes) -> bytes:
    header = struct.pack(
        ">IHHI", timestamp, TABLE_DUMP_V2, subtype, len(body)
    )
    return header + body


def _encode_peer_index(
    collector_id: int, view_name: str, peers: Sequence[PeerEntry]
) -> bytes:
    name_bytes = view_name.encode("ascii")
    parts = [
        struct.pack(">IH", collector_id, len(name_bytes)),
        name_bytes,
        struct.pack(">H", len(peers)),
    ]
    for peer in peers:
        # Peer type 0x02: IPv4 address, 4-byte AS number.
        parts.append(
            struct.pack(
                ">BII I".replace(" ", ""),
                0x02,
                peer.bgp_id,
                address_to_int(peer.address),
                peer.asn,
            )
        )
    return b"".join(parts)


def _encode_rib(
    sequence: int,
    prefix: Prefix,
    rows: Sequence[RibEntry],
    peer_index: Dict[Tuple[str, int], int],
) -> bytes:
    prefix_bytes = _encode_prefix(prefix)
    parts = [
        struct.pack(">I", sequence),
        prefix_bytes,
        struct.pack(">H", len(rows)),
    ]
    for row in rows:
        attributes = _encode_attributes(row.path)
        parts.append(
            struct.pack(
                ">HIH",
                peer_index[(row.peer_address, row.peer_asn)],
                row.timestamp,
                len(attributes),
            )
        )
        parts.append(attributes)
    return b"".join(parts)


def _encode_prefix(prefix: Prefix) -> bytes:
    octets = (prefix.length + 7) // 8
    raw = prefix.network.to_bytes(4, "big")[:octets]
    return bytes([prefix.length]) + raw


def _encode_attributes(path: ASPath) -> bytes:
    origin = bytes([_FLAG_TRANSITIVE, _ATTR_ORIGIN, 1, 0])  # IGP
    segments = struct.pack(">BB", _AS_SEQUENCE, len(path.asns))
    segments += b"".join(struct.pack(">I", asn) for asn in path.asns)
    as_path = (
        bytes([_FLAG_TRANSITIVE | _FLAG_EXTENDED, _ATTR_AS_PATH])
        + struct.pack(">H", len(segments))
        + segments
    )
    next_hop = bytes([_FLAG_TRANSITIVE, _ATTR_NEXT_HOP, 4]) + (0).to_bytes(
        4, "big"
    )
    return origin + as_path + next_hop


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def read_mrt(data: bytes) -> Iterator[RibEntry]:
    """Decode a TABLE_DUMP_V2 byte stream back into RIB rows.

    Unknown MRT types/subtypes are skipped (real archives interleave
    state-change records); truncated data raises :class:`MrtError`.
    """
    peers: List[PeerEntry] = []
    offset = 0
    while offset < len(data):
        if offset + 12 > len(data):
            raise MrtError("truncated MRT header")
        timestamp, mrt_type, subtype, length = struct.unpack_from(
            ">IHHI", data, offset
        )
        offset += 12
        if offset + length > len(data):
            raise MrtError("truncated MRT record body")
        body = data[offset : offset + length]
        offset += length
        if mrt_type != TABLE_DUMP_V2:
            continue
        if subtype == PEER_INDEX_TABLE:
            peers = _decode_peer_index(body)
        elif subtype == RIB_IPV4_UNICAST:
            yield from _decode_rib(body, peers, timestamp)
        # other subtypes (IPv6, generic) are skipped


def _decode_peer_index(body: bytes) -> List[PeerEntry]:
    if len(body) < 8:
        raise MrtError("truncated peer index table")
    _collector_id, name_length = struct.unpack_from(">IH", body, 0)
    offset = 6 + name_length
    (peer_count,) = struct.unpack_from(">H", body, offset)
    offset += 2
    peers: List[PeerEntry] = []
    for _index in range(peer_count):
        peer_type = body[offset]
        offset += 1
        (bgp_id,) = struct.unpack_from(">I", body, offset)
        offset += 4
        if peer_type & 0x01:  # IPv6 peer address
            offset += 16
            address = "0.0.0.0"
        else:
            (addr_int,) = struct.unpack_from(">I", body, offset)
            offset += 4
            address = int_to_address(addr_int)
        if peer_type & 0x02:  # 4-byte AS
            (asn,) = struct.unpack_from(">I", body, offset)
            offset += 4
        else:
            (asn,) = struct.unpack_from(">H", body, offset)
            offset += 2
        peers.append(PeerEntry(bgp_id=bgp_id, address=address, asn=asn))
    return peers


def _decode_rib(
    body: bytes, peers: List[PeerEntry], timestamp: int
) -> Iterator[RibEntry]:
    offset = 4  # skip sequence number
    prefix, offset = _decode_prefix(body, offset)
    (entry_count,) = struct.unpack_from(">H", body, offset)
    offset += 2
    for _index in range(entry_count):
        peer_idx, originated, attr_length = struct.unpack_from(
            ">HIH", body, offset
        )
        offset += 8
        attributes = body[offset : offset + attr_length]
        offset += attr_length
        if peer_idx >= len(peers):
            raise MrtError(f"peer index {peer_idx} out of range")
        path = _decode_as_path(attributes)
        if path is None:
            continue  # no AS_PATH: not a usable route
        peer = peers[peer_idx]
        yield RibEntry(
            prefix=prefix,
            path=path,
            peer_asn=peer.asn,
            peer_address=peer.address,
            timestamp=originated or timestamp,
        )


def _decode_prefix(body: bytes, offset: int) -> Tuple[Prefix, int]:
    length = body[offset]
    offset += 1
    octets = (length + 7) // 8
    raw = body[offset : offset + octets]
    offset += octets
    network = int.from_bytes(raw + b"\x00" * (4 - octets), "big")
    try:
        return Prefix(network, length), offset
    except ValueError as exc:
        raise MrtError(f"bad prefix in RIB entry: {exc}") from exc


def _decode_as_path(attributes: bytes) -> ASPath:
    offset = 0
    while offset < len(attributes):
        flags = attributes[offset]
        attr_type = attributes[offset + 1]
        if flags & _FLAG_EXTENDED:
            (length,) = struct.unpack_from(">H", attributes, offset + 2)
            offset += 4
        else:
            length = attributes[offset + 2]
            offset += 3
        value = attributes[offset : offset + length]
        offset += length
        if attr_type != _ATTR_AS_PATH:
            continue
        asns: List[int] = []
        seg_offset = 0
        while seg_offset < len(value):
            _seg_type = value[seg_offset]
            count = value[seg_offset + 1]
            seg_offset += 2
            for _n in range(count):
                (asn,) = struct.unpack_from(">I", value, seg_offset)
                seg_offset += 4
                asns.append(asn)
        return ASPath(tuple(asns)) if asns else None
    return None


# ---------------------------------------------------------------------------
# BGP4MP update archives (RFC 6396 §4.4)
# ---------------------------------------------------------------------------


def write_mrt_updates(stream) -> bytes:
    """Encode an :class:`~repro.bgp.history.UpdateStream` as BGP4MP bytes.

    Each update becomes one ``BGP4MP_MESSAGE_AS4`` record wrapping a BGP
    UPDATE message: withdrawals in the withdrawn-routes field, announces
    as ORIGIN + AS_PATH + NEXT_HOP attributes plus NLRI.
    """
    from .history import AnnounceUpdate

    chunks: List[bytes] = []
    for update in stream:
        if isinstance(update, AnnounceUpdate):
            message = _bgp_update_message(
                withdrawn=(),
                attributes=_encode_attributes(update.path),
                nlri=(update.prefix,),
            )
        else:
            message = _bgp_update_message(
                withdrawn=(update.prefix,), attributes=b"", nlri=()
            )
        body = (
            struct.pack(
                ">IIHH",
                update.peer_asn,
                0,  # local AS (collector side)
                0,  # interface index
                _AFI_IPV4,
            )
            + address_to_int(update.peer_address).to_bytes(4, "big")
            + (0).to_bytes(4, "big")  # local address
            + message
        )
        chunks.append(
            struct.pack(
                ">IHHI",
                update.timestamp,
                BGP4MP,
                BGP4MP_MESSAGE_AS4,
                len(body),
            )
            + body
        )
    return b"".join(chunks)


def read_mrt_updates(data: bytes):
    """Decode BGP4MP bytes back into an UpdateStream."""
    from .history import AnnounceUpdate, UpdateStream, WithdrawUpdate

    updates = []
    offset = 0
    while offset < len(data):
        if offset + 12 > len(data):
            raise MrtError("truncated MRT header")
        timestamp, mrt_type, subtype, length = struct.unpack_from(
            ">IHHI", data, offset
        )
        offset += 12
        if offset + length > len(data):
            raise MrtError("truncated MRT record body")
        body = data[offset : offset + length]
        offset += length
        if mrt_type != BGP4MP or subtype != BGP4MP_MESSAGE_AS4:
            continue
        peer_asn, _local_asn, _ifindex, afi = struct.unpack_from(
            ">IIHH", body, 0
        )
        if afi != _AFI_IPV4:
            continue
        peer_address = int_to_address(
            int.from_bytes(body[12:16], "big")
        )
        message = body[20:]
        withdrawn, attributes, nlri = _decode_bgp_update(message)
        for prefix in withdrawn:
            updates.append(
                WithdrawUpdate(
                    timestamp=timestamp,
                    prefix=prefix,
                    peer_asn=peer_asn,
                    peer_address=peer_address,
                )
            )
        if nlri:
            path = _decode_as_path(attributes)
            if path is None:
                raise MrtError("announce without AS_PATH attribute")
            for prefix in nlri:
                updates.append(
                    AnnounceUpdate(
                        timestamp=timestamp,
                        prefix=prefix,
                        path=path,
                        peer_asn=peer_asn,
                        peer_address=peer_address,
                    )
                )
    return UpdateStream(updates)


def _bgp_update_message(withdrawn, attributes: bytes, nlri) -> bytes:
    withdrawn_bytes = b"".join(_encode_prefix(p) for p in withdrawn)
    nlri_bytes = b"".join(_encode_prefix(p) for p in nlri)
    payload = (
        struct.pack(">H", len(withdrawn_bytes))
        + withdrawn_bytes
        + struct.pack(">H", len(attributes))
        + attributes
        + nlri_bytes
    )
    header = b"\xff" * 16 + struct.pack(
        ">HB", 19 + len(payload), _BGP_UPDATE
    )
    return header + payload


def _decode_bgp_update(message: bytes):
    if len(message) < 19:
        raise MrtError("truncated BGP message header")
    (msg_length, msg_type) = struct.unpack_from(">HB", message, 16)
    if msg_type != _BGP_UPDATE:
        return [], b"", []
    payload = message[19:msg_length]
    (withdrawn_length,) = struct.unpack_from(">H", payload, 0)
    offset = 2
    withdrawn = []
    end = offset + withdrawn_length
    while offset < end:
        prefix, offset = _decode_prefix(payload, offset)
        withdrawn.append(prefix)
    (attr_length,) = struct.unpack_from(">H", payload, offset)
    offset += 2
    attributes = payload[offset : offset + attr_length]
    offset += attr_length
    nlri = []
    while offset < len(payload):
        prefix, offset = _decode_prefix(payload, offset)
        nlri.append(prefix)
    return withdrawn, attributes, nlri
