"""Routing-table view over collected BGP data.

:class:`RoutingTable` is the merged, origin-centric view the inference
consumes: for every advertised prefix, the set of origin ASes observed
across all vantage points, with the two lookups of §5.1 step 4 — exact
match (leaf nodes) and least-specific covering prefix (root-node
fallback).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from types import MappingProxyType
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from ..net import Prefix, PrefixTrie
from .aspath import ASPath

__all__ = ["RibEntry", "RoutingTable"]


@dataclass(frozen=True)
class RibEntry:
    """One RIB row: a prefix as seen from one collector peer."""

    prefix: Prefix
    path: ASPath
    peer_asn: int
    peer_address: str = "0.0.0.0"
    timestamp: int = 0

    @property
    def origin(self) -> int:
        """The origin AS of this row."""
        return self.path.origin


class RoutingTable:
    """Prefix → origin-AS view with exact and covering lookups."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[Set[int]] = PrefixTrie()
        # Native hash index over the same origin sets the trie stores;
        # exact-match lookups (one per allocation-tree leaf) skip the
        # per-bit trie walk entirely.
        self._exact: Dict[Prefix, Set[int]] = {}
        self._origin_prefixes: Dict[int, Set[Prefix]] = defaultdict(set)
        self._entry_count = 0

    # -- construction ----------------------------------------------------
    @classmethod
    def from_entries(cls, entries: Iterable[RibEntry]) -> "RoutingTable":
        """Build a merged table from RIB rows (any number of peers)."""
        table = cls()
        for entry in entries:
            table.add_route(entry.prefix, entry.origin)
        return table

    def add_route(self, prefix: Prefix, origin: int) -> None:
        """Record that *origin* was seen originating *prefix*."""
        origins = self._exact.get(prefix)
        if origins is None:
            origins = set()
            self._trie.insert(prefix, origins)
            self._exact[prefix] = origins
        origins.add(origin)
        self._origin_prefixes[origin].add(prefix)
        self._entry_count += 1

    def merge(self, other: "RoutingTable") -> None:
        """Fold another table's routes into this one."""
        for prefix, origins in other._trie.items():
            for origin in origins:
                self.add_route(prefix, origin)

    def withdraw(self, prefix: Prefix) -> bool:
        """Remove every route for *prefix* (all origins, all indexes).

        Returns True when the prefix was advertised.  This is the only
        supported way to retract a route — it keeps the trie, the exact
        index, and the per-origin sets consistent.
        """
        origins = self._exact.pop(prefix, None)
        if origins is None:
            return False
        self._trie.remove(prefix)
        for origin in origins:
            prefixes = self._origin_prefixes.get(origin)
            if prefixes is not None:
                prefixes.discard(prefix)
                if not prefixes:
                    del self._origin_prefixes[origin]
        self._entry_count = max(0, self._entry_count - len(origins))
        return True

    # -- §5.1 step 4 lookups ------------------------------------------------
    def exact_origins(self, prefix: Prefix) -> FrozenSet[int]:
        """Origins of the exact-matching prefix (empty when absent).

        This is the lookup applied to allocation-tree leaf nodes.
        """
        origins = self._exact.get(prefix)
        return frozenset(origins) if origins else frozenset()

    def exact_index(self) -> Mapping[Prefix, AbstractSet[int]]:
        """Read-only live view of the exact prefix → origins index.

        Hot paths (the sharded classifier) use this to resolve leaf
        origins with one dict probe instead of a trie walk.
        """
        return MappingProxyType(self._exact)

    def covering_origins(self, prefix: Prefix) -> FrozenSet[int]:
        """Origins via exact match, else the least-specific covering prefix.

        This is the lookup applied to allocation-tree root nodes: "if an
        exact-matching prefix does not exist, we then search for its
        least-specific covering prefix and origin AS".
        """
        exact = self._exact.get(prefix)
        if exact:
            return frozenset(exact)
        hit = self._trie.least_specific_match(prefix)
        return frozenset(hit[1]) if hit else frozenset()

    def longest_match_origins(self, prefix: Prefix) -> FrozenSet[int]:
        """Origins of the most-specific covering prefix (data-plane view)."""
        hit = self._trie.longest_match(prefix)
        return frozenset(hit[1]) if hit else frozenset()

    def is_advertised(self, prefix: Prefix) -> bool:
        """True when the exact prefix appears in the table."""
        return bool(self._exact.get(prefix))

    def covered_prefixes(self, prefix: Prefix) -> List[Prefix]:
        """Advertised prefixes at or below *prefix* (exact included)."""
        return [covered for covered, _origins in self._trie.covered(prefix)]

    # -- enumeration ------------------------------------------------------
    def prefixes(self) -> Iterator[Prefix]:
        """All advertised prefixes."""
        yield from self._trie.keys()

    def prefixes_of_origin(self, origin: int) -> Set[Prefix]:
        """Prefixes ever originated by *origin* (copy)."""
        return set(self._origin_prefixes.get(origin, ()))

    def origins(self) -> Set[int]:
        """All origin ASes in the table."""
        return set(self._origin_prefixes)

    def items(self) -> Iterator[Tuple[Prefix, FrozenSet[int]]]:
        """Iterate ``(prefix, origins)`` pairs."""
        for prefix, origins in self._trie.items():
            yield prefix, frozenset(origins)

    def moas_prefixes(self) -> List[Tuple[Prefix, FrozenSet[int]]]:
        """Prefixes with multiple origin ASes (MOAS conflicts)."""
        return [
            (prefix, origins)
            for prefix, origins in self.items()
            if len(origins) > 1
        ]

    def num_prefixes(self) -> int:
        """Number of distinct advertised prefixes."""
        return len(self._trie)

    def total_address_space(self) -> int:
        """Distinct routed address count (covering-prefix deduplicated).

        Counts each address once even when covered by several prefixes,
        matching the paper's "0.9% of routed v4 address space" metric.
        """
        total = 0
        for prefix, _origins in self._trie.roots():
            total += prefix.num_addresses
        return total

    def __len__(self) -> int:
        return self._entry_count

    def __contains__(self, prefix: Prefix) -> bool:
        return self.is_advertised(prefix)


def merge_tables(tables: Iterable[RoutingTable]) -> RoutingTable:
    """Merge many per-collector tables into one global view."""
    merged = RoutingTable()
    for table in tables:
        merged.merge(table)
    return merged
