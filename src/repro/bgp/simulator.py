"""Gao–Rexford route propagation over an AS topology.

Given one origin AS, computes the best route every other AS selects under
the standard policy model:

* **Export**: routes learned from customers are exported to everyone;
  routes learned from peers or providers are exported to customers only
  (valley-free routing).
* **Selection**: prefer customer-learned over peer-learned over
  provider-learned routes; among equals prefer the shortest AS path; break
  remaining ties on the lowest next-hop ASN (deterministic).

The result feeds the synthetic collectors: a collector peer's selected
route for an origin becomes that origin's RIB rows for every prefix it
announces.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .topology import ASTopology

__all__ = ["RouteKind", "Route", "propagate"]


class RouteKind(enum.IntEnum):
    """How an AS learned its best route; lower is preferred."""

    ORIGIN = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class Route:
    """The route selected by one AS: its full path down to the origin."""

    path: Tuple[int, ...]
    kind: RouteKind

    @property
    def origin(self) -> int:
        """The origin AS."""
        return self.path[-1]

    @property
    def length(self) -> int:
        """AS-path length."""
        return len(self.path)


def propagate(topology: ASTopology, origin: int) -> Dict[int, Route]:
    """Best route per AS for prefixes originated by *origin*.

    ASes that never hear the announcement are absent from the result.
    """
    if origin not in topology:
        return {}
    routes: Dict[int, Route] = {
        origin: Route(path=(origin,), kind=RouteKind.ORIGIN)
    }

    # Phase 1 — customer routes climb provider links (BFS by path length,
    # lowest-ASN parent wins ties because candidates are scanned sorted).
    frontier = deque([origin])
    while frontier:
        current = frontier.popleft()
        route = routes[current]
        for provider in sorted(topology.providers(current)):
            candidate = Route(
                path=(provider,) + route.path, kind=RouteKind.CUSTOMER
            )
            if _better(candidate, routes.get(provider)):
                routes[provider] = candidate
                frontier.append(provider)

    # Phase 2 — one peer hop: ASes holding customer (or origin) routes
    # export them across p2p links.
    customer_routed = [
        asn
        for asn, route in routes.items()
        if route.kind in (RouteKind.ORIGIN, RouteKind.CUSTOMER)
    ]
    peer_offers: Dict[int, Route] = {}
    for asn in sorted(customer_routed):
        route = routes[asn]
        for peer in sorted(topology.peers(asn)):
            if peer in routes:
                continue  # already has a customer route: preferred
            candidate = Route(path=(peer,) + route.path, kind=RouteKind.PEER)
            if _better(candidate, peer_offers.get(peer)):
                peer_offers[peer] = candidate
    routes.update(peer_offers)

    # Phase 3 — descent: every routed AS exports to its customers;
    # provider-learned routes cascade further down.  BFS ordered by path
    # length keeps selection consistent with shortest-path preference.
    frontier = deque(sorted(routes, key=lambda asn: routes[asn].length))
    while frontier:
        current = frontier.popleft()
        route = routes[current]
        for customer in sorted(topology.customers(current)):
            candidate = Route(
                path=(customer,) + route.path, kind=RouteKind.PROVIDER
            )
            existing = routes.get(customer)
            if existing is not None and existing.kind is not RouteKind.PROVIDER:
                continue  # customer/peer routes beat provider routes
            if _better(candidate, existing):
                routes[customer] = candidate
                frontier.append(customer)
    return routes


def _better(candidate: Route, incumbent: Optional[Route]) -> bool:
    """Gao–Rexford preference: kind, then length, then lowest next hop."""
    if incumbent is None:
        return True
    if candidate.kind is not incumbent.kind:
        return candidate.kind < incumbent.kind
    if candidate.length != incumbent.length:
        return candidate.length < incumbent.length
    return candidate.path < incumbent.path
