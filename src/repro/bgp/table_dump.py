"""Text table-dump format (the ``bgpdump -m`` pipe style).

Routeviews and RIPE RIS RIB archives are conventionally post-processed
into one-line-per-route pipe-separated records::

    TABLE_DUMP2|1712102400|B|198.32.160.1|3356|213.210.33.0/24|3356 8851 15169|IGP

Fields: marker, unix timestamp, type, peer address, peer ASN, prefix,
AS path, origin protocol.  This module reads and writes that format so
synthetic RIBs are materialized the same way real ones would be.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, TextIO, Union

from ..net import Prefix
from .aspath import ASPath
from .rib import RibEntry

__all__ = ["parse_line", "read_table_dump", "write_table_dump"]

_MARKER = "TABLE_DUMP2"
_TYPE = "B"
_PROTOCOL = "IGP"


class TableDumpError(ValueError):
    """Raised on malformed table-dump lines."""


def format_entry(entry: RibEntry) -> str:
    """Render one RIB row as a pipe-separated line."""
    return "|".join(
        (
            _MARKER,
            str(entry.timestamp),
            _TYPE,
            entry.peer_address,
            str(entry.peer_asn),
            str(entry.prefix),
            str(entry.path),
            _PROTOCOL,
        )
    )


def parse_line(line: str) -> RibEntry:
    """Parse one pipe-separated line into a :class:`RibEntry`."""
    fields = line.rstrip("\n").split("|")
    if len(fields) < 7:
        raise TableDumpError(f"too few fields: {line!r}")
    marker, timestamp, _type, peer_address, peer_asn, prefix, path = fields[:7]
    if marker != _MARKER:
        raise TableDumpError(f"unexpected marker {marker!r}")
    try:
        return RibEntry(
            prefix=Prefix.parse(prefix),
            path=ASPath.parse(path),
            peer_asn=int(peer_asn),
            peer_address=peer_address,
            timestamp=int(timestamp),
        )
    except ValueError as exc:
        raise TableDumpError(f"malformed line {line!r}: {exc}") from exc


def read_table_dump(
    source: Union[str, TextIO, Iterable[str]], strict: bool = False
) -> Iterator[RibEntry]:
    """Yield RIB rows from dump text, an open file, or an iterable of lines.

    Real archives contain occasional malformed rows; by default they are
    skipped, matching common measurement practice.  Pass ``strict=True``
    to raise instead.
    """
    lines = source.splitlines() if isinstance(source, str) else source
    for line in lines:
        if not line.strip():
            continue
        try:
            yield parse_line(line)
        except TableDumpError:
            if strict:
                raise


def write_table_dump(entries: Iterable[RibEntry]) -> str:
    """Render RIB rows to dump text (one line each, trailing newline)."""
    rendered: List[str] = [format_entry(entry) for entry in entries]
    return "\n".join(rendered) + ("\n" if rendered else "")
