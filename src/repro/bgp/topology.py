"""AS-level topology: providers, customers, and peers.

Relationships follow the CAIDA convention used by the paper's AS
Relationships dataset: provider-to-customer (p2c, coded ``-1`` as
``provider|customer|-1``) and peer-to-peer (p2p, coded ``0``).  The
topology both drives the route-propagation simulator and is exported as
the serial-1 relationship file the inference consumes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

__all__ = ["P2C", "P2P", "ASTopology"]

#: CAIDA serial-1 relationship codes.
P2C = -1
P2P = 0


class ASTopology:
    """A mutable AS graph with p2c and p2p edges."""

    def __init__(self) -> None:
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}
        self._cone_cache: Dict[int, FrozenSet[int]] = {}

    # -- construction -----------------------------------------------------
    def add_asn(self, asn: int) -> None:
        """Ensure *asn* exists (possibly with no links)."""
        self._providers.setdefault(asn, set())
        self._customers.setdefault(asn, set())
        self._peers.setdefault(asn, set())

    def add_p2c(self, provider: int, customer: int) -> None:
        """Add a provider→customer (transit) link."""
        if provider == customer:
            raise ValueError(f"self link on AS{provider}")
        self.add_asn(provider)
        self.add_asn(customer)
        self._customers[provider].add(customer)
        self._providers[customer].add(provider)
        self._cone_cache.clear()

    def add_p2p(self, left: int, right: int) -> None:
        """Add a settlement-free peering link."""
        if left == right:
            raise ValueError(f"self peering on AS{left}")
        self.add_asn(left)
        self.add_asn(right)
        self._peers[left].add(right)
        self._peers[right].add(left)

    # -- queries ------------------------------------------------------------
    def asns(self) -> List[int]:
        """All ASNs, ascending."""
        return sorted(self._providers)

    def __contains__(self, asn: int) -> bool:
        return asn in self._providers

    def __len__(self) -> int:
        return len(self._providers)

    def providers(self, asn: int) -> Set[int]:
        """Direct providers of *asn* (copy)."""
        return set(self._providers.get(asn, ()))

    def customers(self, asn: int) -> Set[int]:
        """Direct customers of *asn* (copy)."""
        return set(self._customers.get(asn, ()))

    def peers(self, asn: int) -> Set[int]:
        """Settlement-free peers of *asn* (copy)."""
        return set(self._peers.get(asn, ()))

    def degree(self, asn: int) -> int:
        """Total neighbor count."""
        return (
            len(self._providers.get(asn, ()))
            + len(self._customers.get(asn, ()))
            + len(self._peers.get(asn, ()))
        )

    def is_stub(self, asn: int) -> bool:
        """True when *asn* has no customers (edge AS)."""
        return not self._customers.get(asn)

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate ``(a, b, code)`` edges in CAIDA orientation.

        p2c edges appear once as ``(provider, customer, P2C)``; p2p edges
        appear once with ``a < b``.
        """
        for provider in sorted(self._customers):
            for customer in sorted(self._customers[provider]):
                yield provider, customer, P2C
        for left in sorted(self._peers):
            for right in sorted(self._peers[left]):
                if left < right:
                    yield left, right, P2P

    # -- derived structure ---------------------------------------------------
    def customer_cone(self, asn: int) -> FrozenSet[int]:
        """The customer cone of *asn*: itself plus transitive customers.

        Cached; mutating p2c links invalidates the cache.
        """
        cached = self._cone_cache.get(asn)
        if cached is not None:
            return cached
        cone: Set[int] = {asn}
        queue = deque(self._customers.get(asn, ()))
        while queue:
            current = queue.popleft()
            if current in cone:
                continue
            cone.add(current)
            queue.extend(self._customers.get(current, ()))
        frozen = frozenset(cone)
        self._cone_cache[asn] = frozen
        return frozen

    def clique(self) -> List[int]:
        """Provider-free ASes (the transit top, tier-1-like)."""
        return [asn for asn in self.asns() if not self._providers[asn]]

    def has_transit_path_to_top(self, asn: int) -> bool:
        """True when a provider chain reaches a provider-free AS."""
        seen: Set[int] = set()
        queue = deque([asn])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            providers = self._providers.get(current, set())
            if not providers:
                return True
            queue.extend(providers)
        return False
