"""Sequenced BGP4MP update feeds (the streaming wire format).

Between collector RIB dumps the simulator emits announce/withdraw
messages in the one-line-per-message ``bgpdump -m`` style, extended with
a trailing monotonic **sequence number** column (the ``rv_ingest``
idiom: every message carries the position the collector assigned at
ingest, so consumers can detect gaps and reordering without trusting
timestamps)::

    BGP4MP|<ts>|A|<peer_ip>|<peer_asn>|<prefix>|<as_path>|IGP|<seq>
    BGP4MP|<ts>|W|<peer_ip>|<peer_asn>|<prefix>|<seq>

Unlike the lenient historical reader in :mod:`repro.bgp.history` (which
skims real archives where trailing attribute columns vary), this parser
is **strict**: exact field counts, numeric fields that must parse, a
known protocol token, and strictly increasing sequence numbers across a
feed.  A streaming consumer that silently accepted malformed or
reordered input would corrupt the incremental engine's overlay — better
to reject at the boundary.

:class:`ReplayLog` is the committed-fixture form of a generated update
stream: the world it was generated against plus the burst lines, JSON
round-trippable so shrunk hypothesis failures land in
``tests/fixtures/stream/`` as regression cases.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, TextIO, Tuple, Union

from ..net import AddressError, Prefix
from .aspath import ASPath
from .history import AnnounceUpdate, Update, WithdrawUpdate

__all__ = [
    "ReplayLog",
    "SequenceError",
    "SequenceGenerator",
    "SequencedUpdate",
    "UpdateParseError",
    "format_sequenced",
    "parse_sequenced_line",
    "read_updates",
    "write_updates",
]

_MARKER = "BGP4MP"
_ANNOUNCE_FIELDS = 9
_WITHDRAW_FIELDS = 7
_PROTOCOLS = frozenset({"IGP", "EGP", "INCOMPLETE"})


class UpdateParseError(ValueError):
    """Raised on a malformed sequenced update line."""


class SequenceError(ValueError):
    """Raised when a feed's sequence numbers are not strictly increasing."""


@dataclass(frozen=True, order=True)
class SequencedUpdate:
    """One feed message: the collector-assigned sequence plus the update."""

    sequence: int
    update: Update

    @property
    def prefix(self) -> Prefix:
        return self.update.prefix

    @property
    def is_announce(self) -> bool:
        return isinstance(self.update, AnnounceUpdate)


class SequenceGenerator:
    """Monotonic sequence numbers, continuous across bursts.

    One generator lives for the whole feed; every emitted message takes
    the next number, so burst boundaries never reset the sequence and a
    consumer can splice bursts back into one ordered feed.
    """

    def __init__(self, start: int = 1) -> None:
        if start < 0:
            raise ValueError(f"sequence start must be >= 0, got {start}")
        self._next = start

    def take(self) -> int:
        """The next sequence number (each call advances)."""
        value = self._next
        self._next += 1
        return value

    def stamp(self, update: Update) -> SequencedUpdate:
        """Wrap *update* with the next sequence number."""
        return SequencedUpdate(sequence=self.take(), update=update)


def format_sequenced(message: SequencedUpdate) -> str:
    """Render one sequenced update as a pipe line."""
    update = message.update
    if isinstance(update, AnnounceUpdate):
        fields = (
            _MARKER,
            str(update.timestamp),
            "A",
            update.peer_address,
            str(update.peer_asn),
            str(update.prefix),
            str(update.path),
            "IGP",
            str(message.sequence),
        )
    else:
        fields = (
            _MARKER,
            str(update.timestamp),
            "W",
            update.peer_address,
            str(update.peer_asn),
            str(update.prefix),
            str(message.sequence),
        )
    return "|".join(fields)


def _parse_int(text: str, what: str, line: str) -> int:
    try:
        return int(text)
    except ValueError as exc:
        raise UpdateParseError(
            f"non-numeric {what} {text!r} in line {line!r}"
        ) from exc


def parse_sequenced_line(line: str) -> SequencedUpdate:
    """Parse one sequenced update line, rejecting anything malformed.

    Announce lines must have exactly nine fields, withdraw lines exactly
    seven; timestamps, peer ASNs, and sequence numbers must be integers;
    the prefix and AS path must parse; the protocol token must be one of
    ``IGP``/``EGP``/``INCOMPLETE``.
    """
    stripped = line.rstrip("\n")
    fields = stripped.split("|")
    if len(fields) < 3:
        raise UpdateParseError(f"too few fields: {stripped!r}")
    if fields[0] != _MARKER:
        raise UpdateParseError(f"unexpected marker {fields[0]!r}")
    kind = fields[2]
    if kind == "A":
        if len(fields) != _ANNOUNCE_FIELDS:
            raise UpdateParseError(
                f"announce needs {_ANNOUNCE_FIELDS} fields, "
                f"got {len(fields)}: {stripped!r}"
            )
    elif kind == "W":
        if len(fields) != _WITHDRAW_FIELDS:
            raise UpdateParseError(
                f"withdraw needs {_WITHDRAW_FIELDS} fields, "
                f"got {len(fields)}: {stripped!r}"
            )
    else:
        raise UpdateParseError(f"unknown update kind {kind!r}: {stripped!r}")
    timestamp = _parse_int(fields[1], "timestamp", stripped)
    peer_address = fields[3]
    peer_asn = _parse_int(fields[4], "peer ASN", stripped)
    try:
        prefix = Prefix.parse(fields[5])
    except (AddressError, ValueError) as exc:
        raise UpdateParseError(
            f"unparseable prefix {fields[5]!r} in line {stripped!r}"
        ) from exc
    if kind == "A":
        try:
            path = ASPath.parse(fields[6])
        except ValueError as exc:
            raise UpdateParseError(
                f"unparseable AS path {fields[6]!r} in line {stripped!r}"
            ) from exc
        if fields[7] not in _PROTOCOLS:
            raise UpdateParseError(
                f"unknown protocol {fields[7]!r} in line {stripped!r}"
            )
        sequence = _parse_int(fields[8], "sequence", stripped)
        update: Update = AnnounceUpdate(
            timestamp=timestamp,
            prefix=prefix,
            path=path,
            peer_asn=peer_asn,
            peer_address=peer_address,
        )
    else:
        sequence = _parse_int(fields[6], "sequence", stripped)
        update = WithdrawUpdate(
            timestamp=timestamp,
            prefix=prefix,
            peer_asn=peer_asn,
            peer_address=peer_address,
        )
    if sequence < 0:
        raise UpdateParseError(f"negative sequence in line {stripped!r}")
    return SequencedUpdate(sequence=sequence, update=update)


def read_updates(
    source: Union[str, TextIO, Iterable[str]]
) -> Iterator[SequencedUpdate]:
    """Yield sequenced updates from feed text, a file, or lines.

    Strict on both axes: any malformed line raises
    :class:`UpdateParseError`, and sequence numbers must be strictly
    increasing across the whole feed or :class:`SequenceError` is raised
    (a duplicate or backwards sequence means the transport reordered or
    replayed messages — the overlay must not apply them).
    """
    lines = source.splitlines() if isinstance(source, str) else source
    last: Optional[int] = None
    for line in lines:
        if not line.strip():
            continue
        message = parse_sequenced_line(line)
        if last is not None and message.sequence <= last:
            raise SequenceError(
                f"sequence {message.sequence} after {last}: "
                "feed is out of order"
            )
        last = message.sequence
        yield message


def write_updates(messages: Iterable[SequencedUpdate]) -> str:
    """Render a feed to text (one line per message, trailing newline)."""
    rendered: List[str] = [format_sequenced(message) for message in messages]
    return "\n".join(rendered) + ("\n" if rendered else "")


@dataclass(frozen=True)
class ReplayLog:
    """A committed, replayable update stream: world recipe plus bursts.

    ``world_size``/``world_seed`` name the :func:`bench_world` the
    stream was generated against; ``bursts`` holds each burst's lines in
    feed order.  The JSON form is what lands under
    ``tests/fixtures/stream/`` when a differential-harness failure is
    shrunk to a regression case.
    """

    world_size: str
    world_seed: int
    bursts: Tuple[Tuple[str, ...], ...]

    def burst_updates(self) -> List[List[SequencedUpdate]]:
        """Parse every burst back into sequenced updates (strict)."""
        parsed: List[List[SequencedUpdate]] = []
        for burst in self.bursts:
            parsed.append(list(read_updates(burst)))
        return parsed

    def to_json(self) -> str:
        """Serialize for committing as a fixture."""
        return json.dumps(
            {
                "world_size": self.world_size,
                "world_seed": self.world_seed,
                "bursts": [list(burst) for burst in self.bursts],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ReplayLog":
        """Load a committed fixture (raises on missing keys)."""
        payload = json.loads(text)
        return cls(
            world_size=str(payload["world_size"]),
            world_seed=int(payload["world_seed"]),
            bursts=tuple(
                tuple(str(line) for line in burst)
                for burst in payload["bursts"]
            ),
        )
