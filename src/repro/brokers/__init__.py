"""Broker substrate: registered-broker lists and org-name matching."""

from .matching import (
    BrokerMatch,
    MatchReport,
    match_brokers,
    normalize_company_name,
)
from .registry import BrokerRegistry, RegisteredBroker

__all__ = [
    "BrokerMatch",
    "BrokerRegistry",
    "MatchReport",
    "RegisteredBroker",
    "match_brokers",
    "normalize_company_name",
]
