"""Matching broker company names to WHOIS organisation records.

§6.2: of RIPE's 115 registered brokers, 46 mapped directly to WHOIS
entries and 39 required manual matching "due to inconsistencies such as
variations in legal entity suffixes (e.g., LTD vs. L.T.D.),
abbreviations, and fictitious business names"; 30 were absent from the
database entirely.  This module reproduces that workflow: exact match on
normalized names, then a fuzzy pass, then an explicit *unmatched* bucket.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..whois.database import WhoisDatabase
from ..whois.objects import OrgRecord
from .registry import RegisteredBroker

__all__ = [
    "normalize_company_name",
    "BrokerMatch",
    "MatchReport",
    "match_brokers",
]

# Legal-entity designators stripped during normalization.  Dotted
# spellings (L.T.D.) collapse once punctuation is removed.
_LEGAL_SUFFIXES = {
    "ltd", "limited", "llc", "inc", "incorporated", "corp", "corporation",
    "co", "company", "gmbh", "bv", "b.v", "sa", "srl", "sro", "oy", "ab",
    "as", "aps", "plc", "pte", "pty", "kk", "sarl", "sl", "ug", "fzco",
    "fze", "fzc", "llp", "lp", "sp", "zoo", "doo", "ooo", "ltda",
}

_PUNCTUATION = re.compile(r"[^\w\s]")
_WHITESPACE = re.compile(r"\s+")


def normalize_company_name(name: str) -> str:
    """Canonical form for company-name comparison.

    Lower-cases, strips punctuation (so ``L.T.D.`` becomes ``ltd``),
    collapses whitespace, and removes trailing legal-entity designators
    (repeatedly, so ``X Co. Ltd.`` reduces to ``x``).
    """
    text = _PUNCTUATION.sub("", name.casefold())
    tokens = _WHITESPACE.split(text.strip())
    while len(tokens) > 1 and tokens[-1] in _LEGAL_SUFFIXES:
        tokens.pop()
    return " ".join(tokens)


@dataclass(frozen=True)
class BrokerMatch:
    """One broker resolved to a WHOIS organisation."""

    broker: RegisteredBroker
    org: OrgRecord
    method: str  # "exact" or "fuzzy"
    score: float = 1.0


@dataclass
class MatchReport:
    """Outcome of matching a broker list against one WHOIS database."""

    matches: List[BrokerMatch] = field(default_factory=list)
    unmatched: List[RegisteredBroker] = field(default_factory=list)

    @property
    def exact_count(self) -> int:
        """Brokers resolved by exact normalized-name equality."""
        return sum(1 for match in self.matches if match.method == "exact")

    @property
    def fuzzy_count(self) -> int:
        """Brokers resolved by the fuzzy pass."""
        return sum(1 for match in self.matches if match.method == "fuzzy")

    def matched_org_ids(self) -> List[str]:
        """Organisation handles of all matched brokers (deduplicated)."""
        seen: Dict[str, None] = {}
        for match in self.matches:
            seen.setdefault(match.org.org_id, None)
        return list(seen)

    def maintainer_handles(self) -> List[str]:
        """Maintainer handles of all matched organisations (deduplicated).

        These are the handles whose address blocks become candidate
        positive labels (§5.3).
        """
        seen: Dict[str, None] = {}
        for match in self.matches:
            for handle in match.org.maintainers:
                seen.setdefault(handle, None)
        return list(seen)


def match_brokers(
    brokers: List[RegisteredBroker],
    database: WhoisDatabase,
    fuzzy_threshold: float = 0.88,
) -> MatchReport:
    """Resolve *brokers* against the organisations of *database*.

    Exact pass: normalized broker name equals a normalized org name.
    Fuzzy pass: best :class:`difflib.SequenceMatcher` ratio over
    normalized names at or above *fuzzy_threshold*.  Brokers that fail
    both passes land in ``unmatched`` (the paper's 30 absent brokers).
    """
    orgs_by_norm: Dict[str, List[OrgRecord]] = {}
    for org in database.orgs.values():
        orgs_by_norm.setdefault(normalize_company_name(org.name), []).append(
            org
        )
    norm_names = sorted(orgs_by_norm)

    report = MatchReport()
    for broker in brokers:
        broker_norm = normalize_company_name(broker.name)
        exact = orgs_by_norm.get(broker_norm)
        if exact:
            for org in exact:
                report.matches.append(
                    BrokerMatch(broker=broker, org=org, method="exact")
                )
            continue
        best = _best_fuzzy(broker_norm, norm_names)
        if best is not None and best[1] >= fuzzy_threshold:
            for org in orgs_by_norm[best[0]]:
                report.matches.append(
                    BrokerMatch(
                        broker=broker, org=org, method="fuzzy", score=best[1]
                    )
                )
            continue
        report.unmatched.append(broker)
    return report


def _best_fuzzy(
    target: str, candidates: List[str]
) -> Optional[Tuple[str, float]]:
    """The candidate with the highest similarity ratio to *target*."""
    if not target or not candidates:
        return None
    best_name: Optional[str] = None
    best_score = 0.0
    matcher = difflib.SequenceMatcher()
    matcher.set_seq2(target)
    for candidate in candidates:
        matcher.set_seq1(candidate)
        # Cheap upper bounds prune most candidates before full ratio.
        if matcher.real_quick_ratio() <= best_score:
            continue
        score = matcher.ratio()
        if score > best_score:
            best_name, best_score = candidate, score
    if best_name is None:
        return None
    return best_name, best_score
