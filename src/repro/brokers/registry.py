"""Registered IP broker lists.

§4 of the paper assembles 162 registered brokers: 115 from the archived
RIPE "recognized brokers" page, 38 APNIC "registered brokers", and 9
ARIN "qualified facilitators".  This module models those lists with a
simple CSV on-disk format (``rir,name``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List

from ..rir import RIR

__all__ = ["RegisteredBroker", "BrokerRegistry"]


@dataclass(frozen=True)
class RegisteredBroker:
    """One broker as listed by an RIR (name as published, possibly messy)."""

    rir: RIR
    name: str

    def __post_init__(self) -> None:
        if not self.name.strip():
            raise ValueError("broker name must be non-empty")


class BrokerRegistry:
    """Registered brokers grouped by listing RIR."""

    def __init__(self, brokers: Iterable[RegisteredBroker] = ()) -> None:
        self._by_rir: Dict[RIR, List[RegisteredBroker]] = {}
        for broker in brokers:
            self.add(broker)

    def add(self, broker: RegisteredBroker) -> None:
        """Register one broker."""
        self._by_rir.setdefault(broker.rir, []).append(broker)

    def brokers(self, rir: RIR) -> List[RegisteredBroker]:
        """Brokers listed by *rir* (copy)."""
        return list(self._by_rir.get(rir, ()))

    def all_brokers(self) -> List[RegisteredBroker]:
        """All brokers across registries."""
        result: List[RegisteredBroker] = []
        for rir in sorted(self._by_rir, key=lambda r: r.name):
            result.extend(self._by_rir[rir])
        return result

    def __len__(self) -> int:
        return sum(len(brokers) for brokers in self._by_rir.values())

    def __iter__(self) -> Iterator[RegisteredBroker]:
        return iter(self.all_brokers())

    # -- CSV format --------------------------------------------------------
    @classmethod
    def from_csv(cls, text: str) -> "BrokerRegistry":
        """Parse ``rir,name`` CSV (header optional, ``#`` comments)."""
        registry = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#") or line.lower().startswith("rir,"):
                continue
            rir_text, _, name = line.partition(",")
            registry.add(RegisteredBroker(RIR.parse(rir_text), name.strip()))
        return registry

    def to_csv(self) -> str:
        """Serialize to ``rir,name`` CSV with a header."""
        lines = ["rir,name"]
        lines.extend(
            f"{broker.rir.value},{broker.name}" for broker in self.all_brokers()
        )
        return "\n".join(lines) + "\n"
