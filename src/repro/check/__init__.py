"""``repro check`` — AST-based invariant analyzer for the repo itself.

The dataset diagnostics engine (:mod:`repro.diagnostics`) audits the
*inputs* of the inference; this package audits the *source code* that
consumes them.  The scaling work of PRs 2–4 rests on invariants that
are enforced only by convention — frozen snapshots are never mutated,
fast engines stay bit-identical to their frozen references, the asyncio
serve loop never blocks — and a single unsorted ``set`` iteration or an
unseeded ``random`` call silently breaks the reproducibility claims the
paper's §5 methodology depends on.

The analyzer mirrors the diagnostics design: small independent
:class:`~repro.check.model.CheckRule` classes register through
``@register_check_rule``, an engine runs them over parsed modules, and
the rule docstrings render into ``docs/STATIC_ANALYSIS.md``.  Findings
can be suppressed inline with a mandatory justification::

    risky_call()  # repro-check: ignore[RC104] -- why this is fine

Entry points: ``repro check`` (CLI), ``make check``, and the CI
``static-check`` job.  ``python -m repro.check.ratchet`` guards the
companion mypy strict-mode baseline in ``scripts/mypy_ratchet.json``.
"""

from .engine import CheckEngine, CheckReport, load_project
from .model import (
    CheckFinding,
    CheckRule,
    all_check_rules,
    check_rule_for_code,
    register_check_rule,
)

__all__ = [
    "CheckEngine",
    "CheckReport",
    "CheckFinding",
    "CheckRule",
    "all_check_rules",
    "check_rule_for_code",
    "load_project",
    "register_check_rule",
]
