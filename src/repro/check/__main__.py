"""``python -m repro.check`` prints the generated rule catalog.

``make docs`` redirects this into ``docs/STATIC_ANALYSIS.md``, exactly
like ``python -m repro.diagnostics`` feeds ``docs/DIAGNOSTICS.md``.
"""

from .catalog import render_check_catalog

if __name__ == "__main__":
    print(render_check_catalog())
