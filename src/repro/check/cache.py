"""Content-hash result cache for the incremental check engine.

One JSON file (``.repro-check-cache.json`` by default) maps each
analyzed file to its content hash, its distilled
:class:`~repro.check.graph.ModuleFacts`, and the module-scope findings
it produced.  On a warm run the engine re-parses only files whose hash
changed; unchanged files contribute their cached facts to the project
graph and their cached findings to the report, so whole-program rules
still see the whole program and the report is byte-identical to a cold
run by construction — cold runs read their own freshly written entries
through the same deserializer.

The cache is invalidated wholesale when the *fingerprint* changes: the
cache format version, the rule set, or any rule's effective severity.
A stale or unreadable cache never fails the run — it degrades to a
cold run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional

from ..diagnostics.model import Severity
from .model import CheckFinding, Fix, WitnessStep

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_NAME",
    "file_sha",
    "finding_from_dict",
    "finding_to_dict",
    "load_entries",
    "save_entries",
]

#: Bump when the entry layout or the facts schema changes shape.
#: v2: per-function flow summaries (CFG taint/leak/shared-write facts)
#: ride inside ``ModuleFacts`` and findings may carry witness paths.
CACHE_VERSION = 2

#: Cache file name when ``--cache`` is not given (created under the
#: analyzed root; gitignored).
DEFAULT_CACHE_NAME = ".repro-check-cache.json"


def file_sha(path: Path) -> str:
    """Hex sha256 of *path*'s bytes."""
    return hashlib.sha256(path.read_bytes()).hexdigest()


def finding_to_dict(finding: CheckFinding) -> Dict[str, object]:
    """Full-fidelity serialization (unlike ``to_dict``, keeps the fix)."""
    payload: Dict[str, object] = {
        "code": finding.code,
        "severity": finding.severity.value,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "message": finding.message,
        "remediation": finding.remediation,
        "fix": None,
    }
    if finding.fix is not None:
        payload["fix"] = {
            "start": list(finding.fix.start),
            "end": list(finding.fix.end),
            "replacement": finding.fix.replacement,
        }
    if finding.flow:
        payload["flow"] = [step.to_dict() for step in finding.flow]
    return payload


def finding_from_dict(payload: Dict[str, object]) -> CheckFinding:
    """Inverse of :func:`finding_to_dict`."""
    fix_payload = payload.get("fix")
    fix = None
    if isinstance(fix_payload, dict):
        fix = Fix(
            start=tuple(fix_payload["start"]),
            end=tuple(fix_payload["end"]),
            replacement=str(fix_payload["replacement"]),
        )
    return CheckFinding(
        code=str(payload["code"]),
        severity=Severity.parse(str(payload["severity"])),
        path=str(payload["path"]),
        line=int(payload["line"]),  # type: ignore[arg-type]
        column=int(payload["column"]),  # type: ignore[arg-type]
        message=str(payload["message"]),
        remediation=str(payload["remediation"]),
        fix=fix,
        flow=tuple(
            WitnessStep(
                path=str(step["path"]),
                line=int(step["line"]),  # type: ignore[index]
                column=int(step["column"]),  # type: ignore[index]
                note=str(step["note"]),  # type: ignore[index]
            )
            for step in payload.get("flow", ())  # type: ignore[union-attr]
        ),
    )


def load_entries(
    path: Optional[Path], fingerprint: Dict[str, object]
) -> Dict[str, Dict[str, object]]:
    """Per-file cache entries, or empty when absent/stale/corrupt."""
    if path is None or not path.is_file():
        return {}
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(document, dict):
        return {}
    if document.get("fingerprint") != fingerprint:
        return {}
    entries = document.get("entries")
    return entries if isinstance(entries, dict) else {}


def save_entries(
    path: Path,
    fingerprint: Dict[str, object],
    entries: Dict[str, Dict[str, object]],
) -> None:
    """Write the cache document (best effort — failures never gate)."""
    document = {"fingerprint": fingerprint, "entries": entries}
    try:
        path.write_text(
            json.dumps(document, sort_keys=True), encoding="utf-8"
        )
    except OSError:  # repro-check: ignore[RC106] -- cache is an
        pass  # optimization; an unwritable cache must not fail the run
