"""Parsed-source context shared by every ``repro check`` rule.

:class:`ModuleSource` is one parsed Python file: text, line table, AST,
and the inline-suppression map.  :class:`ProjectContext` is the whole
checked tree — it resolves class definitions across modules (for the
pickle-safety rule), concatenates ``docs/*.md`` (for the CLI-flag
rule), and owns the shared *local type inference* heuristic used by the
immutability and pickle-safety rules.

Suppressions are deliberately strict: ``# repro-check: ignore[RC104]``
only takes effect when followed by ``-- <justification>``.  A
suppression without a reason is inert, so the underlying finding stays
visible until someone writes down *why* the code is allowed to break
the invariant.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Container, Dict, List, Optional, Set, Tuple

__all__ = [
    "ModuleSource",
    "ProjectContext",
    "infer_local_types",
    "annotation_class_name",
    "iter_scopes",
    "reference_corpus",
    "walk_scope",
]

#: Matches suppression comments — ``ignore[RC104]`` or
#: ``ignore[RC104,RC106]`` after the tool prefix, with a mandatory
#: ``-- reason`` tail for the suppression to take effect.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-check:\s*ignore\[(?P<codes>[A-Z0-9,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)

#: Matches the module-name directive used by rule fixtures that sit
#: outside the package tree: ``# repro-check: module=repro.core.foo``
#: makes the file analyze as if it were that module (layer rules and
#: defining-module exemptions need a dotted name to reason about).
_MODULE_DIRECTIVE_RE = re.compile(
    r"#\s*repro-check:\s*module=(?P<name>[A-Za-z_][\w.]*)"
)


class ModuleSource:
    """One parsed module: path, text, AST, and suppression map."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.tree = ast.parse(self.text, filename=self.rel)
        #: dotted module name when under ``src/`` (``repro.core.pipeline``),
        #: empty for scripts/tests outside the package tree.
        self.module = _dotted_name(self.rel)
        comments = _iter_comments(self.text)
        directive = _module_directive(comments)
        if directive is not None:
            self.module = directive
        self._suppressions, raw = _parse_suppressions(self.text, comments)
        #: suppression comments missing the mandatory justification,
        #: surfaced by the engine so they are fixed rather than trusted.
        self.inert_suppressions: List[Tuple[int, str]] = [
            (lineno, codes) for lineno, codes, reason in raw if not reason
        ]
        self._facts = None

    @property
    def suppressions(self) -> Dict[int, Set[str]]:
        """1-based line → codes effectively suppressed there."""
        return self._suppressions

    @property
    def facts(self):
        """This module's :class:`~repro.check.graph.ModuleFacts` (cached).

        The import is deferred: :mod:`repro.check.graph` consumes the
        helpers defined below, so a top-level import here would create
        exactly the cycle RC109 exists to forbid.
        """
        if self._facts is None:
            from .graph import extract_facts

            self._facts = extract_facts(self)
        return self._facts

    def is_suppressed(self, code: str, line: int) -> bool:
        """True when *code* is suppressed at 1-based *line*."""
        return code in self._suppressions.get(line, set())

    def segment(self, node: ast.AST) -> str:
        """The exact source text of *node* (empty if span unknown)."""
        return ast.get_source_segment(self.text, node) or ""


class ProjectContext:
    """The whole checked tree plus lazily built cross-module indexes."""

    def __init__(self, root: Path, modules: List[ModuleSource]) -> None:
        self.root = root
        self.modules = modules
        self._classes: Optional[Dict[str, List[Tuple[ModuleSource, ast.ClassDef]]]]
        self._classes = None
        self._docs_text: Optional[str] = None
        self._graph = None

    def graph(self):
        """The whole-program :class:`~repro.check.graph.ProjectGraph`.

        Built lazily from every module's facts plus the reference
        corpus, and cached — the RC109–RC112 family shares one graph
        per run.
        """
        if self._graph is None:
            from .graph import ProjectGraph

            self._graph = ProjectGraph(
                [module.facts for module in self.modules],
                reference_corpus(self.root),
                self.docs_text(),
            )
        return self._graph

    def class_defs(
        self, name: str
    ) -> List[Tuple[ModuleSource, ast.ClassDef]]:
        """Every project-wide ``class <name>`` definition."""
        if self._classes is None:
            index: Dict[str, List[Tuple[ModuleSource, ast.ClassDef]]] = {}
            for module in self.modules:
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.ClassDef):
                        index.setdefault(node.name, []).append((module, node))
            self._classes = index
        return self._classes.get(name, [])

    def docs_text(self) -> str:
        """Concatenated text of every ``docs/*.md`` under the root."""
        if self._docs_text is None:
            docs_dir = self.root / "docs"
            chunks: List[str] = []
            if docs_dir.is_dir():
                for path in sorted(docs_dir.glob("*.md")):
                    chunks.append(path.read_text(encoding="utf-8"))
            self._docs_text = "\n".join(chunks)
        return self._docs_text

    def module_by_name(self, dotted: str) -> Optional[ModuleSource]:
        """The module whose dotted name is *dotted*, or None."""
        for module in self.modules:
            if module.module == dotted:
                return module
        return None


def reference_corpus(root: Path) -> str:
    """Concatenated text of code and docs that *reference* the package.

    Tests, benchmarks, and examples are not scanned as project code, but
    a public name they exercise is not dead — RC112 greps this corpus
    before declaring an export unreachable.  Empty when the directories
    do not exist (fixture roots).
    """
    chunks: List[str] = []
    for directory, pattern in (
        ("tests", "*.py"),
        ("benchmarks", "*.py"),
        ("examples", "*.py"),
        ("docs", "*.md"),
    ):
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob(pattern)):
            chunks.append(path.read_text(encoding="utf-8"))
    readme = root / "README.md"
    if readme.is_file():
        chunks.append(readme.read_text(encoding="utf-8"))
    return "\n".join(chunks)


def _dotted_name(rel: str) -> str:
    """Dotted module path for files under ``src/`` (else empty)."""
    if not rel.startswith("src/") or not rel.endswith(".py"):
        return ""
    parts = rel[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _module_directive(
    comments: List[Tuple[int, int, str]]
) -> Optional[str]:
    """The dotted name from a ``module=`` directive comment, if any."""
    for _lineno, _column, comment in comments:
        match = _MODULE_DIRECTIVE_RE.search(comment)
        if match is not None:
            return match.group("name")
    return None


def _parse_suppressions(
    text: str,
    comments: List[Tuple[int, int, str]],
) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str, str]]]:
    """Map 1-based line numbers to codes suppressed there.

    Only genuine ``#`` comments count — the source is tokenized, so a
    docstring *describing* the suppression syntax never suppresses
    anything.  A suppression comment covers its own line; when the
    comment stands alone on a line, it also covers the next line (so
    justifications that would overflow the column limit can sit above
    the statement).  Entries without a justification are returned in
    the raw list but do not suppress anything.
    """
    raw: List[Tuple[int, str, str]] = []
    covered: Dict[int, Set[str]] = {}
    for lineno, column, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        codes = match.group("codes").replace(" ", "")
        reason = (match.group("reason") or "").strip()
        raw.append((lineno, codes, reason))
        if not reason:
            continue
        targets = [lineno]
        if _standalone(text, lineno, column):
            targets.append(lineno + 1)
        for target in targets:
            covered.setdefault(target, set()).update(codes.split(","))
    return covered, raw


def _iter_comments(text: str) -> List[Tuple[int, int, str]]:
    """``(lineno, column, comment_text)`` for every real comment."""
    comments: List[Tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append(
                    (token.start[0], token.start[1], token.string)
                )
    # repro-check: ignore[RC106] -- ast.parse already vetted the file;
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # unreachable in practice: degrade to "no comments"
    return comments


def _standalone(text: str, lineno: int, column: int) -> bool:
    """True when the comment at (lineno, column) starts its line."""
    lines = text.splitlines()
    if not 1 <= lineno <= len(lines):
        return False
    return not lines[lineno - 1][:column].strip()


# ---------------------------------------------------------------------------
# Scope iteration


def iter_scopes(tree: ast.Module):
    """Yield the module body and every (nested) function definition.

    Rules that reason about local bindings analyze one scope at a time:
    pairing :func:`iter_scopes` with :func:`walk_scope` visits every
    statement exactly once without conflating locals across functions.
    """
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_scope(scope: ast.AST):
    """Walk *scope* without descending into nested function defs.

    Nested definitions are their own scopes (yielded separately by
    :func:`iter_scopes`), so skipping them here prevents double
    reporting and keeps local-name reasoning honest.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Local type inference


def annotation_class_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class base-name from an annotation node.

    Handles ``Name``, dotted ``Attribute``, string annotations, and
    unwraps one level of ``Optional[...]`` — enough for the snapshot
    classes the immutability rules track.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        inner = re.fullmatch(r"Optional\[(?P<t>[^\]]+)\]", text)
        if inner:
            text = inner.group("t").strip()
        return text.split("[")[0].split(".")[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        head = annotation_class_name(node.value)
        if head == "Optional":
            inner_node = node.slice
            if isinstance(inner_node, ast.Index):  # pragma: no cover - py38
                inner_node = inner_node.value  # type: ignore[attr-defined]
            return annotation_class_name(inner_node)
        return head
    return None


def _call_class_name(node: ast.AST) -> Optional[str]:
    """Class name when *node* is ``X(...)``, ``X.build(...)``, ``X.from_*``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
        return name if name[:1].isupper() else None
    if isinstance(func, ast.Attribute):
        method = func.attr
        if method == "build" or method.startswith("from_"):
            base = func.value
            if isinstance(base, ast.Name) and base.id[:1].isupper():
                return base.id
            if isinstance(base, ast.Attribute) and base.attr[:1].isupper():
                return base.attr
    return None


def infer_local_types(
    scope: ast.AST, interesting: Container[str]
) -> Dict[str, str]:
    """Map local variable names to class names within *scope*.

    Purely heuristic and deliberately conservative: annotated function
    parameters, ``x: T = ...`` annotated assignments, and assignments
    from ``T(...)`` / ``T.build(...)`` / ``T.from_*(...)`` calls.  Only
    names resolving to a class in *interesting* are kept (any object
    supporting ``in`` works — a dict of class names, or an
    everything-matcher); anything the heuristic cannot see is simply
    absent (rules skip it rather than guess).
    """
    types: Dict[str, str] = {}

    def note(name: str, cls: Optional[str]) -> None:
        if cls is not None and cls in interesting:
            types[name] = cls
        elif name in types and cls is not None:
            # Reassignment to an unknown type invalidates the binding.
            del types[name]

    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        params = list(args.posonlyargs) if hasattr(args, "posonlyargs") else []
        params += list(args.args) + list(args.kwonlyargs)
        for param in params:
            note(param.arg, annotation_class_name(param.annotation))

    for node in ast.walk(scope):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            note(node.target.id, annotation_class_name(node.annotation))
        elif isinstance(node, ast.Assign) and node.value is not None:
            cls = _call_class_name(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    note(target.id, cls)
    return types
