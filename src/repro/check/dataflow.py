"""Per-function CFG and forward dataflow for the path-sensitive rules.

The AST rules judge one expression at a time; the RC113–RC115 family
needs *paths*: did this wall-clock read flow, through assignments and
helper calls, into a digest?  does this ``SharedMemory`` segment reach
``close()`` on the exception path too?  which async handlers can reach
this unlocked state write?  This module supplies the machinery in
three layers:

1. A statement-level control-flow graph per function
   (:class:`ControlFlowGraph`): branches, loops, ``try``/``except``/
   ``finally``, ``with``, early ``return``/``raise``, and — crucially —
   *exception edges*: every statement that can raise gets an edge to
   the innermost handler, finally block, or the function exit.

2. A generic forward worklist solver (:func:`solve_forward`) plus a
   taint instance over it: variable states carry taint kinds
   (wall-clock, unseeded randomness, ``os.environ``, ``id()``,
   set-iteration order), call-site provenance, and parameter
   provenance, each with an accumulated *witness* — the step-by-step
   path later rendered as a SARIF ``codeFlow``.

3. :func:`analyze_function` distills one function scope into a
   serializable :class:`FlowFact` (stored inside the incremental cache
   alongside the other module facts), and :class:`FlowResolver` runs
   the *interprocedural* part at project time over cached facts:
   taint summaries propagate along the PR-6 call graph, release
   obligations resolve against callee summaries, and async-handler
   reachability is computed once per run.

Everything here is conservative in the repo's established sense:
an interprocedural conclusion is drawn only when the call graph
resolves the callee unambiguously; anything ambiguous is dropped, so
the flow rules under-report rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .graph import FunctionFact, ModuleFacts, ProjectGraph

__all__ = [
    "ACQUIRE_LABELS",
    "RELEASE_METHODS",
    "TAINT_SINKS",
    "CallOrigin",
    "ControlFlowGraph",
    "FlowFact",
    "FlowResolver",
    "FlowStep",
    "ResourceFlow",
    "SharedWrite",
    "SinkFlow",
    "analyze_function",
    "build_cfg",
    "solve_forward",
]

#: Cap on witness length so cached facts stay small; witnesses keep the
#: head (the source) and always append the terminal step.
_MAX_STEPS = 10
#: Cap on tracked provenance fan-in per variable.
_MAX_FANIN = 4

# ---------------------------------------------------------------------------
# Taint vocabulary

#: Order-laundering callables: the result no longer exposes set order.
_LAUNDER_CALLS = frozenset({"sorted", "len", "sum", "Counter"})

#: Pure builtins through which taint (and provenance) propagates.
_PROPAGATING_CALLS = frozenset(
    {
        "str", "int", "float", "bool", "round", "abs", "min", "max",
        "repr", "format", "list", "tuple", "dict", "zip", "map",
        "filter", "reversed", "next", "iter",
    }
)

#: ``random`` module functions drawing from the unseeded global
#: generator (mirrors RC103's list).
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "triangular", "betavariate",
        "expovariate", "gammavariate", "lognormvariate", "normalvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes",
    }
)

_WALLCLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Calls whose argument values are committed to reproducible artifacts:
#: the digest of an inference result, and the bench trajectory writers
#: behind every ``BENCH_*.json`` file.  Golden-fixture writers keep the
#: same naming convention.
TAINT_SINKS = frozenset(
    {"result_digest", "append_trajectory", "write_golden"}
)

#: Constructor spellings that acquire an OS-backed resource.
ACQUIRE_LABELS: Dict[str, str] = {
    "open": "open()",
    "SharedMemory": "SharedMemory()",
    "socket": "socket.socket()",
    "create_connection": "socket.create_connection()",
    "Pool": "Pool()",
    "ThreadPool": "ThreadPool()",
}

#: Method names that release an acquired resource.
RELEASE_METHODS = frozenset(
    {
        "close", "unlink", "destroy", "terminate", "shutdown",
        "release", "stop", "detach",
    }
)

#: Substrings marking a ``with`` context expression as a serialization
#: primitive (``with self._lock:`` and friends).
_LOCK_MARKERS = ("lock", "mutex", "sem")


# ---------------------------------------------------------------------------
# Serializable flow records


@dataclass(frozen=True)
class FlowStep:
    """One step of a witness path, local to the defining module."""

    lineno: int
    col: int
    note: str

    def to_dict(self) -> Dict[str, object]:
        return {"lineno": self.lineno, "col": self.col, "note": self.note}


@dataclass(frozen=True)
class CallOrigin:
    """A call site a value flowed out of (or an argument flowed into).

    ``position`` is the argument slot (int, or keyword name) when the
    record describes an argument; ``None`` when it describes the call's
    return value.  ``steps`` is the witness from that site to wherever
    the record was taken (a sink, a return, the call itself).
    """

    base: Optional[str]
    name: str
    lineno: int
    col: int
    position: object = None
    steps: Tuple[FlowStep, ...] = ()


@dataclass(frozen=True)
class SinkFlow:
    """One taint-sink call and everything its arguments derive from."""

    label: str
    lineno: int
    col: int
    taint_steps: Tuple[FlowStep, ...] = ()
    from_calls: Tuple[CallOrigin, ...] = ()
    from_params: Tuple[Tuple[str, Tuple[FlowStep, ...]], ...] = ()


@dataclass(frozen=True)
class ResourceFlow:
    """One resource acquisition and its path-sensitive verdict.

    ``leak_steps`` non-empty means a CFG path reaches the function exit
    with no release, no ownership transfer, and no call that could
    plausibly release — a definite leak.  ``guards`` are calls the
    variable was passed into where *that call releasing the resource*
    is the only thing covering some otherwise-leaking path; each guard
    carries the witness for the path that leaks if the callee does not
    release its parameter.
    """

    label: str
    var: str
    lineno: int
    col: int
    leak_steps: Tuple[FlowStep, ...] = ()
    guards: Tuple[CallOrigin, ...] = ()


@dataclass(frozen=True)
class SharedWrite:
    """One rebinding of instance state (``self.attr = ...``)."""

    target: str
    lineno: int
    col: int
    locked: bool


@dataclass(frozen=True)
class FlowFact:
    """Everything the flow rules need from one function, serialized."""

    return_taint: Tuple[FlowStep, ...] = ()
    params_to_return: Tuple[str, ...] = ()
    calls_to_return: Tuple[CallOrigin, ...] = ()
    sinks: Tuple[SinkFlow, ...] = ()
    tainted_args: Tuple[CallOrigin, ...] = ()
    param_calls: Tuple[Tuple[str, CallOrigin], ...] = ()
    releases_params: Tuple[str, ...] = ()
    resources: Tuple[ResourceFlow, ...] = ()
    shared_writes: Tuple[SharedWrite, ...] = ()

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FlowFact":
        """Rebuild a flow record from ``dataclasses.asdict`` output."""

        def steps(seq: object) -> Tuple[FlowStep, ...]:
            return tuple(FlowStep(**d) for d in seq)  # type: ignore[union-attr]

        def origin(d: Dict[str, object]) -> CallOrigin:
            return CallOrigin(
                base=d["base"],  # type: ignore[arg-type]
                name=str(d["name"]),
                lineno=int(d["lineno"]),  # type: ignore[arg-type]
                col=int(d["col"]),  # type: ignore[arg-type]
                position=d.get("position"),
                steps=steps(d.get("steps", ())),
            )

        return cls(
            return_taint=steps(payload.get("return_taint", ())),
            params_to_return=tuple(payload.get("params_to_return", ())),
            calls_to_return=tuple(
                origin(d) for d in payload.get("calls_to_return", ())
            ),
            sinks=tuple(
                SinkFlow(
                    label=str(d["label"]),
                    lineno=int(d["lineno"]),
                    col=int(d["col"]),
                    taint_steps=steps(d.get("taint_steps", ())),
                    from_calls=tuple(
                        origin(c) for c in d.get("from_calls", ())
                    ),
                    from_params=tuple(
                        (str(name), steps(ps))
                        for name, ps in d.get("from_params", ())
                    ),
                )
                for d in payload.get("sinks", ())
            ),
            tainted_args=tuple(
                origin(d) for d in payload.get("tainted_args", ())
            ),
            param_calls=tuple(
                (str(name), origin(c))
                for name, c in payload.get("param_calls", ())
            ),
            releases_params=tuple(payload.get("releases_params", ())),
            resources=tuple(
                ResourceFlow(
                    label=str(d["label"]),
                    var=str(d["var"]),
                    lineno=int(d["lineno"]),
                    col=int(d["col"]),
                    leak_steps=steps(d.get("leak_steps", ())),
                    guards=tuple(origin(c) for c in d.get("guards", ())),
                )
                for d in payload.get("resources", ())
            ),
            shared_writes=tuple(
                SharedWrite(
                    target=str(d["target"]),
                    lineno=int(d["lineno"]),
                    col=int(d["col"]),
                    locked=bool(d["locked"]),
                )
                for d in payload.get("shared_writes", ())
            ),
        )


# ---------------------------------------------------------------------------
# Control-flow graph

ENTRY = 0
EXIT = 1

#: Edge kinds, used to annotate witnesses and to keep raise edges
#: distinguishable from fall-through during the leak search.
SEQ, BRANCH, LOOP, RAISE, FINALLY = "seq", "branch", "loop", "raise", "final"


@dataclass
class CfgNode:
    """One statement occurrence (ENTRY and EXIT carry no statement)."""

    index: int
    stmt: Optional[ast.stmt] = None
    succs: List[Tuple[int, str]] = field(default_factory=list)


class ControlFlowGraph:
    """Statement-level CFG of one function body."""

    def __init__(self) -> None:
        self.nodes: List[CfgNode] = [CfgNode(ENTRY), CfgNode(EXIT)]

    def add_node(self, stmt: ast.stmt) -> int:
        node = CfgNode(len(self.nodes), stmt)
        self.nodes.append(node)
        return node.index

    def add_edge(self, src: int, dst: int, kind: str = SEQ) -> None:
        pair = (dst, kind)
        if pair not in self.nodes[src].succs:
            self.nodes[src].succs.append(pair)

    def preds(self) -> Dict[int, List[int]]:
        incoming: Dict[int, List[int]] = {n.index: [] for n in self.nodes}
        for node in self.nodes:
            for dst, _kind in node.succs:
                incoming[dst].append(node.index)
        return incoming

    def stmt_nodes(self) -> Iterator[CfgNode]:
        for node in self.nodes:
            if node.stmt is not None:
                yield node


class _LoopCtx:
    def __init__(self, header: int) -> None:
        self.header = header
        self.breaks: List[int] = []


class _CfgBuilder:
    """Recursive-descent CFG construction over a statement list.

    ``raise_targets`` is the stack-resolved set of nodes an exception
    transfers control to (handler entries, a finally entry, or EXIT);
    ``finally_entry`` is where an early ``return`` must detour first.
    """

    def __init__(self) -> None:
        self.cfg = ControlFlowGraph()
        self.loops: List[_LoopCtx] = []

    def build(self, body: Sequence[ast.stmt]) -> ControlFlowGraph:
        first, exits = self._stmts(body, (EXIT,), None)
        entry_to = first if first is not None else EXIT
        self.cfg.add_edge(ENTRY, entry_to)
        for index in exits:
            self.cfg.add_edge(index, EXIT)
        return self.cfg

    # -- statement sequences ----------------------------------------------

    def _stmts(
        self,
        body: Sequence[ast.stmt],
        raise_targets: Tuple[int, ...],
        finally_entry: Optional[int],
    ) -> Tuple[Optional[int], List[int]]:
        first: Optional[int] = None
        dangling: List[int] = []
        for stmt in body:
            head, exits = self._stmt(stmt, raise_targets, finally_entry)
            if head is None:
                continue
            if first is None:
                first = head
            for index in dangling:
                self.cfg.add_edge(index, head)
            dangling = exits
        return first, dangling

    def _stmt(
        self,
        stmt: ast.stmt,
        raise_targets: Tuple[int, ...],
        finally_entry: Optional[int],
    ) -> Tuple[Optional[int], List[int]]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, raise_targets, finally_entry)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, raise_targets, finally_entry)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, raise_targets, finally_entry)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, raise_targets, finally_entry)
        node = self.cfg.add_node(stmt)
        if isinstance(stmt, ast.Return):
            if _may_raise(stmt):  # the returned expression can raise
                for target in raise_targets:
                    self.cfg.add_edge(node, target, RAISE)
            target = finally_entry if finally_entry is not None else EXIT
            self.cfg.add_edge(node, target, FINALLY if target != EXIT else SEQ)
            return node, []
        if isinstance(stmt, ast.Raise):
            for target in raise_targets:
                self.cfg.add_edge(node, target, RAISE)
            return node, []
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1].breaks.append(node)
            return node, []
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.cfg.add_edge(node, self.loops[-1].header, LOOP)
            return node, []
        if _may_raise(stmt):
            for target in raise_targets:
                self.cfg.add_edge(node, target, RAISE)
        return node, [node]

    # -- compound statements ----------------------------------------------

    def _if(
        self,
        stmt: ast.If,
        raise_targets: Tuple[int, ...],
        finally_entry: Optional[int],
    ) -> Tuple[int, List[int]]:
        node = self.cfg.add_node(stmt)
        if _expr_may_raise(stmt.test):
            for target in raise_targets:
                self.cfg.add_edge(node, target, RAISE)
        exits: List[int] = []
        body_first, body_exits = self._stmts(
            stmt.body, raise_targets, finally_entry
        )
        if body_first is not None:
            self.cfg.add_edge(node, body_first, BRANCH)
        exits.extend(body_exits if body_first is not None else [node])
        if stmt.orelse:
            else_first, else_exits = self._stmts(
                stmt.orelse, raise_targets, finally_entry
            )
            if else_first is not None:
                self.cfg.add_edge(node, else_first, BRANCH)
                exits.extend(else_exits)
            else:
                exits.append(node)
        else:
            exits.append(node)  # condition false falls through
        return node, exits

    def _loop(
        self,
        stmt: ast.stmt,
        raise_targets: Tuple[int, ...],
        finally_entry: Optional[int],
    ) -> Tuple[int, List[int]]:
        node = self.cfg.add_node(stmt)
        for target in raise_targets:
            self.cfg.add_edge(node, target, RAISE)
        ctx = _LoopCtx(node)
        self.loops.append(ctx)
        body = getattr(stmt, "body", [])
        body_first, body_exits = self._stmts(
            body, raise_targets, finally_entry
        )
        self.loops.pop()
        if body_first is not None:
            self.cfg.add_edge(node, body_first, BRANCH)
            for index in body_exits:
                self.cfg.add_edge(index, node, LOOP)
        orelse = getattr(stmt, "orelse", [])
        exits: List[int] = list(ctx.breaks)
        if orelse:
            else_first, else_exits = self._stmts(
                orelse, raise_targets, finally_entry
            )
            if else_first is not None:
                self.cfg.add_edge(node, else_first, BRANCH)
                exits.extend(else_exits)
            else:
                exits.append(node)
        else:
            exits.append(node)  # loop exhausts (or never runs)
        return node, exits

    def _with(
        self,
        stmt: ast.stmt,
        raise_targets: Tuple[int, ...],
        finally_entry: Optional[int],
    ) -> Tuple[int, List[int]]:
        node = self.cfg.add_node(stmt)
        for target in raise_targets:
            self.cfg.add_edge(node, target, RAISE)
        body_first, body_exits = self._stmts(
            getattr(stmt, "body", []), raise_targets, finally_entry
        )
        if body_first is None:
            return node, [node]
        self.cfg.add_edge(node, body_first)
        return node, body_exits

    def _try(
        self,
        stmt: ast.Try,
        raise_targets: Tuple[int, ...],
        finally_entry: Optional[int],
    ) -> Tuple[Optional[int], List[int]]:
        exits: List[int] = []
        # Build the finally block first so everything can route into it.
        fin_first: Optional[int] = None
        fin_exits: List[int] = []
        if stmt.finalbody:
            fin_first, fin_exits = self._stmts(
                stmt.finalbody, raise_targets, finally_entry
            )
        inner_finally = fin_first if fin_first is not None else finally_entry
        handler_entries: List[int] = []
        handler_exits: List[int] = []
        handler_raise = (
            (fin_first,) if fin_first is not None else raise_targets
        )
        for handler in stmt.handlers:
            h_first, h_exits = self._stmts(
                handler.body, handler_raise, inner_finally
            )
            if h_first is not None:
                handler_entries.append(h_first)
                handler_exits.extend(h_exits)
            # an empty handler body cannot occur (pass is a statement)
        body_raise: Tuple[int, ...]
        if handler_entries:
            body_raise = tuple(handler_entries)
        elif fin_first is not None:
            body_raise = (fin_first,)
        else:
            body_raise = raise_targets
        body_first, body_exits = self._stmts(
            stmt.body, body_raise, inner_finally
        )
        else_first, else_exits = self._stmts(
            stmt.orelse, handler_raise, inner_finally
        )
        if else_first is not None:
            for index in body_exits:
                self.cfg.add_edge(index, else_first)
            tail_exits = else_exits
        else:
            tail_exits = body_exits
        if fin_first is not None:
            for index in tail_exits + handler_exits:
                self.cfg.add_edge(index, fin_first, FINALLY)
            # The finally block both falls through (normal completion)
            # and re-raises (exceptional entry); model both exits.
            for index in fin_exits:
                for target in raise_targets:
                    self.cfg.add_edge(index, target, RAISE)
            exits.extend(fin_exits)
        else:
            exits.extend(tail_exits)
            exits.extend(handler_exits)
        return body_first if body_first is not None else fin_first, exits


def build_cfg(scope: ast.AST) -> ControlFlowGraph:
    """The statement-level CFG of a function (or module) body."""
    return _CfgBuilder().build(getattr(scope, "body", []))


def _may_raise(stmt: ast.stmt) -> bool:
    """True when executing *stmt* can transfer control exceptionally."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in _walk_exprs(stmt):
        if isinstance(node, ast.Call):
            return True
    return False


def _expr_may_raise(expr: ast.expr) -> bool:
    return any(isinstance(node, ast.Call) for node in ast.walk(expr))


def _walk_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk the expressions *executed by* this statement occurrence.

    Compound statements contribute only their header expressions (the
    body statements are separate CFG nodes), and lambda bodies are
    skipped — they execute later, if at all.
    """
    headers: List[ast.AST] = []
    if isinstance(stmt, ast.If):
        headers = [stmt.test]
    elif isinstance(stmt, ast.While):
        headers = [stmt.test]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        headers = [stmt.target, stmt.iter]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        headers = [item.context_expr for item in stmt.items]
    elif isinstance(stmt, ast.Try):
        headers = []
    elif isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        headers = list(stmt.decorator_list)
    else:
        headers = [stmt]
    stack: List[ast.AST] = list(headers)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.Lambda,)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# Generic forward solver


def solve_forward(
    cfg: ControlFlowGraph,
    transfer,
    initial,
    join,
    max_passes: int = 50,
):
    """Forward worklist solver; returns the IN-state of every node.

    *transfer(node, state) -> state* must be monotone under *join*;
    *initial* seeds ENTRY.  States are compared with ``==`` so they
    must be hashable/plain data.  The pass bound is a safety net — the
    taint lattice is finite by construction (capped witnesses and
    fan-ins), so real runs converge long before it.
    """
    in_states: Dict[int, object] = {ENTRY: initial}
    out_states: Dict[int, object] = {}
    all_preds = cfg.preds()
    order = [node.index for node in cfg.nodes]
    for _ in range(max_passes):
        changed = False
        for index in order:
            node = cfg.nodes[index]
            merged = initial if index == ENTRY else None
            for pred in all_preds[index]:
                out = out_states.get(pred)
                if out is None:
                    continue
                merged = out if merged is None else join(merged, out)
            if merged is None:
                merged = initial if index == ENTRY else {}
            if in_states.get(index) != merged:
                in_states[index] = merged
                changed = True
            out = transfer(node, merged) if node.stmt is not None else merged
            if out_states.get(index) != out:
                out_states[index] = out
                changed = True
        if not changed:
            break
    return in_states


# ---------------------------------------------------------------------------
# Taint lattice

#: taints: (kind, steps); origins: (base, name, lineno, col, steps);
#: params: (param, steps); is_set: bool
_EMPTY_VAR = ((), (), (), False)


def _var_state(taints=(), origins=(), params=(), is_set=False):
    return (tuple(taints), tuple(origins), tuple(params), bool(is_set))


def _merge_var(a, b):
    taints = list(a[0])
    kinds = {t[0] for t in taints}
    for t in b[0]:
        if t[0] not in kinds and len(taints) < _MAX_FANIN:
            taints.append(t)
            kinds.add(t[0])
    origins = list(a[1])
    keys = {o[:4] for o in origins}
    for o in b[1]:
        if o[:4] not in keys and len(origins) < _MAX_FANIN:
            origins.append(o)
            keys.add(o[:4])
    params = list(a[2])
    names = {p[0] for p in params}
    for p in b[2]:
        if p[0] not in names and len(params) < _MAX_FANIN:
            params.append(p)
            names.add(p[0])
    return _var_state(taints, origins, params, a[3] or b[3])


def _join_states(a: Dict[str, tuple], b: Dict[str, tuple]):
    if not a:
        return dict(b)
    merged = dict(a)
    for var, state in b.items():
        if var in merged:
            merged[var] = _merge_var(merged[var], state)
        else:
            merged[var] = state
    return merged


def _with_step(var_state, step: FlowStep):
    """Append *step* to every witness inside *var_state* (capped)."""

    def extend(steps):
        if len(steps) >= _MAX_STEPS:
            return steps
        return tuple(steps) + (step,)

    taints = tuple((kind, extend(steps)) for kind, steps in var_state[0])
    origins = tuple(
        (base, name, lineno, col, extend(steps))
        for base, name, lineno, col, steps in var_state[1]
    )
    params = tuple((param, extend(steps)) for param, steps in var_state[2])
    return _var_state(taints, origins, params, var_state[3])


def _short(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.11
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 1] + "…"


class _TaintMachine:
    """Expression evaluation + statement transfer over the taint state."""

    def __init__(self, params: Sequence[str]) -> None:
        self.initial = {
            param: _var_state(params=((param, ()),))
            for param in params
            if param not in ("self", "cls")
        }

    # -- expression evaluation --------------------------------------------

    def eval(self, expr: Optional[ast.expr], state) -> tuple:
        if expr is None:
            return _EMPTY_VAR
        if isinstance(expr, ast.Name):
            return state.get(expr.id, _EMPTY_VAR)
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return _var_state(is_set=True)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.Subscript):
            if _is_environ(expr.value):
                return self._source(expr, "os.environ", _short(expr))
            return self.eval(expr.value, state)
        if isinstance(expr, ast.Attribute):
            inner = self.eval(expr.value, state)
            return _var_state(inner[0], inner[1], inner[2], False)
        if isinstance(expr, ast.Await):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, state)
        if isinstance(expr, ast.IfExp):
            return _merge_var(
                self.eval(expr.body, state), self.eval(expr.orelse, state)
            )
        if isinstance(expr, ast.BinOp):
            merged = _merge_var(
                self.eval(expr.left, state), self.eval(expr.right, state)
            )
            is_set = _is_set_op(expr) and (
                self.eval(expr.left, state)[3]
                or self.eval(expr.right, state)[3]
            )
            return _var_state(merged[0], merged[1], merged[2], is_set)
        if isinstance(expr, (ast.BoolOp,)):
            out = _EMPTY_VAR
            for value in expr.values:
                out = _merge_var(out, self.eval(value, state))
            return out
        if isinstance(expr, (ast.Compare, ast.UnaryOp)):
            children = (
                [expr.left, *expr.comparators]
                if isinstance(expr, ast.Compare)
                else [expr.operand]
            )
            out = _EMPTY_VAR
            for child in children:
                out = _merge_var(out, self.eval(child, state))
            return _var_state(out[0], out[1], out[2], False)
        if isinstance(expr, (ast.List, ast.Tuple)):
            out = _EMPTY_VAR
            for element in expr.elts:
                out = _merge_var(out, self.eval(element, state))
            return _var_state(out[0], out[1], out[2], False)
        if isinstance(expr, ast.Dict):
            out = _EMPTY_VAR
            for value in list(expr.keys) + list(expr.values):
                if value is not None:
                    out = _merge_var(out, self.eval(value, state))
            return _var_state(out[0], out[1], out[2], False)
        if isinstance(expr, ast.JoinedStr):
            out = _EMPTY_VAR
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    out = _merge_var(out, self.eval(value.value, state))
            return out
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            out = _EMPTY_VAR
            for gen in expr.generators:
                inner = self.eval(gen.iter, state)
                if inner[3]:
                    out = _merge_var(
                        out,
                        self._source(
                            gen.iter, "set-order", _short(gen.iter)
                        ),
                    )
                out = _merge_var(
                    out, _var_state(inner[0], inner[1], inner[2], False)
                )
            return out
        return _EMPTY_VAR

    def _source(self, node: ast.AST, kind: str, label: str) -> tuple:
        step = FlowStep(
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            f"{kind} value originates here: {label}",
        )
        return _var_state(taints=((kind, (step,)),))

    def _eval_call(self, call: ast.Call, state) -> tuple:
        func = call.func
        source_kind = _source_kind(call)
        if source_kind is not None:
            return self._source(call, source_kind, _short(call))
        name, base = _call_name(func)
        args = list(call.args) + [
            kw.value for kw in call.keywords if kw.value is not None
        ]
        if name == "sorted" or name in _LAUNDER_CALLS:
            out = _EMPTY_VAR
            for arg in args:
                inner = self.eval(arg, state)
                taints = tuple(
                    t for t in inner[0] if t[0] != "set-order"
                )
                out = _merge_var(
                    out, _var_state(taints, inner[1], inner[2], False)
                )
            if name in ("len", "sum"):
                return _EMPTY_VAR  # aggregate is order-insensitive
            return out
        if name in ("set", "frozenset"):
            out = _var_state(is_set=True)
            for arg in args:
                inner = self.eval(arg, state)
                taints = tuple(
                    t for t in inner[0] if t[0] != "set-order"
                )
                out = _merge_var(
                    out, _var_state(taints, inner[1], inner[2], True)
                )
            return out
        if name in ("list", "tuple") and args:
            inner = self.eval(args[0], state)
            out = _var_state(inner[0], inner[1], inner[2], False)
            if inner[3]:
                out = _merge_var(
                    out, self._source(call, "set-order", _short(call))
                )
            return out
        if name == "join" and isinstance(func, ast.Attribute) and args:
            inner = self.eval(args[0], state)
            out = _var_state(inner[0], inner[1], inner[2], False)
            if inner[3] or _is_setish_literal(args[0]):
                out = _merge_var(
                    out, self._source(call, "set-order", _short(call))
                )
            return out
        if name in _PROPAGATING_CALLS:
            out = _EMPTY_VAR
            for arg in args:
                out = _merge_var(out, self.eval(arg, state))
            return _var_state(out[0], out[1], out[2], False)
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value, state)
            if receiver[0] or receiver[1] or receiver[2]:
                # method call on a tracked value: result derives from it
                return _var_state(
                    receiver[0], receiver[1], receiver[2], False
                )
        # Unknown call: the result's provenance is the call site itself;
        # argument taint crosses through summaries, never by guessing.
        origin = (base, name, call.lineno, call.col_offset, ())
        return _var_state(origins=(origin,)) if name else _EMPTY_VAR

    # -- statement transfer -----------------------------------------------

    def transfer(self, node: CfgNode, state):
        stmt = node.stmt
        out = dict(state)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            if value is None:
                return out
            derived = self.eval(value, out)
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                for name_node in _target_names(target):
                    step = FlowStep(
                        stmt.lineno,
                        stmt.col_offset,
                        f"assigned to {name_node.id}: "
                        f"{name_node.id} = {_short(value)}",
                    )
                    tracked = (
                        derived
                        if not (
                            derived[0] or derived[1] or derived[2]
                        )
                        else _with_step(derived, step)
                    )
                    if isinstance(stmt, ast.AugAssign):
                        prior = out.get(name_node.id, _EMPTY_VAR)
                        tracked = _merge_var(prior, tracked)
                    out[name_node.id] = tracked
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            source = self.eval(stmt.iter, out)
            element = _var_state(source[0], source[1], source[2], False)
            if source[3]:
                step = FlowStep(
                    stmt.lineno,
                    stmt.col_offset,
                    f"iterates a set in hash order: {_short(stmt.iter)}",
                )
                element = _merge_var(
                    element, _var_state(taints=(("set-order", (step,)),))
                )
            for name_node in _target_names(stmt.target):
                out[name_node.id] = element
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is None:
                    continue
                for name_node in _target_names(item.optional_vars):
                    out[name_node.id] = self.eval(
                        item.context_expr, out
                    )
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.pop(target.id, None)
        return out


def _target_names(target: ast.expr) -> Iterator[ast.Name]:
    if isinstance(target, ast.Name):
        yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def _call_name(func: ast.expr) -> Tuple[str, Optional[str]]:
    if isinstance(func, ast.Name):
        return func.id, None
    if isinstance(func, ast.Attribute):
        base = (
            func.value.id if isinstance(func.value, ast.Name) else None
        )
        return func.attr, base
    return "", None


def _source_kind(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "id":
            return "id()"
        if func.id == "getenv":
            return "os.environ"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    receiver = func.value
    base: Optional[str] = None
    if isinstance(receiver, ast.Name):
        base = receiver.id
    elif isinstance(receiver, ast.Attribute):
        base = receiver.attr  # datetime.datetime.now()
    if base is None:
        return None
    if (base, func.attr) in _WALLCLOCK_CALLS:
        return "wall-clock"
    if base == "random" and func.attr in _GLOBAL_RANDOM_FNS:
        return "unseeded-random"
    if base == "os" and func.attr == "getenv":
        return "os.environ"
    if base == "environ" and func.attr == "get":
        return "os.environ"
    if func.attr == "get" and _is_environ(receiver):
        return "os.environ"
    return None


def _is_environ(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "environ"
    if isinstance(node, ast.Attribute):
        return node.attr == "environ"
    return False


def _is_set_op(expr: ast.BinOp) -> bool:
    return isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    )


def _is_setish_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


# ---------------------------------------------------------------------------
# Function analysis: taint facts


def analyze_function(scope: ast.AST) -> FlowFact:
    """Distill one function (or module) scope into its flow facts."""
    cfg = build_cfg(scope)
    params: Tuple[str, ...] = ()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        names = list(getattr(args, "posonlyargs", []))
        names += list(args.args) + list(args.kwonlyargs)
        params = tuple(arg.arg for arg in names)
    machine = _TaintMachine(params)
    in_states = solve_forward(
        cfg, machine.transfer, machine.initial, _join_states
    )
    collector = _FactCollector(machine, cfg, in_states, params)
    collector.run()
    return FlowFact(
        return_taint=collector.return_taint,
        params_to_return=tuple(sorted(collector.params_to_return)),
        calls_to_return=tuple(collector.calls_to_return),
        sinks=tuple(collector.sinks),
        tainted_args=tuple(collector.tainted_args),
        param_calls=tuple(collector.param_calls),
        releases_params=tuple(sorted(collector.releases_params)),
        resources=tuple(_leak_analysis(cfg)),
        shared_writes=tuple(_shared_writes(scope)),
    )


class _FactCollector:
    """Second pass over the solved CFG: sinks, returns, call arguments."""

    def __init__(self, machine, cfg, in_states, params) -> None:
        self.machine = machine
        self.cfg = cfg
        self.in_states = in_states
        self.params = set(params)
        self.return_taint: Tuple[FlowStep, ...] = ()
        self.params_to_return: Set[str] = set()
        self.calls_to_return: List[CallOrigin] = []
        self.sinks: List[SinkFlow] = []
        self.tainted_args: List[CallOrigin] = []
        self.param_calls: List[Tuple[str, CallOrigin]] = []
        self.releases_params: Set[str] = set()

    def run(self) -> None:
        for node in self.cfg.stmt_nodes():
            state = self.in_states.get(node.index, {})
            stmt = node.stmt
            assert stmt is not None
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self._record_return(stmt, state)
            for call in self._calls_in(stmt):
                self._record_call(call, state)

    def _calls_in(self, stmt: ast.stmt) -> Iterator[ast.Call]:
        for node in _walk_exprs(stmt):
            if isinstance(node, ast.Call):
                yield node

    def _record_return(self, stmt: ast.Return, state) -> None:
        value = self.machine.eval(stmt.value, state)
        step = FlowStep(
            stmt.lineno,
            stmt.col_offset,
            f"returned: return {_short(stmt.value)}",
        )
        if value[0] and not self.return_taint:
            self.return_taint = _cap(value[0][0][1] + (step,))
        for base, name, lineno, col, steps in value[1]:
            self.calls_to_return.append(
                CallOrigin(
                    base, name, lineno, col, None, _cap(steps + (step,))
                )
            )
        for param, _steps in value[2]:
            self.params_to_return.add(param)

    def _record_call(self, call: ast.Call, state) -> None:
        name, base = _call_name(call.func)
        if not name:
            return
        if (
            isinstance(call.func, ast.Attribute)
            and name in RELEASE_METHODS
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in self.params
        ):
            self.releases_params.add(call.func.value.id)
        slots: List[Tuple[object, ast.expr]] = list(enumerate(call.args))
        slots += [
            (kw.arg, kw.value)
            for kw in call.keywords
            if kw.arg is not None
        ]
        if name in TAINT_SINKS:
            self._record_sink(call, name, slots, state)
            return
        for position, arg in slots:
            value = self.machine.eval(arg, state)
            site = FlowStep(
                call.lineno,
                call.col_offset,
                f"passed into {name}() as argument {position}",
            )
            if value[0]:
                self.tainted_args.append(
                    CallOrigin(
                        base,
                        name,
                        call.lineno,
                        call.col_offset,
                        position,
                        _cap(value[0][0][1] + (site,)),
                    )
                )
            for param, steps in value[2]:
                self.param_calls.append(
                    (
                        param,
                        CallOrigin(
                            base,
                            name,
                            call.lineno,
                            call.col_offset,
                            position,
                            _cap(steps + (site,)),
                        ),
                    )
                )

    def _record_sink(self, call, label, slots, state) -> None:
        taint_steps: Tuple[FlowStep, ...] = ()
        from_calls: List[CallOrigin] = []
        from_params: List[Tuple[str, Tuple[FlowStep, ...]]] = []
        sink_step = FlowStep(
            call.lineno,
            call.col_offset,
            f"reaches the reproducibility sink {label}()",
        )
        for _position, arg in slots:
            value = self.machine.eval(arg, state)
            if value[0] and not taint_steps:
                taint_steps = _cap(value[0][0][1] + (sink_step,))
            for origin_base, name, lineno, col, steps in value[1]:
                from_calls.append(
                    CallOrigin(
                        origin_base,
                        name,
                        lineno,
                        col,
                        None,
                        _cap(steps + (sink_step,)),
                    )
                )
            for param, steps in value[2]:
                from_params.append((param, _cap(steps + (sink_step,))))
        self.sinks.append(
            SinkFlow(
                label=f"{label}()",
                lineno=call.lineno,
                col=call.col_offset,
                taint_steps=taint_steps,
                from_calls=tuple(from_calls),
                from_params=tuple(from_params),
            )
        )


def _cap(steps: Tuple[FlowStep, ...]) -> Tuple[FlowStep, ...]:
    if len(steps) <= _MAX_STEPS:
        return steps
    return steps[: _MAX_STEPS - 1] + (steps[-1],)


# ---------------------------------------------------------------------------
# Resource-leak analysis


def _acquire_label(value: ast.expr) -> Optional[str]:
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        if func.id == "socket":
            return None  # bare socket() is not the stdlib spelling
        return ACQUIRE_LABELS.get(func.id)
    if isinstance(func, ast.Attribute):
        if func.attr == "socket" and isinstance(func.value, ast.Name):
            if func.value.id == "socket":
                return ACQUIRE_LABELS["socket"]
            return None
        if func.attr == "open":
            return None  # Path.open / gzip.open often wrap with-blocks
        return ACQUIRE_LABELS.get(func.attr)
    return None


def _mentions(expr: Optional[ast.AST], var: str) -> bool:
    if expr is None:
        return False
    return any(
        isinstance(node, ast.Name) and node.id == var
        for node in ast.walk(expr)
    )


def _bare_names(expr: ast.expr) -> Set[str]:
    """Names appearing as direct value positions of *expr* (not inside
    calls): the spellings that hand the object itself to the caller."""
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        out: Set[str] = set()
        for element in expr.elts:
            out |= _bare_names(element)
        return out
    if isinstance(expr, ast.Dict):
        out = set()
        for value in expr.values:
            out |= _bare_names(value)
        return out
    if isinstance(expr, ast.IfExp):
        return _bare_names(expr.body) | _bare_names(expr.orelse)
    if isinstance(expr, ast.Starred):
        return _bare_names(expr.value)
    if isinstance(expr, ast.Await):
        return _bare_names(expr.value)
    return set()


def _node_events(stmt: ast.stmt, var: str):
    """Classify *stmt* for the leak search of *var*.

    Returns ``(releases, escapes, tokens)`` where tokens are the calls
    the variable is passed into — each a potential release resolved
    against callee summaries at project time.
    """
    releases = False
    escapes = False
    tokens: List[Tuple[Optional[str], str, int, int, object]] = []
    if isinstance(stmt, ast.Return):
        # Only a *bare* name position transfers ownership out
        # (``return handle``, ``return handle, size``); a call in the
        # return expression (``return parse(handle)``) is scanned below
        # like any other call so the callee summary decides.
        if stmt.value is not None and var in _bare_names(stmt.value):
            escapes = True
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if _mentions(item.context_expr, var):
                releases = True  # a context manager owns it now
        return releases, escapes, tokens
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            stmt.targets
            if isinstance(stmt, ast.Assign)
            else [stmt.target]
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id == var:
                releases = True  # rebinding ends the tracked lifetime
            elif isinstance(
                target, (ast.Attribute, ast.Subscript)
            ) and _mentions(stmt.value, var):
                escapes = True  # stored into longer-lived state
    for node in _walk_exprs(stmt):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if _mentions(node, var):
                escapes = True
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == var
            and func.attr in RELEASE_METHODS
        ):
            releases = True
        name, base = _call_name(func)
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Name) and arg.id == var:
                tokens.append(
                    (base, name, node.lineno, node.col_offset, position)
                )
        for kw in node.keywords:
            if (
                kw.arg is not None
                and isinstance(kw.value, ast.Name)
                and kw.value.id == var
            ):
                tokens.append(
                    (base, name, node.lineno, node.col_offset, kw.arg)
                )
    return releases, escapes, tokens


def _leak_analysis(cfg: ControlFlowGraph) -> Iterator[ResourceFlow]:
    """Path-sensitive acquire/release audit over one solved CFG."""
    acquisitions: List[Tuple[int, str, str, ast.stmt]] = []
    for node in cfg.stmt_nodes():
        stmt = node.stmt
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        label = _acquire_label(stmt.value)
        if label is not None:
            acquisitions.append((node.index, label, target.id, stmt))
    for index, label, var, stmt in acquisitions:
        events: Dict[int, Tuple[bool, bool, list]] = {}
        for node in cfg.stmt_nodes():
            if node.index == index:
                continue
            assert node.stmt is not None
            events[node.index] = _node_events(node.stmt, var)
        strict = _find_leak_path(cfg, index, events, allow_token=None)
        if strict is not None:
            yield ResourceFlow(
                label=label,
                var=var,
                lineno=stmt.lineno,
                col=stmt.col_offset,
                leak_steps=_leak_witness(cfg, label, var, stmt, strict),
            )
            continue
        guards: List[CallOrigin] = []
        seen_tokens: Set[Tuple] = set()
        for node_index, (_r, _e, tokens) in sorted(events.items()):
            for token in tokens:
                key = (node_index,) + tuple(token)
                if key in seen_tokens:
                    continue
                seen_tokens.add(key)
                path = _find_leak_path(
                    cfg, index, events, allow_token=node_index
                )
                if path is None:
                    continue
                base, name, lineno, col, position = token
                guards.append(
                    CallOrigin(
                        base,
                        name,
                        lineno,
                        col,
                        position,
                        _leak_witness(cfg, label, var, stmt, path),
                    )
                )
        if guards:
            yield ResourceFlow(
                label=label,
                var=var,
                lineno=stmt.lineno,
                col=stmt.col_offset,
                guards=tuple(guards),
            )


def _find_leak_path(
    cfg: ControlFlowGraph,
    acquire: int,
    events: Dict[int, Tuple[bool, bool, list]],
    allow_token: Optional[int],
) -> Optional[List[Tuple[int, str]]]:
    """A path from the acquisition to EXIT crossing no release.

    Nodes carrying a release/escape/token event are dead ends (a token
    is generously assumed to release), except *allow_token*, whose call
    is hypothetically non-releasing.  The acquisition's own raise edge
    is skipped: if the constructor raises, nothing was acquired.
    Returns the edge path ``[(node, edge_kind), ...]`` or None.
    """
    start_edges = [
        (dst, kind)
        for dst, kind in cfg.nodes[acquire].succs
        if kind != RAISE
    ]
    parent: Dict[int, Tuple[int, str]] = {}
    stack: List[Tuple[int, str]] = []
    visited: Set[int] = {acquire}
    for dst, kind in start_edges:
        if dst not in visited:
            visited.add(dst)
            parent[dst] = (acquire, kind)
            stack.append((dst, kind))
    while stack:
        index, _kind = stack.pop()
        if index == EXIT:
            path: List[Tuple[int, str]] = []
            cursor = index
            while cursor != acquire:
                prev, edge = parent[cursor]
                path.append((cursor, edge))
                cursor = prev
            path.reverse()
            return path
        releases, escapes, tokens = events.get(index, (False, False, []))
        blocked = releases or escapes
        if tokens and index != allow_token:
            blocked = True
        if blocked:
            continue
        for dst, kind in cfg.nodes[index].succs:
            if dst not in visited:
                visited.add(dst)
                parent[dst] = (index, kind)
                stack.append((dst, kind))
    return None


def _leak_witness(
    cfg: ControlFlowGraph,
    label: str,
    var: str,
    acquire_stmt: ast.stmt,
    path: List[Tuple[int, str]],
) -> Tuple[FlowStep, ...]:
    steps: List[FlowStep] = [
        FlowStep(
            acquire_stmt.lineno,
            acquire_stmt.col_offset,
            f"{label} acquired into {var!r}",
        )
    ]
    # Each path entry is ``(dst, edge_kind)``; the edge kind describes
    # how control *left the previous node*, so notes attach there.
    prev_stmt: Optional[ast.stmt] = acquire_stmt
    exit_line = acquire_stmt.lineno
    for index, kind in path:
        edge_stmt = prev_stmt
        node_stmt = (
            cfg.nodes[index].stmt if index not in (ENTRY, EXIT) else None
        )
        if node_stmt is not None:
            prev_stmt = node_stmt
            exit_line = node_stmt.lineno
        note: Optional[str] = None
        if kind == RAISE and edge_stmt is not None:
            note = (
                f"if this raises, control leaves without releasing "
                f"{var!r}: {_short(edge_stmt)}"
            )
        elif kind == BRANCH and edge_stmt is not None:
            note = f"takes this branch: {_short(edge_stmt)}"
        if note is not None and len(steps) < _MAX_STEPS - 1:
            steps.append(
                FlowStep(edge_stmt.lineno, edge_stmt.col_offset, note)
            )
    steps.append(
        FlowStep(
            exit_line,
            0,
            f"function exit reached with {var!r} still unreleased",
        )
    )
    return tuple(steps)


# ---------------------------------------------------------------------------
# Shared-state writes (RC115 raw material)


def _shared_writes(scope: ast.AST) -> Iterator[SharedWrite]:
    """``self.attr`` rebindings in *scope*, flagged with lock coverage."""
    yield from _walk_writes(getattr(scope, "body", []), locked=False)


def _walk_writes(
    body: Sequence[ast.stmt], locked: bool
) -> Iterator[SharedWrite]:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested scopes report their own writes
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            covered = locked or any(
                _is_lockish(item.context_expr) for item in stmt.items
            )
            yield from _walk_writes(stmt.body, covered)
            continue
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield SharedWrite(
                        target=f"self.{target.attr}",
                        lineno=stmt.lineno,
                        col=stmt.col_offset,
                        locked=locked,
                    )
        for child_body in _child_bodies(stmt):
            yield from _walk_writes(child_body, locked)


def _child_bodies(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
    for attr in ("body", "orelse", "finalbody"):
        child = getattr(stmt, attr, None)
        if isinstance(child, list) and not isinstance(
            stmt, (ast.With, ast.AsyncWith)
        ):
            yield child
    for handler in getattr(stmt, "handlers", []):
        yield handler.body


def _is_lockish(expr: ast.expr) -> bool:
    text = _short(expr, 80).lower()
    return any(marker in text for marker in _LOCK_MARKERS)


# ---------------------------------------------------------------------------
# Project-time interprocedural resolution


class FlowResolver:
    """Interprocedural closure over per-function flow summaries.

    Built once per run from the :class:`~repro.check.graph.ProjectGraph`
    and shared by the RC113–RC115 rules.  All methods memoize; all
    recursion is cycle-guarded; witnesses returned here are
    ``(rel, FlowStep)`` pairs — module-qualified, ready to become
    SARIF ``codeFlow`` locations.
    """

    def __init__(self, graph: "ProjectGraph") -> None:
        self.graph = graph
        self._return_taint: Dict[Tuple[str, str], Optional[tuple]] = {}
        self._param_sinks: Dict[
            Tuple[str, str, str], Optional[tuple]
        ] = {}
        self._releases: Dict[Tuple[str, str, str], bool] = {}
        self._async_reach: Optional[
            Dict[Tuple[str, str], List[tuple]]
        ] = None

    # -- taint summaries ---------------------------------------------------

    def return_taint(
        self,
        rel: str,
        qualname: str,
        _visiting: Optional[Set[Tuple[str, str]]] = None,
    ) -> Optional[Tuple[Tuple[str, FlowStep], ...]]:
        """Witness when the function's return value is tainted."""
        key = (rel, qualname)
        if key in self._return_taint:
            return self._return_taint[key]
        visiting = _visiting or set()
        if key in visiting:
            return None
        visiting.add(key)
        fn = self.graph.function(rel, qualname)
        result: Optional[Tuple[Tuple[str, FlowStep], ...]] = None
        if fn is not None:
            flow = fn.flow
            if flow.return_taint:
                result = tuple((rel, step) for step in flow.return_taint)
            else:
                for origin in flow.calls_to_return:
                    callee = self.graph.resolve_call(
                        rel, fn.owner_class, origin.base, origin.name
                    )
                    if callee is None or callee == key:
                        continue
                    sub = self.return_taint(*callee, _visiting=visiting)
                    if sub is None:
                        continue
                    bridge = (
                        rel,
                        FlowStep(
                            origin.lineno,
                            origin.col,
                            f"tainted result returned by {origin.name}()",
                        ),
                    )
                    result = sub + (bridge,) + tuple(
                        (rel, step) for step in origin.steps
                    )
                    break
        visiting.discard(key)
        if _visiting is None or not visiting & set(self._return_taint):
            self._return_taint[key] = result
        return result

    def param_sink(
        self,
        rel: str,
        qualname: str,
        param: str,
        _visiting: Optional[Set[Tuple[str, str, str]]] = None,
    ) -> Optional[Tuple[str, Tuple[Tuple[str, FlowStep], ...]]]:
        """``(sink_label, witness)`` when *param* reaches a sink."""
        key = (rel, qualname, param)
        if key in self._param_sinks:
            return self._param_sinks[key]
        visiting = _visiting or set()
        if key in visiting:
            return None
        visiting.add(key)
        fn = self.graph.function(rel, qualname)
        result = None
        if fn is not None:
            flow = fn.flow
            for sink in flow.sinks:
                for name, steps in sink.from_params:
                    if name == param:
                        result = (
                            sink.label,
                            tuple((rel, step) for step in steps),
                        )
                        break
                if result:
                    break
            if result is None:
                for name, origin in flow.param_calls:
                    if name != param:
                        continue
                    callee = self.graph.resolve_call(
                        rel, fn.owner_class, origin.base, origin.name
                    )
                    if callee is None or callee == (rel, qualname):
                        continue
                    offset = 1 if origin.base in ("self", "cls") else 0
                    callee_param = self.graph.param_name(
                        callee, origin.position, offset
                    )
                    if callee_param is None:
                        continue
                    sub = self.param_sink(
                        callee[0],
                        callee[1],
                        callee_param,
                        _visiting=visiting,
                    )
                    if sub is None:
                        continue
                    label, sub_steps = sub
                    here = tuple((rel, step) for step in origin.steps)
                    result = (label, here + sub_steps)
                    break
        visiting.discard(key)
        self._param_sinks[key] = result
        return result

    def releases(
        self,
        rel: str,
        qualname: str,
        param: str,
        _visiting: Optional[Set[Tuple[str, str, str]]] = None,
    ) -> bool:
        """True when the function releases *param* (maybe via helpers)."""
        key = (rel, qualname, param)
        if key in self._releases:
            return self._releases[key]
        visiting = _visiting or set()
        if key in visiting:
            return False
        visiting.add(key)
        fn = self.graph.function(rel, qualname)
        result = False
        if fn is not None:
            flow = fn.flow
            if param in flow.releases_params:
                result = True
            else:
                for name, origin in flow.param_calls:
                    if name != param:
                        continue
                    callee = self.graph.resolve_call(
                        rel, fn.owner_class, origin.base, origin.name
                    )
                    if callee is None or callee == (rel, qualname):
                        continue
                    offset = 1 if origin.base in ("self", "cls") else 0
                    callee_param = self.graph.param_name(
                        callee, origin.position, offset
                    )
                    if callee_param is None:
                        continue
                    if self.releases(
                        callee[0],
                        callee[1],
                        callee_param,
                        _visiting=visiting,
                    ):
                        result = True
                        break
        visiting.discard(key)
        self._releases[key] = result
        return result

    # -- async reachability ------------------------------------------------

    def async_roots(
        self, rel: str, qualname: str
    ) -> List[Tuple[str, str, Tuple[Tuple[str, FlowStep], ...]]]:
        """Async functions that can reach ``(rel, qualname)``.

        Each entry is ``(root_rel, root_qualname, witness)`` where the
        witness walks the call chain from the handler to the target.
        Sorted for deterministic reporting.
        """
        if self._async_reach is None:
            self._async_reach = self._compute_async_reach()
        return self._async_reach.get((rel, qualname), [])

    def _compute_async_reach(
        self,
    ) -> Dict[Tuple[str, str], List[tuple]]:
        from .graph import MODULE_QUALNAME

        reach: Dict[Tuple[str, str], List[tuple]] = {}
        for target_rel in sorted(self.graph.facts):
            facts = self.graph.facts[target_rel]
            for fn in facts.functions:
                if not fn.is_async or fn.qualname == MODULE_QUALNAME:
                    continue
                root = (target_rel, fn.qualname)
                root_step = (
                    target_rel,
                    FlowStep(
                        fn.lineno,
                        fn.col,
                        f"async def {fn.qualname} can run concurrently",
                    ),
                )
                queue: List[Tuple[Tuple[str, str], tuple]] = [
                    (root, (root_step,))
                ]
                seen: Set[Tuple[str, str]] = set()
                while queue:
                    (cur_rel, cur_qual), trail = queue.pop(0)
                    if (cur_rel, cur_qual) in seen:
                        continue
                    seen.add((cur_rel, cur_qual))
                    entry = reach.setdefault((cur_rel, cur_qual), [])
                    if all(existing[:2] != root for existing in entry):
                        entry.append((root[0], root[1], trail))
                    cur_fn = self.graph.function(cur_rel, cur_qual)
                    if cur_fn is None:
                        continue
                    for call in cur_fn.calls:
                        callee = self.graph.resolve_call(
                            cur_rel,
                            cur_fn.owner_class,
                            call.base,
                            call.name,
                        )
                        if callee is None or callee in seen:
                            continue
                        hop = (
                            cur_rel,
                            FlowStep(
                                call.lineno,
                                call.col,
                                f"calls {call.name}()",
                            ),
                        )
                        if len(trail) < _MAX_STEPS - 1:
                            queue.append((callee, trail + (hop,)))
                        else:
                            queue.append((callee, trail))
        for entries in reach.values():
            entries.sort(key=lambda item: (item[0], item[1]))
        return reach
