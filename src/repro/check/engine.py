"""Run registered check rules over a project tree and report findings.

Mirrors :mod:`repro.diagnostics.engine`: the engine instantiates every
registered rule (with optional severity overrides), feeds each parsed
module through each rule, filters findings through the inline
suppression map, and folds everything into a :class:`CheckReport` that
renders as text, JSON, or SARIF and computes a gate exit code.

Two execution paths share the rule set.  :meth:`CheckEngine.run` is the
in-memory path (tests, single fixtures): parse everything, run
everything.  :meth:`CheckEngine.analyze` is the production path: each
file's module-scope findings and distilled facts are cached against its
content hash (:mod:`repro.check.cache`), parse work for changed files
can fan out over the sharded process pool, and project-scope rules
(RC105, RC108–RC112) then run over the facts of *all* files — cached
or fresh — so whole-program analysis stays whole even when only one
file was re-read.

Suppression comments that lack the mandatory ``--  justification`` are
themselves reported (as synthetic ``RC100`` warnings) so an inert
suppression never silently masks the absence of a rationale.
"""

from __future__ import annotations

import fnmatch
import json
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..diagnostics.model import Severity
from .cache import (
    CACHE_VERSION,
    file_sha,
    finding_from_dict,
    finding_to_dict,
    load_entries,
    save_entries,
)
from .context import (
    ModuleSource,
    ProjectContext,
    reference_corpus,
)
from .graph import ModuleFacts, ProjectGraph
from .model import CheckFinding, CheckRule, all_check_rules

__all__ = ["CheckEngine", "CheckReport", "load_project"]

#: Directories scanned when no explicit paths are given: the package
#: source and the repo's operational scripts.  Tests and benchmarks are
#: exercised by the tier-1 suite itself; fixture snippets under
#: ``tests/fixtures/check`` are *intentionally* violating and must
#: never be scanned as project code.
DEFAULT_ROOTS = ("src", "scripts")

_EXCLUDED_PATTERNS = ("*/fixtures/*", "fixtures/*")

#: Synthetic code for suppression comments missing a justification.
INERT_SUPPRESSION_CODE = "RC100"


def _iter_python_files(root: Path, targets: Sequence[str]) -> List[Path]:
    """Python files under *targets*, explicit files first.

    An explicitly named file is never excluded — passing
    ``tests/fixtures/check/rc104_bad.py`` means "analyze this file" —
    while globbed directory walks skip the exclusion patterns.
    Listing a file both ways (explicitly and via a directory that
    globs it) yields it once, as explicit, regardless of argument
    order.
    """
    explicit: List[Tuple[Path, bool]] = []
    globbed: List[Tuple[Path, bool]] = []
    for target in targets:
        base = (root / target).resolve()
        if base.is_file() and base.suffix == ".py":
            explicit.append((base, True))
            continue
        if not base.is_dir():
            continue
        globbed.extend((path, False) for path in sorted(base.rglob("*.py")))
    unique: List[Path] = []
    seen = set()
    for path, is_explicit in explicit + globbed:
        if path in seen:
            continue
        if not is_explicit and any(
            fnmatch.fnmatch(path.as_posix(), pattern)
            for pattern in _EXCLUDED_PATTERNS
        ):
            continue
        seen.add(path)
        unique.append(path)
    return unique


def load_project(
    root: Path, targets: Optional[Sequence[str]] = None
) -> ProjectContext:
    """Parse every Python file under *targets* (default: src + scripts)."""
    root = root.resolve()
    modules = [
        ModuleSource(path, root)
        for path in _iter_python_files(root, targets or DEFAULT_ROOTS)
    ]
    return ProjectContext(root, modules)


class CheckReport:
    """Outcome of one analyzer run: findings plus run metadata."""

    def __init__(
        self,
        findings: List[CheckFinding],
        rules_run: List[str],
        modules_checked: int,
        suppressed: int,
        analyzed: Optional[int] = None,
        reused: Optional[int] = None,
    ) -> None:
        self.findings = sorted(
            findings, key=lambda f: (f.path, f.line, f.column, f.code)
        )
        self.rules_run = rules_run
        self.modules_checked = modules_checked
        self.suppressed = suppressed
        #: Incremental-run accounting (None on the in-memory path).
        #: Deliberately *not* part of ``to_json``/``render_text`` so a
        #: warm run's report is byte-identical to a cold run's.
        self.analyzed = analyzed
        self.reused = reused

    def counts_by_severity(self) -> Dict[str, int]:
        """``{"error": n, ...}`` over the unsuppressed findings."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = finding.severity.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def exit_code(self, fail_on: str = "warning") -> int:
        """0 when clean under the gate; 1 otherwise.

        *fail_on* is ``"error"``, ``"warning"`` (default, the CI gate),
        or ``"never"`` (report-only).
        """
        if fail_on == "never":
            return 0
        threshold = Severity.parse(fail_on)
        for finding in self.findings:
            if finding.severity.at_least(threshold):
                return 1
        return 0

    def to_json(self, include_stats: bool = False) -> str:
        """Stable JSON document (used by the CI ``static-check`` job).

        *include_stats* (the ``--stats`` flag) adds a ``cache`` block
        with the incremental run's analyzed/reused counts; it is opt-in
        so the default document stays byte-identical between cold and
        warm runs.
        """
        payload: Dict[str, object] = {
            "modules_checked": self.modules_checked,
            "rules_run": self.rules_run,
            "suppressed": self.suppressed,
            "counts": self.counts_by_severity(),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        if include_stats and self.analyzed is not None:
            payload["cache"] = {
                "analyzed": self.analyzed,
                "reused": self.reused,
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable report, one line per finding.

        Findings with a witness path (the flow rules) are followed by
        the indented step-by-step trace — the same steps SARIF mode
        emits as ``codeFlows``.
        """
        lines = []
        for finding in self.findings:
            lines.append(str(finding))
            for number, step in enumerate(finding.flow, start=1):
                lines.append(
                    f"    step {number}: {step.path}:{step.line}: "
                    f"{step.note}"
                )
        counts = self.counts_by_severity()
        summary = ", ".join(
            f"{counts[key]} {key}" for key in ("error", "warning", "info")
            if key in counts
        ) or "no findings"
        lines.append(
            f"checked {self.modules_checked} modules with "
            f"{len(self.rules_run)} rules: {summary}"
            + (f" ({self.suppressed} suppressed)" if self.suppressed else "")
        )
        return "\n".join(lines)


def _inert_finding(rel: str, lineno: int, codes: str) -> CheckFinding:
    """The synthetic RC100 finding for one justification-less comment."""
    return CheckFinding(
        code=INERT_SUPPRESSION_CODE,
        severity=Severity.WARNING,
        path=rel,
        line=lineno,
        column=0,
        message=(
            f"suppression of [{codes}] has no justification; "
            "add '-- <reason>' for it to take effect"
        ),
        remediation=(
            "Every inline suppression must explain itself: "
            "'# repro-check: ignore[RC###] -- reason'."
        ),
    )


def _facts_suppressed(facts: ModuleFacts, code: str, line: int) -> bool:
    """Suppression lookup against a (possibly cached) facts record."""
    for lineno, codes in facts.suppressions:
        if lineno == line and code in codes:
            return True
    return False


def _analyze_one(
    root: Path, rel: str, module_rules: Sequence[CheckRule]
) -> Dict[str, object]:
    """Parse one file, run the module-scope rules, distill the facts.

    The returned entry is exactly what the cache stores — both cold and
    warm runs consume findings through this serialized form, which is
    what makes their reports byte-identical.
    """
    module = ModuleSource(root / rel, root)
    project = ProjectContext(root, [module])
    findings: List[CheckFinding] = []
    suppressed = 0
    for rule in module_rules:
        for finding in rule.check(module, project):
            if module.is_suppressed(finding.code, finding.line):
                suppressed += 1
            else:
                findings.append(finding)
    return {
        "facts": module.facts.to_dict(),
        "findings": [finding_to_dict(finding) for finding in findings],
        "suppressed": suppressed,
    }


def _analyze_shard(payload: object, shard) -> Dict[str, Dict[str, object]]:
    """Module-level ``run_sharded`` runner: analyze one slice of files.

    The payload is spawn-cheap plain data — ``(root, rels, codes,
    severities)`` — and the worker rebuilds its rule instances from the
    registry, so nothing heavier than strings crosses the process
    boundary.
    """
    root_text, rels, codes, severities = payload  # type: ignore[misc]
    overrides = {
        code: Severity.parse(value) for code, value in severities
    }
    engine = CheckEngine(select=codes, severity_overrides=overrides)
    root = Path(root_text)
    return {
        rel: _analyze_one(root, rel, engine.module_rules)
        for rel in rels[shard.start : shard.stop]
    }


class CheckEngine:
    """Instantiate rules, run them over a project, gather findings."""

    def __init__(
        self,
        rules: Optional[Iterable[Type[CheckRule]]] = None,
        severity_overrides: Optional[Dict[str, Severity]] = None,
        select: Optional[Iterable[str]] = None,
    ) -> None:
        classes = list(rules) if rules is not None else all_check_rules()
        if select is not None:
            wanted = {code.strip().upper() for code in select}
            classes = [cls for cls in classes if cls.code in wanted]
        overrides = severity_overrides or {}
        self.rules = [cls(overrides.get(cls.code)) for cls in classes]

    @property
    def module_rules(self) -> List[CheckRule]:
        """Rules whose findings depend on one file only (cacheable)."""
        return [rule for rule in self.rules if rule.scope == "module"]

    @property
    def project_rules(self) -> List[CheckRule]:
        """Rules that consume the whole-program facts and graph."""
        return [rule for rule in self.rules if rule.scope == "project"]

    def fingerprint(self) -> Dict[str, object]:
        """What a cache entry is valid against: format + effective rules.

        Any change to the rule set or to an effective severity (via
        ``--select`` or ``--severity``) invalidates every entry —
        cached findings embed both.
        """
        return {
            "cache_version": CACHE_VERSION,
            "rules": [
                [rule.code, rule.severity.value] for rule in self.rules
            ],
        }

    def run(self, project: ProjectContext) -> CheckReport:
        """In-memory path: run every rule over every parsed module."""
        findings: List[CheckFinding] = []
        suppressed = 0
        for module in project.modules:
            for rule in self.rules:
                for finding in rule.check(module, project):
                    if module.is_suppressed(finding.code, finding.line):
                        suppressed += 1
                    else:
                        findings.append(finding)
            for lineno, codes in module.inert_suppressions:
                findings.append(_inert_finding(module.rel, lineno, codes))
        return CheckReport(
            findings=findings,
            rules_run=[rule.code for rule in self.rules],
            modules_checked=len(project.modules),
            suppressed=suppressed,
        )

    def analyze(
        self,
        root: Path,
        targets: Optional[Sequence[str]] = None,
        cache_path: Optional[Path] = None,
        jobs: int = 1,
    ) -> CheckReport:
        """Incremental path: hash, reuse, re-analyze, then whole-program.

        Files whose sha256 matches a cache entry contribute their
        stored facts and findings without being read again; the rest
        are analyzed (in parallel when ``jobs > 1``, via the sharded
        pool funnel).  Project-scope rules then run over every file's
        facts, so a one-file edit still gets whole-program analysis.
        """
        root = root.resolve()
        files = _iter_python_files(root, targets or DEFAULT_ROOTS)
        rels = [path.relative_to(root).as_posix() for path in files]
        shas = {rel: file_sha(root / rel) for rel in rels}
        fingerprint = self.fingerprint()
        cached = load_entries(cache_path, fingerprint)
        entries: Dict[str, Dict[str, object]] = {}
        misses: List[str] = []
        for rel in rels:
            entry = cached.get(rel)
            if (
                isinstance(entry, dict)
                and entry.get("sha") == shas[rel]
            ):
                entries[rel] = entry
            else:
                misses.append(rel)
        for rel in _ripple_dependents(misses, entries):
            misses.append(rel)
            entries.pop(rel, None)
        for rel, fresh in self._analyze_misses(root, misses, jobs).items():
            fresh["sha"] = shas[rel]
            entries[rel] = fresh
        if cache_path is not None:
            save_entries(cache_path, fingerprint, entries)

        findings: List[CheckFinding] = []
        suppressed = 0
        facts_list: List[ModuleFacts] = []
        for rel in rels:
            entry = entries[rel]
            facts = ModuleFacts.from_dict(entry["facts"])  # type: ignore[arg-type]
            facts_list.append(facts)
            findings.extend(
                finding_from_dict(payload)
                for payload in entry["findings"]  # type: ignore[union-attr]
            )
            suppressed += int(entry["suppressed"])  # type: ignore[arg-type]
            for lineno, codes in facts.inert_suppressions:
                findings.append(_inert_finding(facts.rel, lineno, codes))

        graph = ProjectGraph(
            facts_list, reference_corpus(root), _docs_text(root)
        )
        for rule in self.project_rules:
            for facts in facts_list:
                for finding in rule.check_facts(facts, graph):
                    if _facts_suppressed(facts, finding.code, finding.line):
                        suppressed += 1
                    else:
                        findings.append(finding)
        return CheckReport(
            findings=findings,
            rules_run=[rule.code for rule in self.rules],
            modules_checked=len(rels),
            suppressed=suppressed,
            analyzed=len(misses),
            reused=len(rels) - len(misses),
        )

    def _analyze_misses(
        self, root: Path, misses: Sequence[str], jobs: int
    ) -> Dict[str, Dict[str, object]]:
        """Analyze changed files, serially or over the sharded pool."""
        if jobs > 1 and len(misses) > 1:
            from ..core.sharding import run_sharded

            payload = (
                str(root),
                tuple(misses),
                tuple(rule.code for rule in self.rules),
                tuple(
                    (rule.code, rule.severity.value) for rule in self.rules
                ),
            )
            shard_size = max(1, (len(misses) + jobs - 1) // jobs)
            _shards, outputs = run_sharded(
                payload,
                _analyze_shard,
                [len(misses)],
                jobs,
                shard_size,
            )
            merged: Dict[str, Dict[str, object]] = {}
            for output in outputs:
                merged.update(output)  # type: ignore[arg-type]
            return merged
        module_rules = self.module_rules
        return {
            rel: _analyze_one(root, rel, module_rules) for rel in misses
        }


def _ripple_dependents(
    misses: Sequence[str], entries: Dict[str, Dict[str, object]]
) -> List[str]:
    """Cached files whose flow summaries a changed file invalidates.

    Interprocedural summaries (taint returns, release obligations)
    cross module boundaries along import edges, so when a file changes,
    every module that imports it — transitively — must be re-analyzed
    too: its cached summaries may mention the edited callee.  Edges are
    read from the *cached* facts (the only ones available before the
    re-parse) and matched coarsely: ``from repro.core import shm`` and
    ``import repro.core.shm`` both count as depending on
    ``repro.core.shm``.  With no misses this is a no-op, keeping the
    warm-unchanged path at zero re-analyzed modules.
    """
    if not misses:
        return []

    depends: Dict[str, set] = {}
    for rel, entry in entries.items():
        facts = entry.get("facts")
        if not isinstance(facts, dict):
            continue
        sources = set()
        for imp in facts.get("imports", ()):
            source = imp.get("source") if isinstance(imp, dict) else None
            if not source:
                continue
            sources.add(str(source))
            for name in imp.get("names", ()):
                sources.add(f"{source}.{name}")
        depends[rel] = sources
    missed_rels = set(misses)
    missed_dotted = {
        dotted
        for dotted in (_ripple_name(rel) for rel in missed_rels)
        if dotted
    }
    rippled: List[str] = []
    changed = True
    while changed:
        changed = False
        for rel in sorted(depends):
            if rel in missed_rels:
                continue
            if depends[rel] & missed_dotted:
                missed_rels.add(rel)
                missed_dotted.add(_ripple_name(rel))
                rippled.append(rel)
                changed = True
    return rippled


def _ripple_name(rel: str) -> str:
    """The dotted name a changed file is importable under.

    ``src/`` files use the canonical package path; anything else (the
    ``scripts/`` tree, test projects with a flat layout) falls back to
    the path-derived name.  Matching stays coarse on purpose — a false
    positive only re-analyzes one extra file.
    """
    from .context import _dotted_name

    dotted = _dotted_name(rel)
    if dotted or not rel.endswith(".py"):
        return dotted
    return rel[: -len(".py")].replace("/", ".")


def _docs_text(root: Path) -> str:
    """Concatenated ``docs/*.md`` (RC108's documentation corpus)."""
    docs_dir = root / "docs"
    if not docs_dir.is_dir():
        return ""
    return "\n".join(
        path.read_text(encoding="utf-8")
        for path in sorted(docs_dir.glob("*.md"))
    )
