"""Run registered check rules over a project tree and report findings.

Mirrors :mod:`repro.diagnostics.engine`: the engine instantiates every
registered rule (with optional severity overrides), feeds each parsed
module through each rule, filters findings through the inline
suppression map, and folds everything into a :class:`CheckReport` that
renders as text or JSON and computes a gate exit code.

Suppression comments that lack the mandatory ``--  justification`` are
themselves reported (as synthetic ``RC100`` warnings) so an inert
suppression never silently masks the absence of a rationale.
"""

from __future__ import annotations

import fnmatch
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Type

from ..diagnostics.model import Severity
from .context import ModuleSource, ProjectContext
from .model import CheckFinding, CheckRule, all_check_rules

__all__ = ["CheckEngine", "CheckReport", "load_project"]

#: Directories scanned when no explicit paths are given: the package
#: source and the repo's operational scripts.  Tests and benchmarks are
#: exercised by the tier-1 suite itself; fixture snippets under
#: ``tests/fixtures/check`` are *intentionally* violating and must
#: never be scanned as project code.
DEFAULT_ROOTS = ("src", "scripts")

_EXCLUDED_PATTERNS = ("*/fixtures/*", "fixtures/*")

#: Synthetic code for suppression comments missing a justification.
INERT_SUPPRESSION_CODE = "RC100"


def _iter_python_files(root: Path, targets: Sequence[str]) -> List[Path]:
    paths: List[tuple] = []
    for target in targets:
        base = (root / target).resolve()
        if base.is_file() and base.suffix == ".py":
            paths.append((base, True))  # explicit file: never excluded
            continue
        if not base.is_dir():
            continue
        paths.extend((path, False) for path in sorted(base.rglob("*.py")))
    unique: List[Path] = []
    seen = set()
    for path, explicit in paths:
        rel = path.as_posix()
        if path in seen:
            continue
        if not explicit and any(
            fnmatch.fnmatch(rel, pat) for pat in _EXCLUDED_PATTERNS
        ):
            continue
        seen.add(path)
        unique.append(path)
    return unique


def load_project(
    root: Path, targets: Optional[Sequence[str]] = None
) -> ProjectContext:
    """Parse every Python file under *targets* (default: src + scripts)."""
    root = root.resolve()
    modules = [
        ModuleSource(path, root)
        for path in _iter_python_files(root, targets or DEFAULT_ROOTS)
    ]
    return ProjectContext(root, modules)


class CheckReport:
    """Outcome of one analyzer run: findings plus run metadata."""

    def __init__(
        self,
        findings: List[CheckFinding],
        rules_run: List[str],
        modules_checked: int,
        suppressed: int,
    ) -> None:
        self.findings = sorted(
            findings, key=lambda f: (f.path, f.line, f.column, f.code)
        )
        self.rules_run = rules_run
        self.modules_checked = modules_checked
        self.suppressed = suppressed

    def counts_by_severity(self) -> Dict[str, int]:
        """``{"error": n, ...}`` over the unsuppressed findings."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = finding.severity.value
            counts[key] = counts.get(key, 0) + 1
        return counts

    def exit_code(self, fail_on: str = "warning") -> int:
        """0 when clean under the gate; 1 otherwise.

        *fail_on* is ``"error"``, ``"warning"`` (default, the CI gate),
        or ``"never"`` (report-only).
        """
        if fail_on == "never":
            return 0
        threshold = Severity.parse(fail_on)
        for finding in self.findings:
            if finding.severity.at_least(threshold):
                return 1
        return 0

    def to_json(self) -> str:
        """Stable JSON document (used by the CI ``static-check`` job)."""
        payload = {
            "modules_checked": self.modules_checked,
            "rules_run": self.rules_run,
            "suppressed": self.suppressed,
            "counts": self.counts_by_severity(),
            "findings": [finding.to_dict() for finding in self.findings],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable report, one line per finding."""
        lines = [str(finding) for finding in self.findings]
        counts = self.counts_by_severity()
        summary = ", ".join(
            f"{counts[key]} {key}" for key in ("error", "warning", "info")
            if key in counts
        ) or "no findings"
        lines.append(
            f"checked {self.modules_checked} modules with "
            f"{len(self.rules_run)} rules: {summary}"
            + (f" ({self.suppressed} suppressed)" if self.suppressed else "")
        )
        return "\n".join(lines)


class CheckEngine:
    """Instantiate rules, run them over a project, gather findings."""

    def __init__(
        self,
        rules: Optional[Iterable[Type[CheckRule]]] = None,
        severity_overrides: Optional[Dict[str, Severity]] = None,
        select: Optional[Iterable[str]] = None,
    ) -> None:
        classes = list(rules) if rules is not None else all_check_rules()
        if select is not None:
            wanted = {code.strip().upper() for code in select}
            classes = [cls for cls in classes if cls.code in wanted]
        overrides = severity_overrides or {}
        self.rules = [cls(overrides.get(cls.code)) for cls in classes]

    def run(self, project: ProjectContext) -> CheckReport:
        findings: List[CheckFinding] = []
        suppressed = 0
        for module in project.modules:
            for rule in self.rules:
                for finding in rule.check(module, project):
                    if module.is_suppressed(finding.code, finding.line):
                        suppressed += 1
                    else:
                        findings.append(finding)
            for lineno, codes in module.inert_suppressions:
                findings.append(
                    CheckFinding(
                        code=INERT_SUPPRESSION_CODE,
                        severity=Severity.WARNING,
                        path=module.rel,
                        line=lineno,
                        column=0,
                        message=(
                            f"suppression of [{codes}] has no justification; "
                            "add '-- <reason>' for it to take effect"
                        ),
                        remediation=(
                            "Every inline suppression must explain itself: "
                            "'# repro-check: ignore[RC###] -- reason'."
                        ),
                    )
                )
        return CheckReport(
            findings=findings,
            rules_run=[rule.code for rule in self.rules],
            modules_checked=len(project.modules),
            suppressed=suppressed,
        )
