"""Apply the mechanically safe fixes attached to check findings.

Only two rewrites ever carry a :class:`~repro.check.model.Fix`:
wrapping an order-dependent iterable in ``sorted(...)`` (RC103) and
turning a bare ``except:`` into ``except Exception:`` (RC106).  Both
preserve or strictly narrow behaviour, so ``repro check --fix`` applies
them without review.  Applying is idempotent by construction: a fixed
site no longer matches its rule, so a second run finds nothing to do.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .model import CheckFinding, Fix

__all__ = ["apply_fixes"]


def apply_fixes(
    root: Path, findings: Sequence[CheckFinding]
) -> Dict[str, int]:
    """Rewrite files under *root* per the fixable findings.

    Returns ``{relative_path: fixes_applied}``.  All fixes for one file
    are applied against its current text in one pass, back to front so
    earlier spans stay valid; overlapping fixes are skipped (a re-run
    picks them up once the file reparses).
    """
    by_path: Dict[str, List[Fix]] = {}
    for finding in findings:
        if finding.fix is not None:
            by_path.setdefault(finding.path, []).append(finding.fix)

    applied: Dict[str, int] = {}
    for rel, fixes in sorted(by_path.items()):
        path = root / rel
        text = path.read_text(encoding="utf-8")
        offsets = _line_offsets(text)
        count = 0
        last_start = len(text) + 1
        ordered = sorted(fixes, key=lambda f: f.start, reverse=True)
        for fix in ordered:
            start = _abs_offset(offsets, fix.start)
            end = _abs_offset(offsets, fix.end)
            if start is None or end is None or not start < end:
                continue
            if end > last_start:
                continue  # overlaps a fix already applied
            text = text[:start] + fix.replacement + text[end:]
            last_start = start
            count += 1
        if count:
            path.write_text(text, encoding="utf-8")
            applied[rel] = count
    return applied


def _line_offsets(text: str) -> List[int]:
    """Absolute offset of the start of each (1-based) line."""
    offsets = [0]
    for idx, char in enumerate(text):
        if char == "\n":
            offsets.append(idx + 1)
    return offsets


def _abs_offset(offsets: List[int], position: Tuple[int, int]):
    """Absolute text offset of an ast ``(lineno, col_offset)`` pair."""
    line, column = position
    if not 1 <= line <= len(offsets):
        return None
    return offsets[line - 1] + column
