"""Whole-program facts, import graph, and conservative call graph.

PR 5's rules see one file at a time, so a blocking call or snapshot
mutation hidden one helper-function away is invisible.  This module is
the whole-program layer underneath the RC109–RC112 rule family: every
parsed module is distilled into a :class:`ModuleFacts` record — imports,
function/call summaries, blocking sites, mutated parameters, exported
names — and :class:`ProjectGraph` folds those records into a
project-wide import graph plus a *conservative* call graph (an edge
exists only when the callee resolves unambiguously; unresolvable calls
are dropped, never guessed).

Facts are plain data and round-trip through JSON: the incremental cache
(:mod:`repro.check.cache`) stores them per file, so a warm ``repro
check`` run rebuilds the graph from cached facts without re-parsing
unchanged files — whole-program rules keep seeing the whole program
while only changed files pay the parse cost.
"""

from __future__ import annotations

import ast
from dataclasses import asdict, dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .context import infer_local_types, iter_scopes, walk_scope
from .dataflow import FlowFact, FlowResolver, analyze_function

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import ModuleSource

__all__ = [
    "FROZEN_CLASSES",
    "BlockingSite",
    "CallFact",
    "ClassFact",
    "ExportFact",
    "FrozenArgFact",
    "FunctionFact",
    "ImportFact",
    "ModuleFacts",
    "ProjectGraph",
    "blocking_call_label",
    "extract_facts",
    "resolve_import_source",
]

#: Frozen snapshot classes → the one module allowed to touch their
#: attributes (their defining module, i.e. ``__init__`` and friends).
#: Shared by RC102 (direct mutation) and RC111 (mutation through helper
#: aliases).
FROZEN_CLASSES: Dict[str, str] = {
    "AnalysisContext": "repro.core.context",
    "RibSnapshot": "repro.core.context",
    "RoaSnapshot": "repro.core.context",
    "LeaseIndex": "repro.core.leaseindex",
}

#: Call patterns that block the event loop: plain built-ins, and
#: ``module.function`` attribute calls keyed by the receiver name.
#: Any attribute call on a name ``subprocess``/``socket`` is flagged.
#: Shared by RC104 (direct calls in async bodies) and RC110 (calls
#: reachable from async bodies through sync helpers).
BLOCKING_NAME_CALLS = frozenset({"open", "input"})
BLOCKING_ATTR_CALLS = frozenset(
    {
        ("time", "sleep"),
        ("os", "system"),
        ("socket", "create_connection"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("subprocess", "Popen"),
    }
)
BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Decorator names that register a rule class; a rule subclass carrying
#: one of these is reachable through its registry even when no code
#: names it explicitly.
_REGISTER_DECORATORS = frozenset({"register_check_rule", "register_rule"})

#: Base-class names marking a class as a pluggable rule implementation.
_RULE_BASES = frozenset({"CheckRule", "DiagnosticRule"})

#: Qualname of the synthetic function holding module-level statements.
MODULE_QUALNAME = "<module>"


def blocking_call_label(node: ast.Call) -> Optional[str]:
    """A display label when *node* is a blocking call, else None.

    The label matches the spelling RC104 has always reported:
    ``open()``, ``time.sleep()``, ``.read_text()``.
    """
    target = node.func
    if isinstance(target, ast.Name) and target.id in BLOCKING_NAME_CALLS:
        return f"{target.id}()"
    if isinstance(target, ast.Attribute):
        receiver = target.value
        if isinstance(receiver, ast.Name):
            pair = (receiver.id, target.attr)
            if pair in BLOCKING_ATTR_CALLS or receiver.id in (
                "subprocess",
                "socket",
            ):
                return f"{receiver.id}.{target.attr}()"
        if target.attr in BLOCKING_METHODS:
            return f".{target.attr}()"
    return None


# ---------------------------------------------------------------------------
# Facts records


@dataclass(frozen=True)
class ImportFact:
    """One import statement, resolved to an absolute dotted source."""

    source: str
    lineno: int
    col: int
    top_level: bool
    type_checking: bool
    is_from: bool
    names: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CallFact:
    """One call site: receiver name (if any), attribute/function name,
    and which arguments are bare local names."""

    base: Optional[str]
    name: str
    lineno: int
    col: int
    args: Tuple[Optional[str], ...] = ()
    keywords: Tuple[Tuple[str, Optional[str]], ...] = ()


@dataclass(frozen=True)
class BlockingSite:
    """One blocking call inside a function body."""

    label: str
    lineno: int
    col: int


@dataclass(frozen=True)
class FrozenArgFact:
    """A frozen-snapshot instance passed as an argument at a call site.

    ``position`` is an int for positional arguments and the keyword name
    for keyword arguments.
    """

    base: Optional[str]
    name: str
    position: object
    cls: str
    var: str
    lineno: int
    col: int


@dataclass(frozen=True)
class FunctionFact:
    """One function scope: identity, parameters, and call summary."""

    qualname: str
    owner_class: Optional[str]
    is_async: bool
    lineno: int
    col: int
    params: Tuple[str, ...] = ()
    calls: Tuple[CallFact, ...] = ()
    blocking: Tuple[BlockingSite, ...] = ()
    mutated_params: Tuple[str, ...] = ()
    frozen_args: Tuple[FrozenArgFact, ...] = ()
    flow: FlowFact = FlowFact()


@dataclass(frozen=True)
class ClassFact:
    """One class definition: bases, registration, spawn safety."""

    name: str
    lineno: int
    col: int
    bases: Tuple[str, ...] = ()
    registered: bool = False
    spawn_safe: bool = False


@dataclass(frozen=True)
class ExportFact:
    """One ``__all__`` entry; ``local`` when the module defines it."""

    name: str
    lineno: int
    col: int
    local: bool


@dataclass(frozen=True)
class ModuleFacts:
    """Everything the whole-program rules need from one module."""

    rel: str
    module: str
    imports: Tuple[ImportFact, ...] = ()
    functions: Tuple[FunctionFact, ...] = ()
    classes: Tuple[ClassFact, ...] = ()
    exports: Tuple[ExportFact, ...] = ()
    payload_refs: Tuple[Tuple[str, int, int], ...] = ()
    cli_flags: Tuple[Tuple[str, int, int], ...] = ()
    identifiers: Tuple[str, ...] = ()
    import_aliases: Tuple[Tuple[str, str], ...] = ()
    symbol_aliases: Tuple[Tuple[str, str, str], ...] = ()
    suppressions: Tuple[Tuple[int, Tuple[str, ...]], ...] = ()
    inert_suppressions: Tuple[Tuple[int, str], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by the incremental cache)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ModuleFacts":
        """Rebuild a facts record from :meth:`to_dict` output."""

        def _t(seq: object) -> tuple:
            if isinstance(seq, (list, tuple)):
                return tuple(_t(item) for item in seq)
            return seq  # type: ignore[return-value]

        return cls(
            rel=str(payload["rel"]),
            module=str(payload["module"]),
            imports=tuple(
                ImportFact(**{**d, "names": tuple(d["names"])})
                for d in payload.get("imports", ())
            ),
            functions=tuple(
                FunctionFact(
                    qualname=d["qualname"],
                    owner_class=d["owner_class"],
                    is_async=d["is_async"],
                    lineno=d["lineno"],
                    col=d["col"],
                    params=tuple(d["params"]),
                    calls=tuple(
                        CallFact(
                            base=c["base"],
                            name=c["name"],
                            lineno=c["lineno"],
                            col=c["col"],
                            args=tuple(c["args"]),
                            keywords=_t(c["keywords"]),
                        )
                        for c in d["calls"]
                    ),
                    blocking=tuple(
                        BlockingSite(**b) for b in d["blocking"]
                    ),
                    mutated_params=tuple(d["mutated_params"]),
                    frozen_args=tuple(
                        FrozenArgFact(**f) for f in d["frozen_args"]
                    ),
                    flow=FlowFact.from_dict(d.get("flow", {})),
                )
                for d in payload.get("functions", ())
            ),
            classes=tuple(
                ClassFact(**{**d, "bases": tuple(d["bases"])})
                for d in payload.get("classes", ())
            ),
            exports=tuple(
                ExportFact(**d) for d in payload.get("exports", ())
            ),
            payload_refs=_t(payload.get("payload_refs", ())),
            cli_flags=_t(payload.get("cli_flags", ())),
            identifiers=tuple(payload.get("identifiers", ())),
            import_aliases=_t(payload.get("import_aliases", ())),
            symbol_aliases=_t(payload.get("symbol_aliases", ())),
            suppressions=_t(payload.get("suppressions", ())),
            inert_suppressions=_t(payload.get("inert_suppressions", ())),
        )


# ---------------------------------------------------------------------------
# Import resolution


def resolve_import_source(
    module: str, is_package: bool, level: int, target: Optional[str]
) -> Optional[str]:
    """Absolute dotted source of a (possibly relative) import.

    *module* is the importing module's dotted name (``""`` outside the
    package tree) and *is_package* whether it is a package
    ``__init__``.  Returns None when a relative import cannot be
    resolved (fixture snippets, scripts).
    """
    if level == 0:
        return target
    if not module:
        return None
    package = module if is_package else module.rsplit(".", 1)[0]
    parts = package.split(".")
    if level - 1 > len(parts):
        return None
    base = parts[: len(parts) - (level - 1)] if level > 1 else parts
    if target:
        base = base + target.split(".")
    return ".".join(base) if base else None


# ---------------------------------------------------------------------------
# Facts extraction


def extract_facts(module: "ModuleSource") -> ModuleFacts:
    """Distill one parsed module into its :class:`ModuleFacts`."""
    extractor = _FactsExtractor(module)
    return extractor.run()


class _FactsExtractor:
    """Single-pass collector over one module's AST."""

    def __init__(self, module: "ModuleSource") -> None:
        self.module = module
        self.is_package = module.rel.endswith("__init__.py")
        self.imports: List[ImportFact] = []
        self.functions: List[FunctionFact] = []
        self.classes: List[ClassFact] = []
        self.import_aliases: Dict[str, str] = {}
        self.symbol_aliases: Dict[str, Tuple[str, str]] = {}

    def run(self) -> ModuleFacts:
        tree = self.module.tree
        self._collect_imports(tree.body, top_level=True, type_checking=False)
        self._collect_scopes(tree.body, prefix="", owner=None)
        self.functions.append(self._function_fact(tree, MODULE_QUALNAME, None))
        return ModuleFacts(
            rel=self.module.rel,
            module=self.module.module,
            imports=tuple(self.imports),
            functions=tuple(self.functions),
            classes=tuple(self.classes),
            exports=tuple(self._exports(tree)),
            payload_refs=tuple(self._payload_refs(tree)),
            cli_flags=tuple(self._cli_flags(tree)),
            identifiers=tuple(sorted(self._identifiers(tree))),
            import_aliases=tuple(sorted(self.import_aliases.items())),
            symbol_aliases=tuple(
                (local, mod, sym)
                for local, (mod, sym) in sorted(self.symbol_aliases.items())
            ),
            suppressions=tuple(
                (line, tuple(sorted(codes)))
                for line, codes in sorted(self.module.suppressions.items())
            ),
            inert_suppressions=tuple(self.module.inert_suppressions),
        )

    # -- imports ----------------------------------------------------------

    def _collect_imports(
        self, body: Sequence[ast.stmt], top_level: bool, type_checking: bool
    ) -> None:
        for node in body:
            if isinstance(node, ast.If):
                tc = type_checking or _is_type_checking_test(node.test)
                self._collect_imports(node.body, top_level, tc)
                self._collect_imports(node.orelse, top_level, type_checking)
            elif isinstance(node, ast.Try):
                self._collect_imports(node.body, top_level, type_checking)
                for handler in node.handlers:
                    self._collect_imports(
                        handler.body, top_level, type_checking
                    )
                self._collect_imports(node.orelse, top_level, type_checking)
                self._collect_imports(
                    node.finalbody, top_level, type_checking
                )
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                self._collect_imports(node.body, top_level, type_checking)
            elif isinstance(node, ast.ClassDef):
                self._collect_imports(node.body, top_level, type_checking)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_imports(node.body, False, type_checking)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports.append(
                        ImportFact(
                            source=alias.name,
                            lineno=node.lineno,
                            col=node.col_offset,
                            top_level=top_level,
                            type_checking=type_checking,
                            is_from=False,
                        )
                    )
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.asname:
                        self.import_aliases[local] = alias.name
                    elif "." not in alias.name:
                        self.import_aliases[local] = alias.name
            elif isinstance(node, ast.ImportFrom):
                source = resolve_import_source(
                    self.module.module,
                    self.is_package,
                    node.level,
                    node.module,
                )
                if source is None:
                    continue
                self.imports.append(
                    ImportFact(
                        source=source,
                        lineno=node.lineno,
                        col=node.col_offset,
                        top_level=top_level,
                        type_checking=type_checking,
                        is_from=True,
                        names=tuple(alias.name for alias in node.names),
                    )
                )
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.symbol_aliases[local] = (source, alias.name)

    # -- functions and classes -------------------------------------------

    def _collect_scopes(
        self,
        body: Sequence[ast.stmt],
        prefix: str,
        owner: Optional[str],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{node.name}"
                self.functions.append(
                    self._function_fact(node, qualname, owner)
                )
                self._collect_scopes(
                    node.body, prefix=f"{qualname}.", owner=owner
                )
            elif isinstance(node, ast.ClassDef):
                self.classes.append(self._class_fact(node))
                self._collect_scopes(
                    node.body,
                    prefix=f"{prefix}{node.name}.",
                    owner=f"{prefix}{node.name}",
                )
            elif hasattr(node, "body") and isinstance(
                getattr(node, "body", None), list
            ):
                self._collect_scopes(node.body, prefix, owner)  # type: ignore[arg-type]
                for sub in getattr(node, "orelse", []):
                    self._collect_scopes([sub], prefix, owner)
                for sub in getattr(node, "finalbody", []):
                    self._collect_scopes([sub], prefix, owner)
                for handler in getattr(node, "handlers", []):
                    self._collect_scopes(handler.body, prefix, owner)

    def _function_fact(
        self, scope: ast.AST, qualname: str, owner: Optional[str]
    ) -> FunctionFact:
        params: Tuple[str, ...] = ()
        is_async = isinstance(scope, ast.AsyncFunctionDef)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            names = list(getattr(args, "posonlyargs", []))
            names += list(args.args)
            if args.vararg is not None:
                names.append(args.vararg)
            names += list(args.kwonlyargs)
            if args.kwarg is not None:
                names.append(args.kwarg)
            params = tuple(arg.arg for arg in names)
        calls: List[CallFact] = []
        blocking: List[BlockingSite] = []
        for node in walk_scope(scope):
            if not isinstance(node, ast.Call):
                continue
            calls.append(_call_fact(node))
            label = blocking_call_label(node)
            if label is not None:
                blocking.append(
                    BlockingSite(label, node.lineno, node.col_offset)
                )
        types = infer_local_types(scope, FROZEN_CLASSES)
        frozen_args: List[FrozenArgFact] = []
        if types:
            for node in walk_scope(scope):
                if isinstance(node, ast.Call):
                    frozen_args.extend(_frozen_args(node, types))
        return FunctionFact(
            qualname=qualname,
            owner_class=owner,
            is_async=is_async,
            lineno=getattr(scope, "lineno", 1),
            col=getattr(scope, "col_offset", 0),
            params=params,
            calls=tuple(calls),
            blocking=tuple(blocking),
            mutated_params=tuple(sorted(_mutated_params(scope, params))),
            frozen_args=tuple(frozen_args),
            flow=analyze_function(scope),
        )

    def _class_fact(self, node: ast.ClassDef) -> ClassFact:
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        registered = any(
            (isinstance(dec, ast.Name) and dec.id in _REGISTER_DECORATORS)
            or (
                isinstance(dec, ast.Attribute)
                and dec.attr in _REGISTER_DECORATORS
            )
            or (
                isinstance(dec, ast.Call)
                and isinstance(dec.func, (ast.Name, ast.Attribute))
                and (
                    getattr(dec.func, "id", None) in _REGISTER_DECORATORS
                    or getattr(dec.func, "attr", None)
                    in _REGISTER_DECORATORS
                )
            )
            for dec in node.decorator_list
        )
        return ClassFact(
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            bases=tuple(bases),
            registered=registered,
            spawn_safe=_is_spawn_safe(node),
        )

    # -- module-level scans ----------------------------------------------

    def _exports(self, tree: ast.Module) -> Iterator[ExportFact]:
        local_defs = _top_level_names(tree)
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                continue
            if not isinstance(node.value, (ast.List, ast.Tuple)):
                continue
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    yield ExportFact(
                        name=element.value,
                        lineno=element.lineno,
                        col=element.col_offset,
                        local=element.value in local_defs,
                    )

    def _payload_refs(
        self, tree: ast.Module
    ) -> Iterator[Tuple[str, int, int]]:
        for scope in iter_scopes(tree):
            types: Optional[Dict[str, str]] = None
            for node in walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_run_sharded(node.func) or not node.args:
                    continue
                if types is None:
                    types = infer_local_types(scope, _EVERYTHING)
                payload = _resolve_payload(scope, node.args[0])
                for cls_name, at in _payload_classes(payload, types):
                    yield (
                        cls_name,
                        getattr(at, "lineno", node.lineno),
                        getattr(at, "col_offset", node.col_offset),
                    )

    def _cli_flags(self, tree: ast.Module) -> Iterator[Tuple[str, int, int]]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr == "add_argument"
            ):
                continue
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    yield (arg.value, arg.lineno, arg.col_offset)

    def _identifiers(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    names.add(alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.name.split(".")[-1])
        return names


class _Everything:
    def __contains__(self, item: object) -> bool:
        return isinstance(item, str)


_EVERYTHING = _Everything()


def _call_fact(node: ast.Call) -> CallFact:
    func = node.func
    base: Optional[str] = None
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
        if isinstance(func.value, ast.Name):
            base = func.value.id
    args = tuple(
        arg.id if isinstance(arg, ast.Name) else None for arg in node.args
    )
    keywords = tuple(
        (kw.arg, kw.value.id if isinstance(kw.value, ast.Name) else None)
        for kw in node.keywords
        if kw.arg is not None
    )
    return CallFact(
        base=base,
        name=name,
        lineno=node.lineno,
        col=node.col_offset,
        args=args,
        keywords=keywords,
    )


def _frozen_args(
    node: ast.Call, types: Dict[str, str]
) -> Iterator[FrozenArgFact]:
    fact = _call_fact(node)
    if not fact.name:
        return
    for position, arg in enumerate(node.args):
        if isinstance(arg, ast.Name) and arg.id in types:
            yield FrozenArgFact(
                base=fact.base,
                name=fact.name,
                position=position,
                cls=types[arg.id],
                var=arg.id,
                lineno=node.lineno,
                col=node.col_offset,
            )
    for kw in node.keywords:
        if (
            kw.arg is not None
            and isinstance(kw.value, ast.Name)
            and kw.value.id in types
        ):
            yield FrozenArgFact(
                base=fact.base,
                name=fact.name,
                position=kw.arg,
                cls=types[kw.value.id],
                var=kw.value.id,
                lineno=node.lineno,
                col=node.col_offset,
            )


def _mutated_params(scope: ast.AST, params: Tuple[str, ...]) -> Set[str]:
    """Parameters whose attributes the function assigns or deletes.

    ``self``/``cls`` are excluded: a method mutating its own instance
    is ordinary object construction (RC102 judges whether the instance
    was frozen), not a parameter the caller's arguments flow into.
    """
    mutated: Set[str] = set()
    if not params:
        return mutated
    param_set = set(params) - {"self", "cls"}
    if not param_set:
        return mutated
    for node in walk_scope(scope):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            inner = target
            if isinstance(inner, ast.Subscript):
                inner = inner.value
            if isinstance(inner, ast.Attribute) and isinstance(
                inner.value, ast.Name
            ):
                if inner.value.id in param_set:
                    mutated.add(inner.value.id)
    return mutated


def _top_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _is_run_sharded(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "run_sharded"
    if isinstance(func, ast.Attribute):
        return func.attr == "run_sharded"
    return False


def _resolve_payload(scope: ast.AST, payload: ast.expr) -> ast.expr:
    """Chase ``payload = (...)`` bindings so wrapped tuples are seen."""
    if not isinstance(payload, ast.Name):
        return payload
    for node in walk_scope(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == payload.id
                    and isinstance(node.value, (ast.Tuple, ast.List))
                ):
                    return node.value
    return payload


def _payload_classes(payload: ast.expr, types: Dict[str, str]):
    """Yield ``(class_name, node)`` for classes visible in *payload*."""
    for node in ast.walk(payload):
        if isinstance(node, ast.Name) and node.id in types:
            yield types[node.id], node
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id[:1].isupper():
                yield func.id, node


def _is_spawn_safe(class_def: ast.ClassDef) -> bool:
    """True when the class declares its pickled form explicitly."""
    for stmt in class_def.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name in ("__getstate__", "__reduce__"):
                return True
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
    return False


# ---------------------------------------------------------------------------
# Project graph


class ProjectGraph:
    """Import graph + conservative call graph over a set of facts.

    Built once per run (from live or cached facts) and consumed by the
    RC109–RC112 rule family.  All resolution is *conservative*: an edge
    exists only when the target is unambiguous, so reachability-based
    rules under-report rather than guess.
    """

    def __init__(
        self,
        facts: Sequence[ModuleFacts],
        reference_text: str = "",
        docs_text: str = "",
    ) -> None:
        self.facts = {f.rel: f for f in facts}
        self.by_dotted = {f.module: f for f in facts if f.module}
        self.reference_text = reference_text
        self.docs_text = docs_text
        self._functions: Dict[str, Dict[str, FunctionFact]] = {}
        self._classes: Dict[str, List[Tuple[str, ClassFact]]] = {}
        for f in facts:
            self._functions[f.rel] = {
                fn.qualname: fn for fn in f.functions
            }
            for cls in f.classes:
                self._classes.setdefault(cls.name, []).append((f.rel, cls))
        self._mutating: Optional[Dict[Tuple[str, str], Set[str]]] = None
        self._cycles: Optional[List[List[str]]] = None
        self._flow_resolver: Optional[FlowResolver] = None

    def flow_resolver(self) -> FlowResolver:
        """The shared interprocedural flow closure (built lazily once)."""
        if self._flow_resolver is None:
            self._flow_resolver = FlowResolver(self)
        return self._flow_resolver

    def classes_named(self, name: str) -> List[Tuple[str, ClassFact]]:
        """Every ``(rel, ClassFact)`` defining class *name* project-wide."""
        return self._classes.get(name, [])

    # -- import graph -----------------------------------------------------

    def import_targets(self, fact: ImportFact) -> List[str]:
        """Project modules *fact* depends on (dotted names).

        ``from pkg import submodule`` depends on the submodule, not on
        the package ``__init__`` — unless a name is a genuine attribute
        of the package, in which case the package itself is a target.
        """
        targets: List[str] = []
        if not fact.is_from:
            if fact.source in self.by_dotted:
                targets.append(fact.source)
            return targets
        non_module_names = False
        for name in fact.names:
            dotted = f"{fact.source}.{name}"
            if dotted in self.by_dotted:
                targets.append(dotted)
            else:
                non_module_names = True
        if non_module_names and fact.source in self.by_dotted:
            targets.append(fact.source)
        return targets

    def import_cycles(self) -> List[List[str]]:
        """Cycles in the import-time graph (top-level, non-TYPE_CHECKING).

        Function-level (deferred) imports are the sanctioned
        cycle-breaker and are excluded; ``if TYPE_CHECKING:`` imports
        never execute.  Each cycle is a sorted list of dotted names.
        """
        if self._cycles is not None:
            return self._cycles
        graph: Dict[str, List[str]] = {}
        for fact in self.facts.values():
            if not fact.module:
                continue
            outs: Set[str] = set()
            for imp in fact.imports:
                if not imp.top_level or imp.type_checking:
                    continue
                for target in self.import_targets(imp):
                    if target != fact.module:
                        outs.add(target)
            graph[fact.module] = sorted(outs)
        self._cycles = sorted(_strongly_connected(graph))
        return self._cycles

    # -- call graph -------------------------------------------------------

    def function(self, rel: str, qualname: str) -> Optional[FunctionFact]:
        return self._functions.get(rel, {}).get(qualname)

    def resolve_call(
        self, rel: str, owner_class: Optional[str], base: Optional[str],
        name: str,
    ) -> Optional[Tuple[str, str]]:
        """``(rel, qualname)`` of the called project function, or None."""
        fact = self.facts.get(rel)
        if fact is None or not name:
            return None
        functions = self._functions.get(rel, {})
        if base is None:
            if name in functions:
                return (rel, name)
            return self._resolve_symbol(fact, name)
        if base in ("self", "cls") and owner_class:
            qualname = f"{owner_class}.{name}"
            if qualname in functions:
                return (rel, qualname)
            return None
        qualname = f"{base}.{name}"
        if qualname in functions:  # ClassName.method within this module
            return (rel, qualname)
        for local, dotted in fact.import_aliases:
            if local == base and dotted in self.by_dotted:
                other = self.by_dotted[dotted]
                if name in self._functions.get(other.rel, {}):
                    return (other.rel, name)
                return None
        for local, dotted, symbol in fact.symbol_aliases:
            if local != base:
                continue
            submodule = f"{dotted}.{symbol}"
            if submodule in self.by_dotted:
                other = self.by_dotted[submodule]
                if name in self._functions.get(other.rel, {}):
                    return (other.rel, name)
            return None
        return None

    def _resolve_symbol(
        self, fact: ModuleFacts, name: str
    ) -> Optional[Tuple[str, str]]:
        for local, dotted, symbol in fact.symbol_aliases:
            if local != name:
                continue
            if dotted in self.by_dotted:
                other = self.by_dotted[dotted]
                if symbol in self._functions.get(other.rel, {}):
                    return (other.rel, symbol)
            return None
        return None

    def blocking_reachable(
        self, rel: str, root: FunctionFact
    ) -> List[Tuple[CallFact, Tuple[str, str], BlockingSite, Tuple[str, ...]]]:
        """Blocking sites reachable from *root* through sync helpers.

        Returns ``(first_call, (callee_rel, callee_qualname), site,
        path)`` tuples — one per reachable *function* that blocks, with
        the path of qualnames from the root to it.  Direct blocking in
        the root body itself is RC104's finding and is excluded here.
        """
        results: List[
            Tuple[CallFact, Tuple[str, str], BlockingSite, Tuple[str, ...]]
        ] = []
        seen: Set[Tuple[str, str]] = set()
        queue: List[
            Tuple[Tuple[str, str], CallFact, Tuple[str, ...]]
        ] = []
        for call in root.calls:
            callee = self.resolve_call(
                rel, root.owner_class, call.base, call.name
            )
            if callee is not None and callee != (rel, root.qualname):
                queue.append((callee, call, (root.qualname,)))
        while queue:
            (callee_rel, callee_qual), first_call, path = queue.pop(0)
            if (callee_rel, callee_qual) in seen:
                continue
            seen.add((callee_rel, callee_qual))
            fn = self.function(callee_rel, callee_qual)
            if fn is None or fn.is_async:
                continue  # async callees report their own reachability
            here = path + (callee_qual,)
            for site in fn.blocking:
                results.append(
                    (first_call, (callee_rel, callee_qual), site, here)
                )
            for call in fn.calls:
                nxt = self.resolve_call(
                    callee_rel, fn.owner_class, call.base, call.name
                )
                if nxt is not None and nxt not in seen:
                    queue.append((nxt, first_call, here))
        results.sort(
            key=lambda item: (item[0].lineno, item[0].col, item[1], item[2].lineno)
        )
        return results

    # -- transitive parameter mutation ------------------------------------

    def mutating_params(self) -> Dict[Tuple[str, str], Set[str]]:
        """``(rel, qualname) -> params`` mutated directly or transitively.

        A parameter is *mutating* when the function assigns/deletes an
        attribute through it, or passes it into another function's
        mutating parameter — computed to a fixpoint over the call graph.
        """
        if self._mutating is not None:
            return self._mutating
        mutating: Dict[Tuple[str, str], Set[str]] = {}
        for rel, functions in self._functions.items():
            for qualname, fn in functions.items():
                if fn.mutated_params:
                    mutating[(rel, qualname)] = set(fn.mutated_params)
        changed = True
        while changed:
            changed = False
            for rel, functions in sorted(self._functions.items()):
                for qualname, fn in sorted(functions.items()):
                    params = set(fn.params)
                    if not params:
                        continue
                    current = mutating.get((rel, qualname), set())
                    for call in fn.calls:
                        callee = self.resolve_call(
                            rel, fn.owner_class, call.base, call.name
                        )
                        if callee is None or callee == (rel, qualname):
                            continue
                        callee_mut = mutating.get(callee)
                        if not callee_mut:
                            continue
                        callee_fn = self.function(*callee)
                        if callee_fn is None:
                            continue
                        offset = 1 if call.base in ("self", "cls") else 0
                        for position, arg in enumerate(call.args):
                            if arg is None or arg not in params:
                                continue
                            index = position + offset
                            if index < len(callee_fn.params) and (
                                callee_fn.params[index] in callee_mut
                            ):
                                if arg not in current:
                                    current.add(arg)
                                    changed = True
                        for kw, arg in call.keywords:
                            if arg is None or arg not in params:
                                continue
                            if kw in callee_mut:
                                if arg not in current:
                                    current.add(arg)
                                    changed = True
                    if current:
                        mutating[(rel, qualname)] = current
        self._mutating = mutating
        return mutating

    def param_name(
        self, callee: Tuple[str, str], position: object, offset: int = 0
    ) -> Optional[str]:
        """The callee's parameter bound at *position* (int or keyword).

        *offset* is 1 for calls through an instance receiver
        (``self.method(arg)``), where the implicit ``self`` shifts every
        positional argument right by one.
        """
        fn = self.function(*callee)
        if fn is None:
            return None
        if isinstance(position, int):
            index = position + offset
            if 0 <= index < len(fn.params):
                return fn.params[index]
            return None
        return position if position in fn.params else None

    # -- symbol usage -----------------------------------------------------

    def name_used_outside(self, rel: str, name: str) -> bool:
        """True when *name* is referenced outside the defining module.

        Checks every other scanned module's identifier set, then the
        reference corpus (tests, benchmarks, examples, docs) as raw
        text — conservatively: any appearance counts as a use.
        """
        for other_rel, fact in self.facts.items():
            if other_rel == rel:
                continue
            if name in fact.identifiers:
                return True
        if not self.reference_text:
            return False
        return _word_in(name, self.reference_text)


def _word_in(name: str, text: str) -> bool:
    start = 0
    while True:
        index = text.find(name, start)
        if index < 0:
            return False
        before = text[index - 1] if index > 0 else " "
        after_index = index + len(name)
        after = text[after_index] if after_index < len(text) else " "
        if not (before.isalnum() or before == "_") and not (
            after.isalnum() or after == "_"
        ):
            return True
        start = index + 1


def _strongly_connected(graph: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan SCCs of size > 1 (iterative; sorted for determinism)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    for start in sorted(graph):
        if start in index:
            continue
        work: List[Tuple[str, int]] = [(start, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = graph.get(node, [])
            advanced = False
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in graph:
                    continue
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components
