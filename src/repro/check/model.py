"""Core types of ``repro check``: findings, rules, the registry.

Deliberately parallel to :mod:`repro.diagnostics.model` — same severity
scale, same docstring conventions (rationale paragraphs, then an
optional ``Remediation:`` paragraph), same decorator-based registry —
so a reader who knows one engine knows both.  The registries stay
separate because the code families differ (``RC###`` here, single
letter + three digits there) and because source findings carry
file/line positions and optional mechanical fixes that dataset
diagnostics have no use for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
)

from ..diagnostics.model import Severity, split_docstring

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import ModuleSource, ProjectContext
    from .graph import ModuleFacts, ProjectGraph

__all__ = [
    "CheckFinding",
    "CheckRule",
    "Fix",
    "WitnessStep",
    "all_check_rules",
    "check_rule_for_code",
    "register_check_rule",
]


@dataclass(frozen=True)
class WitnessStep:
    """One step of a finding's witness path (a SARIF thread-flow
    location).

    ``path`` is repo-relative — interprocedural witnesses cross module
    boundaries, so every step carries its own file.  ``line``/``column``
    use the same 1-based/0-based convention as the finding itself.
    """

    path: str
    line: int
    column: int
    note: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "note": self.note,
        }


@dataclass(frozen=True)
class Fix:
    """A mechanically safe source rewrite attached to a finding.

    Spans are 0-based ``(line, column)`` pairs in the coordinates of the
    module's source text; ``replacement`` substitutes the spanned text
    verbatim.  Only rewrites that preserve behaviour or strictly narrow
    it (wrapping an iterable in ``sorted()``, turning a bare ``except``
    into ``except Exception``) may be emitted — ``repro check --fix``
    applies them without review.
    """

    start: tuple
    end: tuple
    replacement: str


@dataclass(frozen=True)
class CheckFinding:
    """One source-level finding: which rule fired, where, and why."""

    code: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str
    remediation: str = ""
    fix: Optional[Fix] = field(default=None, compare=False)
    flow: Tuple[WitnessStep, ...] = ()

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.severity.value}: {self.code} {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (stable key order)."""
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "remediation": self.remediation,
            "fixable": self.fix is not None,
        }
        if self.flow:
            payload["flow"] = [step.to_dict() for step in self.flow]
        return payload


class CheckRule:
    """Base class for one source-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`,
    which receives one parsed module at a time plus the whole-project
    context (for rules that need cross-module facts such as class
    definitions or documentation files).  The docstring documents the
    rule exactly as in the diagnostics engine: rationale first, then an
    optional ``Remediation:`` paragraph.

    ``scope`` decides how the incremental engine treats the rule.  A
    ``"module"`` rule sees one file at a time and its findings are
    cached per file (re-run only when that file's content hash
    changes).  A ``"project"`` rule implements :meth:`check_facts`
    against the distilled :class:`~repro.check.graph.ModuleFacts` and
    the :class:`~repro.check.graph.ProjectGraph` instead of the raw
    AST, so it runs on every invocation — over cached facts for
    unchanged files — and still sees the whole program.
    """

    code: str = ""
    title: str = ""
    default_severity: Severity = Severity.ERROR
    scope: str = "module"
    #: Short annotated snippet rendered by ``repro check --explain``;
    #: flow rules use it to show a concrete witness end-to-end.
    worked_example: str = ""

    def __init__(self, severity: Optional[Severity] = None) -> None:
        self.severity = severity or self.default_severity

    def check(
        self,
        module: "ModuleSource",
        project: "ProjectContext",
    ) -> Iterator[CheckFinding]:
        """Yield findings for *module* (empty iterator when clean).

        Project-scope rules route through :meth:`check_facts` so the
        in-memory and incremental engines report identically.
        """
        if self.scope == "project":
            return self.check_facts(module.facts, project.graph())
        raise NotImplementedError

    def check_facts(
        self,
        facts: "ModuleFacts",
        graph: "ProjectGraph",
    ) -> Iterator[CheckFinding]:
        """Yield findings for one module's facts (project-scope rules)."""
        raise NotImplementedError

    def finding(
        self,
        module: "ModuleSource",
        node: object,
        message: str,
        fix: Optional[Fix] = None,
    ) -> CheckFinding:
        """Build one finding at *node*'s position in *module*.

        *node* is any object with ``lineno``/``col_offset`` (an AST
        node) or a ``(line, column)`` tuple in 1-based/0-based ast
        coordinates.
        """
        if isinstance(node, tuple):
            line, column = node
        else:
            line = getattr(node, "lineno", 1)
            column = getattr(node, "col_offset", 0)
        return CheckFinding(
            code=self.code,
            severity=self.severity,
            path=module.rel,
            line=line,
            column=column,
            message=message,
            remediation=self.remediation(),
            fix=fix,
        )

    def finding_at(
        self,
        rel: str,
        line: int,
        column: int,
        message: str,
        fix: Optional[Fix] = None,
        flow: Tuple[WitnessStep, ...] = (),
    ) -> CheckFinding:
        """Build one finding from a bare position (facts-based rules).

        *flow* is the witness path for path-sensitive rules; it renders
        as indented steps in text mode and as ``codeFlows`` in SARIF.
        """
        return CheckFinding(
            code=self.code,
            severity=self.severity,
            path=rel,
            line=line,
            column=column,
            message=message,
            remediation=self.remediation(),
            fix=fix,
            flow=flow,
        )

    @classmethod
    def rationale(cls) -> str:
        """The docstring paragraphs before ``Remediation:``."""
        return split_docstring(cls)[0]

    @classmethod
    def remediation(cls) -> str:
        """The ``Remediation:`` paragraph of the docstring (or empty)."""
        return split_docstring(cls)[1]


_REGISTRY: Dict[str, Type[CheckRule]] = {}


def register_check_rule(rule_class: Type[CheckRule]) -> Type[CheckRule]:
    """Class decorator adding *rule_class* to the check registry.

    Codes must be unique and follow ``RC<3 digits>``; like diagnostics
    codes they are stable forever and retired codes are never reused.
    """
    code = rule_class.code
    if (
        not code
        or len(code) != 5
        or not code.startswith("RC")
        or not code[2:].isdigit()
    ):
        raise ValueError(f"malformed check rule code: {code!r}")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate check rule code: {code}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_check_rules() -> List[Type[CheckRule]]:
    """Every registered check rule class, ordered by code."""
    from . import rules as _rules  # noqa: F401  (registers on import)

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def check_rule_for_code(code: str) -> Optional[Type[CheckRule]]:
    """The rule class registered under *code*, or None."""
    from . import rules as _rules  # noqa: F401

    return _REGISTRY.get(code.strip().upper())
