"""Mypy strict-mode ratchet: per-module error counts may only shrink.

The project's mypy posture is gradual (``check_untyped_defs = false``
in ``pyproject.toml``).  Instead of flipping strict mode on in one
unreviewable mega-change, this ratchet pins the *current* per-module
``mypy --strict`` error counts in ``scripts/mypy_ratchet.json`` and
lets CI reject any module whose count grows.  Every touched module can
only get stricter; coverage monotonically ratchets toward full strict
mode.

The committed baseline is live: per-module ceilings were seeded
conservatively (scaled to module size) and only shrink from there —
any mypy-equipped environment can tighten them with::

    python -m repro.check.ratchet update

Locally, where mypy may be absent (install it via the ``dev`` extras:
``pip install -e .[dev]``), ``compare`` reports a soft skip; CI passes
``--require-mypy`` so a missing install fails the job instead of
silently waving the gate through.  The comparison logic itself is pure
text processing, unit-tested against canned mypy output, so the gate's
semantics are verified even where mypy is absent.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "STRICT_ARGS",
    "compare_counts",
    "load_baseline",
    "measure",
    "parse_mypy_output",
    "write_baseline",
]

#: Arguments defining the ratchet's notion of "strict".  Pinned in the
#: baseline so a flag change forces a deliberate re-measure.
STRICT_ARGS = ["--strict", "--no-error-summary", "--no-color-output"]

DEFAULT_BASELINE = Path("scripts/mypy_ratchet.json")
DEFAULT_TARGET = "src/repro"


def parse_mypy_output(text: str) -> Dict[str, int]:
    """Per-module error counts from raw ``mypy`` output.

    Lines look like ``src/repro/core/pipeline.py:12: error: ...``; the
    module key is the normalized posix path.  ``note:`` lines and the
    summary line are ignored.
    """
    counts: Dict[str, int] = {}
    for line in text.splitlines():
        parts = line.split(":", 3)
        if len(parts) < 3:
            continue
        path, _lineno, kind = parts[0], parts[1], parts[2]
        if not path.endswith(".py") or not _lineno.strip().isdigit():
            continue
        if kind.strip() != "error":
            continue
        key = path.replace("\\", "/")
        counts[key] = counts.get(key, 0) + 1
    return counts


def compare_counts(
    baseline: Dict[str, object], current: Dict[str, int]
) -> List[str]:
    """Violations of the ratchet (empty list == gate passes).

    A module may not exceed its baseline count; modules absent from the
    baseline (new files) must be strict-clean from the start.  Shrunk
    counts are reported by the CLI as an invitation to re-baseline but
    are never violations.
    """
    modules = baseline.get("modules", {})
    if not isinstance(modules, dict):
        raise ValueError("baseline 'modules' must be an object")
    problems: List[str] = []
    for path in sorted(current):
        allowed = modules.get(path, 0)
        observed = current[path]
        if observed > int(allowed):
            label = (
                f"baseline {allowed}" if path in modules else "new module"
            )
            problems.append(
                f"{path}: {observed} strict errors exceeds {label}"
            )
    return problems


def shrunk_modules(
    baseline: Dict[str, object], current: Dict[str, int]
) -> List[str]:
    """Modules whose strict error count dropped below the baseline."""
    modules = baseline.get("modules", {})
    if not isinstance(modules, dict):
        return []
    shrunk = []
    for path in sorted(modules):
        if current.get(path, 0) < int(modules[path]):
            shrunk.append(path)
    return shrunk


def load_baseline(path: Path) -> Dict[str, object]:
    """The committed baseline document."""
    with path.open(encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "modules" not in data:
        raise ValueError(f"malformed ratchet baseline: {path}")
    return data


def write_baseline(
    path: Path, counts: Dict[str, int], bootstrap: bool = False
) -> None:
    """Write a baseline document with stable formatting."""
    document = {
        "_comment": (
            "Per-module `mypy --strict` error counts. CI rejects growth; "
            "shrink freely and re-run `python -m repro.check.ratchet "
            "update` to bank the progress."
        ),
        "bootstrap": bootstrap,
        "strict_args": STRICT_ARGS,
        "modules": {key: counts[key] for key in sorted(counts)},
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def mypy_available() -> bool:
    """True when mypy is importable in this interpreter."""
    return importlib.util.find_spec("mypy") is not None


def measure(target: str = DEFAULT_TARGET) -> Optional[Dict[str, int]]:
    """Run ``mypy --strict`` over *target*; None when mypy is absent."""
    if not mypy_available():
        return None
    result = subprocess.run(
        [sys.executable, "-m", "mypy", *STRICT_ARGS, target],
        capture_output=True,
        text=True,
        check=False,
    )
    return parse_mypy_output(result.stdout)


def _cmd_compare(
    baseline_path: Path, target: str, require_mypy: bool = False
) -> int:
    baseline = load_baseline(baseline_path)
    current = measure(target)
    if current is None:
        if require_mypy:
            print("ratchet: mypy is required but not installed; "
                  "install the dev extras (pip install -e .[dev])")
            return 1
        print("ratchet: mypy not installed here; comparison skipped "
              "(CI runs it)")
        return 0
    problems = compare_counts(baseline, current)
    for module in shrunk_modules(baseline, current):
        print(f"ratchet: {module} shrank — run 'python -m "
              "repro.check.ratchet update' to bank it")
    if baseline.get("bootstrap"):
        total = sum(current.values())
        print(f"ratchet: baseline is bootstrap; measured {total} strict "
              f"errors in {len(current)} modules (reporting only)")
        return 0
    if problems:
        for problem in problems:
            print(f"ratchet: {problem}")
        return 1
    print(f"ratchet: ok ({len(current)} modules at or below baseline)")
    return 0


def _cmd_update(baseline_path: Path, target: str) -> int:
    current = measure(target)
    if current is None:
        print("ratchet: mypy not installed; cannot measure a baseline")
        return 1
    write_baseline(baseline_path, current, bootstrap=False)
    total = sum(current.values())
    print(f"ratchet: wrote {baseline_path} ({total} strict errors in "
          f"{len(current)} modules)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.check.ratchet``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.ratchet",
        description="Compare or update the mypy strictness baseline.",
    )
    parser.add_argument("command", choices=["compare", "update"])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON path (default: scripts/mypy_ratchet.json)",
    )
    parser.add_argument(
        "--target",
        default=DEFAULT_TARGET,
        help="tree to measure (default: src/repro)",
    )
    parser.add_argument(
        "--require-mypy",
        action="store_true",
        help="fail (instead of skipping) when mypy is not installed; "
        "set in CI so the gate cannot be waved through",
    )
    options = parser.parse_args(argv)
    if options.command == "compare":
        return _cmd_compare(
            options.baseline, options.target, options.require_mypy
        )
    return _cmd_update(options.baseline, options.target)


if __name__ == "__main__":
    sys.exit(main())
