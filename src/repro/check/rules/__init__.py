"""Built-in ``repro check`` rules (importing registers them)."""

from . import concurrency, determinism, hygiene, immutability  # noqa: F401
