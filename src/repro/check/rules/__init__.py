"""Built-in ``repro check`` rules (importing registers them)."""

from . import (  # noqa: F401
    architecture,
    concurrency,
    determinism,
    flows,
    hygiene,
    immutability,
)
