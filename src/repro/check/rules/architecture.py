"""Architecture invariants: RC109 (layering), RC112 (dead public API).

The package is layered on purpose: ``core`` is the engine room, the
``serve``/``cli`` layers are its consumers, and ``diagnostics`` audits
data without knowing who serves it.  Nothing in Python stops an import
from flowing the wrong way, and one convenience import quietly inverts
a dependency for good.  These rules pin the layer map down — and keep
the public API honest by flagging exports nothing reaches any more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, Optional

from ..model import CheckFinding, CheckRule, register_check_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..graph import ModuleFacts, ProjectGraph

__all__ = ["ArchitectureLayering", "NoDeadPublicApi", "layer_of"]

#: The package whose internal structure the layer map describes.
_PACKAGE = "repro"

#: Layer of the package ``__init__`` itself.
ROOT_LAYER = "<root>"

#: The declared layer map: which *other* layers each layer may import
#: at any depth (module level or inside a function).  Same-layer
#: imports and imports of the package root are always allowed.  The
#: load-bearing absences: ``core`` lists neither ``serve`` nor ``cli``,
#: ``diagnostics`` does not list ``serve``, and ``temporal`` lists
#: neither ``serve`` nor ``cli`` — the engine room, the auditors, and
#: the time-travel subsystem must never depend on their consumers.
LAYER_MAP: Dict[str, FrozenSet[str]] = {
    ROOT_LAYER: frozenset({"core", "net", "rir", "simulation"}),
    "abuse": frozenset(),
    "asdata": frozenset({"bgp"}),
    "bench": frozenset(
        {"cli", "core", "reporting", "simulation", "temporal"}
    ),
    "bgp": frozenset({"core", "net"}),
    "brokers": frozenset({"rir", "whois"}),
    "check": frozenset({"core", "diagnostics"}),
    "cli": frozenset(
        {
            "bench",
            "check",
            "core",
            "diagnostics",
            "net",
            "reporting",
            "serve",
            "simulation",
        }
    ),
    "core": frozenset(
        {
            "abuse",
            "asdata",
            "bgp",
            "brokers",
            "geo",
            "net",
            "rir",
            "rpki",
            "whois",
        }
    ),
    "diagnostics": frozenset(
        {
            "abuse",
            "asdata",
            "bgp",
            "core",
            "net",
            "rir",
            "rpki",
            "simulation",
            "whois",
        }
    ),
    "geo": frozenset({"net"}),
    "net": frozenset(),
    "reporting": frozenset(
        {"core", "diagnostics", "rir", "rpki", "simulation"}
    ),
    "rir": frozenset(),
    "rpki": frozenset({"net"}),
    "serve": frozenset({"bench", "core", "net", "temporal"}),
    "simulation": frozenset(
        {
            "abuse",
            "asdata",
            "bgp",
            "brokers",
            "geo",
            "net",
            "rir",
            "rpki",
            "whois",
        }
    ),
    "temporal": frozenset({"bgp", "core", "net", "rpki"}),
    "whois": frozenset({"diagnostics", "net", "rir"}),
}


def layer_of(dotted: str) -> Optional[str]:
    """The layer a dotted module name belongs to (None outside the
    package)."""
    if dotted == _PACKAGE:
        return ROOT_LAYER
    prefix = _PACKAGE + "."
    if not dotted.startswith(prefix):
        return None
    return dotted[len(prefix):].split(".")[0]


@register_check_rule
class ArchitectureLayering(CheckRule):
    """Imports must follow the declared layer map, with no import
    cycles.

    Layer boundaries are the architecture: ``core`` (the engine room)
    must never import ``serve`` or ``cli``, and ``diagnostics`` must
    never import ``serve`` — those edges would make the engine depend
    on its consumers and any serve-layer change ripple into the
    reproducibility core.  The full map lives in ``LAYER_MAP`` (and is
    rendered in ``docs/STATIC_ANALYSIS.md``); an edge it does not
    declare is a design decision, not a convenience, and starts here.
    Deferred (function-level) imports still count for layering — the
    dependency exists either way — but only module-level, non-
    ``TYPE_CHECKING`` imports can deadlock at import time, so only
    those participate in cycle detection; a deferred import is the
    sanctioned cycle-breaker.

    Remediation: Invert the dependency (move the shared piece down a
    layer, or pass the object in from a layer allowed to know both).
    If the edge is genuinely part of the architecture, add it to
    ``LAYER_MAP`` in the same change, with review.
    """

    code = "RC109"
    title = "imports respect the declared layer map; no import cycles"
    scope = "project"

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        source_layer = layer_of(facts.module) if facts.module else None
        if source_layer is None:
            return
        allowed = LAYER_MAP.get(source_layer)
        for imp in facts.imports:
            if imp.type_checking:
                continue
            target_layer = layer_of(imp.source)
            if target_layer is None or target_layer in (
                source_layer,
                ROOT_LAYER,
            ):
                continue
            if allowed is None:
                yield self.finding_at(
                    facts.rel,
                    imp.lineno,
                    imp.col,
                    f"layer {source_layer!r} is not in the declared layer "
                    f"map but imports {imp.source}",
                )
            elif target_layer not in allowed:
                yield self.finding_at(
                    facts.rel,
                    imp.lineno,
                    imp.col,
                    f"layer {source_layer!r} may not import layer "
                    f"{target_layer!r} ({imp.source})",
                )
        for cycle in graph.import_cycles():
            if facts.module == cycle[0]:
                yield self.finding_at(
                    facts.rel,
                    1,
                    0,
                    "import cycle: " + " -> ".join(cycle + [cycle[0]]),
                )


@register_check_rule
class NoDeadPublicApi(CheckRule):
    """Every locally defined ``__all__`` export is reachable, and every
    rule class is registered.

    ``__all__`` is a promise: this name is public API, someone depends
    on it.  When nothing in the package, the tests, the benchmarks, or
    the docs references an export any more, the promise is stale —
    readers extend dead code and reviewers keep it compatible for
    nobody.  The registry-based rule classes have the inverse failure:
    a ``CheckRule``/``Rule`` subclass that was never decorated with its
    ``register_*`` decorator looks finished, ships fixtures, and
    silently never runs.  Detection is conservative: a
    name counts as used on *any* appearance outside its defining module
    (identifier or reference-corpus text), and registered classes are
    always alive because their registry reaches them.

    Remediation: Delete the export (and the definition, if nothing
    internal uses it) or reference it from the code, tests, or docs
    that were supposed to.  For an unregistered rule class, add the
    missing ``@register_*`` decorator — or delete the class.
    """

    code = "RC112"
    title = "no dead __all__ exports or unregistered rule classes"
    scope = "project"

    #: Base-class names whose subclasses must carry a register
    #: decorator.  Underscore-prefixed subclasses are abstract
    #: intermediates (``_WhoisRule``) and exempt.
    RULE_BASES = frozenset({"CheckRule", "Rule"})

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        registered = {
            cls.name for cls in facts.classes if cls.registered
        }
        for export in facts.exports:
            if not export.local:
                continue  # re-exports answer for their defining module
            name = export.name
            if name.startswith("__") and name.endswith("__"):
                continue
            if name in registered:
                continue  # reached through its registry
            if graph.name_used_outside(facts.rel, name):
                continue
            yield self.finding_at(
                facts.rel,
                export.lineno,
                export.col,
                f"__all__ export {name!r} is never used outside "
                f"{facts.rel}",
            )
        for cls in facts.classes:
            if cls.registered or not self.RULE_BASES & set(cls.bases):
                continue
            if cls.name.startswith("_"):
                continue  # abstract intermediate base, not a rule
            yield self.finding_at(
                facts.rel,
                cls.lineno,
                cls.col,
                f"rule class {cls.name} subclasses "
                f"{sorted(self.RULE_BASES & set(cls.bases))[0]} but is "
                "never registered",
            )
