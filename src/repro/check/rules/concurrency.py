"""Concurrency invariants: RC101 (sharding funnel), RC104/RC110 (async
purity).

The sharded execution layer was designed so that *all* process
parallelism flows through :func:`repro.core.sharding.run_sharded` —
that is the one place that knows about fork/spawn trade-offs,
``gc.freeze``, and worker-state initialization.  The serve loop is a
single asyncio event loop; one blocking call stalls every in-flight
request — whether it sits in the coroutine body (RC104) or one sync
helper away from it (RC110, via the project call graph).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..context import walk_scope
from ..graph import (
    BLOCKING_ATTR_CALLS,
    BLOCKING_METHODS,
    BLOCKING_NAME_CALLS,
    MODULE_QUALNAME,
)
from ..model import CheckFinding, CheckRule, register_check_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..context import ModuleSource, ProjectContext
    from ..graph import ModuleFacts, ProjectGraph

__all__ = [
    "MultiprocessingConfined",
    "NoBlockingInAsync",
    "NoBlockingReachableFromAsync",
]


@register_check_rule
class MultiprocessingConfined(CheckRule):
    """``multiprocessing`` / ``concurrent.futures`` may only be imported
    by ``repro.core.sharding`` — plus a narrow shared-memory carve-out
    for ``repro.core.shm``.

    Every pipeline parallelizes through ``run_sharded``, which owns the
    fork-vs-spawn decision, payload pickling, and ``gc.freeze``.  A
    second pool implementation would fork its own copy of those
    trade-offs and silently miss fixes applied to the funnel.  The
    zero-copy context (``repro.core.shm``) needs the segment
    primitives but must never grow a pool of its own, so it may import
    exactly ``multiprocessing.shared_memory`` and
    ``multiprocessing.resource_tracker`` — nothing else from either
    banned package.

    Remediation: Express the parallel step as a ``run_sharded`` call
    (payload + module-level runner function).  If ``run_sharded``
    genuinely cannot express it, extend ``repro.core.sharding`` instead
    of importing pool primitives elsewhere.
    """

    code = "RC101"
    title = "process pools confined to repro.core.sharding"

    ALLOWED_MODULES = frozenset({"repro.core.sharding"})
    #: Modules allowed the shared-memory primitives (and nothing else).
    SHARED_MEMORY_MODULES = frozenset({"repro.core.shm"})
    _SHM_ALLOWED_SOURCES = frozenset(
        {"multiprocessing.shared_memory", "multiprocessing.resource_tracker"}
    )
    _SHM_ALLOWED_NAMES = frozenset({"shared_memory", "resource_tracker"})
    _BANNED_PREFIXES = ("multiprocessing", "concurrent.futures")

    def _banned(self, name: str) -> bool:
        return any(
            name == prefix or name.startswith(prefix + ".")
            for prefix in self._BANNED_PREFIXES
        )

    def check(
        self, module: "ModuleSource", project: "ProjectContext"
    ) -> Iterator[CheckFinding]:
        if module.module in self.ALLOWED_MODULES:
            return
        shm_module = module.module in self.SHARED_MEMORY_MODULES
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if not self._banned(alias.name):
                        continue
                    if shm_module and alias.name in self._SHM_ALLOWED_SOURCES:
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"import of {alias.name} outside "
                        "repro.core.sharding; go through run_sharded()",
                    )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                source = node.module or ""
                if self._banned(source):
                    if shm_module:
                        yield from self._check_shm_from(module, node, source)
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"import from {source} outside "
                        "repro.core.sharding; go through run_sharded()",
                    )
                elif source == "concurrent":
                    for alias in node.names:
                        if alias.name == "futures":
                            yield self.finding(
                                module,
                                node,
                                "import of concurrent.futures outside "
                                "repro.core.sharding; go through "
                                "run_sharded()",
                            )

    def _check_shm_from(
        self, module: "ModuleSource", node: ast.ImportFrom, source: str
    ) -> Iterator[CheckFinding]:
        """The carve-out: shared-memory sources pass, pools still fire."""
        if source in self._SHM_ALLOWED_SOURCES:
            return
        if source == "multiprocessing":
            for alias in node.names:
                if alias.name not in self._SHM_ALLOWED_NAMES:
                    yield self.finding(
                        module,
                        node,
                        f"import of multiprocessing.{alias.name} in "
                        "repro.core.shm; only shared_memory and "
                        "resource_tracker are allowed there",
                    )
            return
        yield self.finding(
            module,
            node,
            f"import from {source} in repro.core.shm; only "
            "multiprocessing.shared_memory and "
            "multiprocessing.resource_tracker are allowed there",
        )


# The shared blocking-call vocabulary lives in ``repro.check.graph`` so
# RC104 (direct calls) and RC110 (call-graph reachability) can never
# disagree about what "blocking" means.
_BLOCKING_NAME_CALLS = BLOCKING_NAME_CALLS
_BLOCKING_ATTR_CALLS = BLOCKING_ATTR_CALLS
_BLOCKING_METHODS = BLOCKING_METHODS


@register_check_rule
class NoBlockingInAsync(CheckRule):
    """No blocking calls inside ``async def`` bodies.

    The serve layer runs a single asyncio event loop; a synchronous
    ``open``, ``time.sleep``, ``subprocess`` or ``socket`` call inside a
    coroutine stalls every concurrent request for its full duration.
    The snapshot reload path shows the sanctioned pattern: blocking I/O
    lives in a sync helper handed to ``asyncio.to_thread``.

    Remediation: Move the blocking work into a synchronous helper
    function and await it via ``asyncio.to_thread``, or use the asyncio
    native (``asyncio.sleep``, ``asyncio.open_connection``).
    """

    code = "RC104"
    title = "no blocking calls in async def bodies"

    def check(
        self, module: "ModuleSource", project: "ProjectContext"
    ) -> Iterator[CheckFinding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._scan_async_body(module, node)

    def _scan_async_body(
        self, module: "ModuleSource", func: ast.AsyncFunctionDef
    ) -> Iterator[CheckFinding]:
        for node in walk_scope(func):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if (
                isinstance(target, ast.Name)
                and target.id in _BLOCKING_NAME_CALLS
            ):
                yield self.finding(
                    module,
                    node,
                    f"blocking call {target.id}() inside async def "
                    f"{func.name}",
                )
            elif isinstance(target, ast.Attribute):
                receiver = target.value
                if isinstance(receiver, ast.Name):
                    pair = (receiver.id, target.attr)
                    if pair in _BLOCKING_ATTR_CALLS or receiver.id in (
                        "subprocess",
                        "socket",
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"blocking call {receiver.id}.{target.attr}() "
                            f"inside async def {func.name}",
                        )
                        continue
                if target.attr in _BLOCKING_METHODS:
                    yield self.finding(
                        module,
                        node,
                        f"blocking call .{target.attr}() inside async def "
                        f"{func.name}",
                    )


@register_check_rule
class NoBlockingReachableFromAsync(CheckRule):
    """No blocking calls reachable from ``async def`` bodies through
    synchronous helpers.

    RC104 catches ``time.sleep`` written directly inside a coroutine;
    it is blind the moment the sleep moves into a helper function the
    coroutine calls.  The event loop stalls exactly the same either
    way.  This rule walks the project call graph from every ``async
    def``, descending only through *synchronous* project functions
    (an ``await``-ed coroutine reports its own body), and flags the
    first call in the async body whose transitive closure contains a
    blocking site.  The sanctioned escape hatch is unchanged: a helper
    handed to ``asyncio.to_thread`` is never *called* by the
    coroutine, so no call edge exists and nothing fires.

    Remediation: Hand the blocking helper to ``asyncio.to_thread``
    (or an executor) instead of calling it from the coroutine, or
    replace the blocking primitive inside the helper with the asyncio
    native and make the helper a coroutine.
    """

    code = "RC110"
    title = "no blocking calls reachable from async def via sync helpers"
    scope = "project"

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        for func in facts.functions:
            if not func.is_async or func.qualname == MODULE_QUALNAME:
                continue
            name = func.qualname.rsplit(".", 1)[-1]
            for entry, callee, site, path in graph.blocking_reachable(
                facts.rel, func
            ):
                callee_rel, _callee_qual = callee
                via = " -> ".join(path[1:])
                yield self.finding_at(
                    facts.rel,
                    entry.lineno,
                    entry.col,
                    f"blocking call {site.label} reachable from async def "
                    f"{name} via {via} ({callee_rel}:{site.lineno})",
                )
