"""Determinism invariants: RC103.

The paper's methodology is a deterministic classification over fixed
April-2024 snapshots, and every fast engine in this repo claims
bit-identity with a frozen reference.  Iterating a ``set`` in an
order-sensitive position (building a list, joining strings, yielding
rows) silently depends on ``PYTHONHASHSEED``; unseeded module-level
``random`` calls and wall-clock reads (``time.time``,
``datetime.now``) leak run-to-run noise into recorded outputs.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Set, Tuple

from ..context import annotation_class_name, iter_scopes, walk_scope
from ..model import CheckFinding, CheckRule, Fix, register_check_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..context import ModuleSource, ProjectContext

__all__ = ["DeterministicIteration"]

_SET_OPS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_SET_ANNOTATIONS = frozenset({"Set", "FrozenSet", "set", "frozenset"})
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)

#: Order-sensitive sinks: calling one of these on an unsorted set bakes
#: the hash-seed order into the result.
_SINK_NAMES = frozenset({"list", "tuple", "enumerate"})

#: Module-level ``random`` functions that consume the unseeded global
#: generator (``random.Random(seed)`` instances are the sanctioned way).
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "triangular", "betavariate",
        "expovariate", "gammavariate", "lognormvariate", "normalvariate",
        "vonmisesvariate", "paretovariate", "weibullvariate",
        "getrandbits", "randbytes",
    }
)

_WALLCLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: Loop-body calls that make a ``for`` statement order-sensitive.
_ORDER_SENSITIVE_METHODS = frozenset(
    {"append", "extend", "write", "writelines"}
)


@register_check_rule
class DeterministicIteration(CheckRule):
    """Unsorted ``set`` iteration must not feed order-sensitive output,
    and recorded values must not come from unseeded randomness or the
    wall clock.

    Set iteration order depends on ``PYTHONHASHSEED``; a list, joined
    string, or yielded row built from a bare set differs between runs
    even on identical input, which breaks the bit-identity contract
    between fast engines and their frozen references.  Module-level
    ``random.*`` calls share one unseeded global generator, and
    ``time.time()`` / ``datetime.now()`` values recorded into outputs
    make goldens unreproducible.

    Remediation: Wrap the iterable in ``sorted(...)`` (``repro check
    --fix`` does this mechanically), or iterate into an
    order-insensitive aggregate (a set, a frozenset, a counter).  For
    randomness, thread a seeded ``random.Random(seed)`` instance; for
    timestamps, take them outside the recorded fields or inject them as
    explicit parameters.
    """

    code = "RC103"
    title = "no hash-order, unseeded-random, or wall-clock dependence"

    def check(
        self, module: "ModuleSource", project: "ProjectContext"
    ) -> Iterator[CheckFinding]:
        for scope in iter_scopes(module.tree):
            set_names = _set_typed_names(scope)
            yield from self._scan_scope(module, scope, set_names)
        for node in ast.walk(module.tree):
            yield from self._scan_nondeterministic_call(module, node)

    # -- set iteration ----------------------------------------------------

    def _scan_scope(
        self,
        module: "ModuleSource",
        scope: ast.AST,
        set_names: Set[str],
    ) -> Iterator[CheckFinding]:
        for node in walk_scope(scope):
            if isinstance(node, ast.For):
                if _is_set_expr(node.iter, set_names) and _loop_is_ordered(
                    node
                ):
                    yield self._set_finding(
                        module, node.iter, "for-loop with ordered output"
                    )
            elif isinstance(node, ast.ListComp):
                for gen in node.generators:
                    if _is_set_expr(gen.iter, set_names):
                        yield self._set_finding(
                            module, gen.iter, "list comprehension"
                        )
            elif isinstance(node, ast.Call):
                sink = _sink_label(node)
                if sink is None:
                    continue
                for arg in node.args[:1]:
                    for it in _iterables_of(arg):
                        if _is_set_expr(it, set_names):
                            yield self._set_finding(module, it, sink)

    def _set_finding(
        self, module: "ModuleSource", iterable: ast.expr, sink: str
    ) -> CheckFinding:
        fix = _wrap_sorted_fix(module, iterable)
        return self.finding(
            module,
            iterable,
            f"unsorted set iteration feeds {sink}; order depends on "
            "PYTHONHASHSEED",
            fix=fix,
        )

    # -- randomness / wall clock -----------------------------------------

    def _scan_nondeterministic_call(
        self, module: "ModuleSource", node: ast.AST
    ) -> Iterator[CheckFinding]:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = func.value
        base: Optional[str] = None
        if isinstance(receiver, ast.Name):
            base = receiver.id
        elif isinstance(receiver, ast.Attribute):
            base = receiver.attr  # datetime.datetime.now()
        if base is None:
            return
        if base == "random" and func.attr in _GLOBAL_RANDOM_FNS:
            yield self.finding(
                module,
                node,
                f"random.{func.attr}() uses the unseeded global generator; "
                "use a seeded random.Random(seed) instance",
            )
        elif (base, func.attr) in _WALLCLOCK_CALLS:
            yield self.finding(
                module,
                node,
                f"{base}.{func.attr}() reads the wall clock; recorded "
                "outputs must not depend on run time",
            )


def _set_typed_names(scope: ast.AST) -> Set[str]:
    """Local names that (heuristically) hold a set in *scope*.

    Two passes propagate through chains like ``a = set(); b = a``.  A
    name that is *also* assigned a clearly non-set value (``sorted``,
    ``list``, ``tuple`` call) is dropped — reassignments like
    ``x = sorted(x)`` launder the order dependence on purpose.
    """
    names: Set[str] = set()
    laundered: Set[str] = set()

    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        params = list(getattr(args, "posonlyargs", []))
        params += list(args.args) + list(args.kwonlyargs)
        for param in params:
            if annotation_class_name(param.annotation) in _SET_ANNOTATIONS:
                names.add(param.arg)

    for _ in range(2):
        for node in walk_scope(scope):
            targets = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets = [
                    t for t in node.targets if isinstance(t, ast.Name)
                ]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if (
                    annotation_class_name(node.annotation)
                    in _SET_ANNOTATIONS
                ):
                    names.add(node.target.id)
                continue
            if value is None or not targets:
                continue
            if _is_set_expr(value, names):
                names.update(t.id for t in targets)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("sorted", "list", "tuple")
            ):
                laundered.update(t.id for t in targets)
    return names - laundered


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    """True when *node* (heuristically) evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr == "keys" and not node.args:
                return True
            if func.attr in _SET_OPS:
                return _is_set_expr(func.value, set_names)
    return False


def _loop_is_ordered(loop: ast.For) -> bool:
    """True when the loop body's effect depends on iteration order."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _ORDER_SENSITIVE_METHODS
        ):
            return True
    return False


def _sink_label(call: ast.Call) -> Optional[str]:
    """Label when *call* is an order-sensitive sink, else None."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _SINK_NAMES:
        return f"{func.id}()"
    if isinstance(func, ast.Attribute) and func.attr == "join":
        return "str.join()"
    return None


def _iterables_of(arg: ast.expr) -> Tuple[ast.expr, ...]:
    """The iterable expressions a sink argument draws from."""
    if isinstance(arg, ast.GeneratorExp):
        return tuple(gen.iter for gen in arg.generators)
    return (arg,)


def _wrap_sorted_fix(
    module: "ModuleSource", node: ast.expr
) -> Optional[Fix]:
    """A ``sorted(...)`` wrap for *node*, when its span is known."""
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    segment = module.segment(node)
    if not segment:
        return None
    return Fix(
        start=(node.lineno, node.col_offset),
        end=(end_line, end_col),
        replacement=f"sorted({segment})",
    )
