"""Path-sensitive flow rules: RC113 (nondeterminism taint), RC114
(resource leaks), RC115 (unserialized shared-state mutation).

These three consume the per-function CFG summaries distilled by
:mod:`repro.check.dataflow` and the interprocedural closure
(:class:`~repro.check.dataflow.FlowResolver`) built over the project
call graph.  Unlike the RC103/RC104 pattern rules they reason about
*paths*: each finding carries a step-by-step witness — where the value
was born, how it moved, where it sank — rendered as indented steps in
text mode and as SARIF ``codeFlows`` on the PR diff.

All three inherit the call graph's conservatism: an interprocedural
step exists only when the callee resolves unambiguously, so the rules
under-report rather than guess, and a suppression is expected to be
rare and always justified.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Tuple

from ..dataflow import FlowStep
from ..graph import MODULE_QUALNAME
from ..model import (
    CheckFinding,
    CheckRule,
    WitnessStep,
    register_check_rule,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..dataflow import FlowResolver
    from ..graph import FunctionFact, ModuleFacts, ProjectGraph

__all__ = [
    "NoLeakedResources",
    "NoTaintedDigests",
    "NoUnserializedSharedWrites",
]

#: Modules whose instance state is served concurrently: the serve layer
#: plus the classes it swaps atomically.  RC115 confines itself to this
#: surface — a dataclass mutating itself in a batch pipeline is not a
#: concurrency bug.
_SERVE_PREFIX = "repro.serve"
_SERVE_CLASSES = frozenset({"SnapshotManager"})

#: Constructor-phase methods where unlocked writes are the norm: the
#: object is not yet published to other tasks.
_CONSTRUCTOR_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__set_name__"}
)


def _localize(
    rel: str, steps: Tuple[FlowStep, ...]
) -> Tuple[WitnessStep, ...]:
    """Module-local flow steps → module-qualified witness steps."""
    return tuple(
        WitnessStep(rel, step.lineno, step.col, step.note)
        for step in steps
    )


def _qualified(
    steps: Tuple[Tuple[str, FlowStep], ...]
) -> Tuple[WitnessStep, ...]:
    """Resolver-produced ``(rel, step)`` pairs → witness steps."""
    return tuple(
        WitnessStep(rel, step.lineno, step.col, step.note)
        for rel, step in steps
    )


@register_check_rule
class NoTaintedDigests(CheckRule):
    """No nondeterministic value may flow into a result digest, golden
    fixture, or bench trajectory.

    The repo's core guarantee is that every fast engine is bit-identical
    to the frozen reference, and the proof is a sha256 ``result_digest``
    plus committed ``BENCH_*`` trajectories.  A wall-clock read, an
    unseeded ``random`` draw, an ``os.environ`` lookup, an ``id()``, or
    an iteration over an unsorted ``set`` that reaches one of those
    sinks makes the digest compare two runs of the *clock* instead of
    two runs of the engine.  RC103 flags the patterns at their call
    sites; this rule tracks the *value*: through assignments, branches,
    f-strings, and — via per-function summaries propagated along the
    call graph — through helper returns and parameters, and reports the
    full path as a witness.  Laundering is recognized: ``sorted()``
    drops set-order dependence, ``len()``/``sum()`` are
    order-insensitive aggregates.

    Remediation: Derive the value deterministically (seeded RNG from
    the context, explicit parameters instead of ``os.environ``,
    ``sorted()`` before iterating a set) or keep it out of the digest:
    timestamps belong in the trajectory's *metadata* fields, never in
    the digested payload.
    """

    code = "RC113"
    title = "no nondeterministic value flows into a digest or trajectory"
    scope = "project"

    worked_example = """\
def bench(ctx):
    started = time.time()          # wall-clock value originates here
    label = f"run-{started}"       # assigned to label
    result_digest(ctx, label)      # reaches the reproducibility sink

The witness names each step; the fix is to digest only the payload
and record `started` in the trajectory metadata instead.  The
interprocedural variant is caught the same way:

def stamp():
    return time.time()             # summary: return value is tainted

def bench(ctx):
    result_digest(ctx, stamp())    # caller sees the tainted summary"""

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        resolver = graph.flow_resolver()
        for fn in facts.functions:
            yield from self._sink_findings(facts, graph, resolver, fn)
            yield from self._arg_findings(facts, graph, resolver, fn)

    def _sink_findings(
        self, facts, graph, resolver: "FlowResolver", fn: "FunctionFact"
    ) -> Iterator[CheckFinding]:
        """Sinks in this function fed by local taint or helper returns."""
        for sink in fn.flow.sinks:
            if sink.taint_steps:
                witness = _localize(facts.rel, sink.taint_steps)
                yield self.finding_at(
                    facts.rel,
                    sink.lineno,
                    sink.col,
                    f"nondeterministic value flows into {sink.label}: "
                    f"{sink.taint_steps[0].note}",
                    flow=witness,
                )
                continue  # one finding per sink occurrence
            for origin in sink.from_calls:
                callee = graph.resolve_call(
                    facts.rel, fn.owner_class, origin.base, origin.name
                )
                if callee is None:
                    continue
                upstream = resolver.return_taint(*callee)
                if upstream is None:
                    continue
                bridge = WitnessStep(
                    facts.rel,
                    origin.lineno,
                    origin.col,
                    f"tainted value returned by {origin.name}() "
                    f"({callee[0]}:{callee[1]})",
                )
                witness = (
                    _qualified(upstream)
                    + (bridge,)
                    + _localize(facts.rel, origin.steps)
                )
                yield self.finding_at(
                    facts.rel,
                    sink.lineno,
                    sink.col,
                    f"nondeterministic value flows into {sink.label} "
                    f"via {origin.name}() ({callee[0]}:{callee[1]})",
                    flow=witness,
                )
                break  # one finding per sink occurrence

    def _arg_findings(
        self, facts, graph, resolver: "FlowResolver", fn: "FunctionFact"
    ) -> Iterator[CheckFinding]:
        """Tainted arguments handed to helpers that sink them."""
        seen: Set[Tuple[int, int]] = set()
        for arg in fn.flow.tainted_args:
            site = (arg.lineno, arg.col)
            if site in seen:
                continue
            callee = graph.resolve_call(
                facts.rel, fn.owner_class, arg.base, arg.name
            )
            if callee is None:
                continue
            offset = 1 if arg.base in ("self", "cls") else 0
            param = graph.param_name(callee, arg.position, offset)
            if param is None:
                continue
            sunk = resolver.param_sink(callee[0], callee[1], param)
            if sunk is None:
                continue
            seen.add(site)
            label, downstream = sunk
            witness = _localize(facts.rel, arg.steps) + _qualified(
                downstream
            )
            yield self.finding_at(
                facts.rel,
                arg.lineno,
                arg.col,
                f"nondeterministic argument to {arg.name}() reaches "
                f"{label} inside {callee[1]} ({callee[0]})",
                flow=witness,
            )


@register_check_rule
class NoLeakedResources(CheckRule):
    """Every acquired OS resource reaches its release on every CFG
    path, including the exception edges.

    A ``SharedMemory`` segment that misses ``close()``/``unlink()``
    outlives the process as a ``/dev/shm`` file; a leaked file handle
    or socket exhausts descriptors exactly under the serve-layer load
    the roadmap is building toward.  The analysis walks the function's
    CFG from each acquisition (``SharedMemory(...)``, ``open(...)``,
    ``socket.socket(...)``, pool constructors) looking for a path to
    the function exit that crosses no release, no ownership transfer
    (``return``/store/``yield``), and no call the resource was handed
    to — the classic miss being the *raise* edge of a call between the
    acquire and the release.  Calls the resource is passed into are
    resolved against callee summaries: a helper that provably releases
    its parameter discharges the obligation; an unresolvable callee is
    generously assumed to release, so the rule under-reports.

    Remediation: Put the release in a ``finally`` (or use the object as
    a context manager) so the exception path releases too; if the
    callee is meant to own the resource, make it actually release its
    parameter on every path — the summary then discharges the caller.
    """

    code = "RC114"
    title = "acquired resources reach their release on every path"
    scope = "project"

    worked_example = """\
def load(path):
    fh = open(path)                # open() acquired into 'fh'
    data = parse(fh)               # if parse raises, control leaves
    fh.close()                     #   without releasing 'fh'
    return data

The witness shows the leaking path (the raise edge of `parse`).
The fix: `try: ... finally: fh.close()` or `with open(path) as fh`.
The interprocedural variant — `consume(fh)` where `consume` closes
its parameter on every path — is discharged by the callee summary."""

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        resolver = graph.flow_resolver()
        for fn in facts.functions:
            for resource in fn.flow.resources:
                if resource.leak_steps:
                    yield self.finding_at(
                        facts.rel,
                        resource.lineno,
                        resource.col,
                        f"{resource.label} assigned to "
                        f"{resource.var!r} leaks on a path to the "
                        f"function exit",
                        flow=_localize(facts.rel, resource.leak_steps),
                    )
                    continue
                yield from self._guard_findings(
                    facts, graph, resolver, fn, resource
                )

    def _guard_findings(
        self, facts, graph, resolver: "FlowResolver", fn, resource
    ) -> Iterator[CheckFinding]:
        """Paths covered only by a call that does not actually release."""
        for guard in resource.guards:
            callee = graph.resolve_call(
                facts.rel, fn.owner_class, guard.base, guard.name
            )
            if callee is None:
                continue  # unresolvable callee assumed to release
            offset = 1 if guard.base in ("self", "cls") else 0
            param = graph.param_name(callee, guard.position, offset)
            if param is None:
                continue
            if resolver.releases(callee[0], callee[1], param):
                continue
            yield self.finding_at(
                facts.rel,
                resource.lineno,
                resource.col,
                f"{resource.label} assigned to {resource.var!r} leaks: "
                f"the only covering call {guard.name}() "
                f"({callee[0]}:{callee[1]}) never releases its "
                f"{param!r} parameter",
                flow=_localize(facts.rel, guard.steps),
            )
            return  # one finding per acquisition


@register_check_rule
class NoUnserializedSharedWrites(CheckRule):
    """Serve-layer instance state reachable from more than one async
    handler is only written under the serialization lock.

    ``SnapshotManager`` and the serve-module objects are shared by
    every in-flight request: the whole hot-reload design hinges on
    writes going through the serialized apply path (``swap``/
    ``apply_updates`` under ``self._lock``) so a reader never observes
    a half-updated generation.  A bare ``self.attr = ...`` in a method
    reachable from two different ``async def`` handlers is a lost
    update waiting for load.  The rule walks the call graph from every
    async function; an unlocked attribute rebind in a method reachable
    from ≥2 distinct handlers is flagged with both handler chains as
    the witness.  Constructor-phase methods (``__init__`` and friends)
    are exempt — the object is not yet published.

    Remediation: Route the mutation through the serialized apply path,
    or take the object's lock (``with self._lock:``) around the write;
    if the attribute is genuinely task-local state, move it off the
    shared object.
    """

    code = "RC115"
    title = "serve-layer shared state is written only under the lock"
    scope = "project"

    worked_example = """\
class SnapshotManager:
    async def handle_reload(self):
        self._generation += 1      # unlocked write, and both
    async def handle_update(self):
        self._apply()
    def _apply(self):
        self._generation += 1      # reachable from 2 async handlers

The witness lists both handler chains and the write site.  The fix:
`with self._lock:` around the write — or better, funnel both
handlers through the one serialized apply method."""

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        resolver = graph.flow_resolver()
        for fn in facts.functions:
            if fn.qualname == MODULE_QUALNAME:
                continue
            method = fn.qualname.rsplit(".", 1)[-1]
            if method in _CONSTRUCTOR_METHODS:
                continue
            if not self._serve_surface(facts, fn):
                continue
            unlocked = [
                write for write in fn.flow.shared_writes
                if not write.locked
            ]
            if not unlocked:
                continue
            roots = resolver.async_roots(facts.rel, fn.qualname)
            if len(roots) < 2:
                continue
            chains: List[WitnessStep] = []
            for root_rel, root_qual, trail in roots[:2]:
                chains.extend(_qualified(trail))
            handlers = ", ".join(
                f"{qual} ({rel})" for rel, qual, _ in roots[:3]
            )
            for write in unlocked:
                witness = tuple(chains) + (
                    WitnessStep(
                        facts.rel,
                        write.lineno,
                        write.col,
                        f"writes {write.target} without holding the "
                        "serialization lock",
                    ),
                )
                yield self.finding_at(
                    facts.rel,
                    write.lineno,
                    write.col,
                    f"unserialized write to {write.target} in "
                    f"{fn.qualname} reachable from {len(roots)} async "
                    f"handlers ({handlers})",
                    flow=witness,
                )

    @staticmethod
    def _serve_surface(facts: "ModuleFacts", fn: "FunctionFact") -> bool:
        """True when *fn* mutates serve-layer (or snapshot) state."""
        if facts.module.startswith(_SERVE_PREFIX):
            return True
        return fn.owner_class in _SERVE_CLASSES
