"""Code-hygiene invariants: RC106, RC107, RC108.

RC106 keeps failures visible (no swallowed exceptions), RC107 keeps the
frozen reference implementations honest (they must not lean on the fast
engines they specify), and RC108 keeps the CLI surface documented.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Iterator, Optional, Set

from ..model import CheckFinding, CheckRule, Fix, register_check_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..context import ModuleSource, ProjectContext
    from ..graph import ModuleFacts, ProjectGraph

__all__ = ["NoSwallowedExceptions", "ReferencePurity", "CliFlagsDocumented"]


@register_check_rule
class NoSwallowedExceptions(CheckRule):
    """No bare ``except`` and no silently discarded exceptions.

    A bare ``except:`` catches ``SystemExit`` and ``KeyboardInterrupt``
    too, turning Ctrl-C into a hang; an ``except ...: pass`` erases the
    only evidence a failure ever happened.  In a measurement pipeline
    whose value *is* its data, a swallowed parse error is a silently
    wrong result.

    Remediation: Catch the narrowest exception that the code can
    actually handle and do something observable (log, count, degrade
    explicitly).  When ignoring truly is correct, suppress this rule
    inline with a justification — the comment is the log entry.
    """

    code = "RC106"
    title = "no bare except, no except-pass"

    def check(
        self, module: "ModuleSource", project: "ProjectContext"
    ) -> Iterator[CheckFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except catches SystemExit/KeyboardInterrupt; "
                    "catch Exception (or narrower)",
                    fix=_bare_except_fix(module, node),
                )
            if _body_is_silent(node.body):
                yield self.finding(
                    module,
                    node,
                    "exception swallowed without a trace; handle it or "
                    "justify the suppression inline",
                )


def _body_is_silent(body) -> bool:
    """True when a handler body does nothing observable."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is ...
        ):
            continue
        return False
    return True


def _bare_except_fix(
    module: "ModuleSource", handler: ast.ExceptHandler
) -> Optional[Fix]:
    """Rewrite ``except:`` into ``except Exception:``."""
    line_idx = handler.lineno - 1
    if line_idx >= len(module.lines):
        return None
    line = module.lines[line_idx]
    match = re.compile(r"except\s*:").match(line, handler.col_offset)
    if match is None:
        return None
    return Fix(
        start=(handler.lineno, match.start()),
        end=(handler.lineno, match.end()),
        replacement="except Exception:",
    )


#: Modules that embody the fast engines; frozen references must not
#: touch anything imported from them.
_FAST_ENGINE_MODULES = frozenset(
    {"repro.core.sharding", "repro.core.context"}
)

#: Function names that are frozen executable specifications.
_REFERENCE_FUNCTIONS = frozenset(
    {"run_reference", "profile_reference", "compare_epochs"}
)


@register_check_rule
class ReferencePurity(CheckRule):
    """Frozen reference implementations must not use fast-engine code.

    ``run_reference`` / ``profile_reference`` / ``compare_epochs`` are
    the executable specifications that the sharded and context-backed
    engines are proven bit-identical against.  The moment a reference
    calls into ``repro.core.sharding`` or ``repro.core.context``, the
    proof becomes circular: a bug in the shared code changes both sides
    of the comparison and the equivalence tests keep passing.

    Remediation: Keep references self-contained (allocation tree +
    per-leaf classification only).  If logic must be shared, move it to
    a module neither engine owns and have both import it.
    """

    code = "RC107"
    title = "frozen references stay independent of fast engines"

    def check(
        self, module: "ModuleSource", project: "ProjectContext"
    ) -> Iterator[CheckFinding]:
        tainted = _tainted_names(module)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.FunctionDef)
                and node.name in _REFERENCE_FUNCTIONS
            ):
                yield from self._scan_reference(module, node, tainted)

    def _scan_reference(
        self,
        module: "ModuleSource",
        func: ast.FunctionDef,
        tainted: Set[str],
    ) -> Iterator[CheckFinding]:
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id in tainted:
                yield self.finding(
                    module,
                    node,
                    f"reference {func.name}() uses {node.id!r}, imported "
                    "from a fast-engine module",
                )
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                source = _import_source(module, node)
                if source in _FAST_ENGINE_MODULES:
                    yield self.finding(
                        module,
                        node,
                        f"reference {func.name}() imports from {source}",
                    )


def _import_source(module: "ModuleSource", node: ast.AST) -> Optional[str]:
    """The dotted module an import statement draws from."""
    if isinstance(node, ast.Import):
        return node.names[0].name if node.names else None
    if isinstance(node, ast.ImportFrom):
        return _resolve_relative(module.module, node.level, node.module)
    return None


def _resolve_relative(
    current: str, level: int, target: Optional[str]
) -> Optional[str]:
    """Absolute dotted path of a (possibly relative) import source."""
    if level == 0:
        return target
    if not current:
        return None  # relative import outside the package tree
    parts = current.split(".")
    if level > len(parts):
        return None
    base = parts[: len(parts) - level]
    if target:
        base += target.split(".")
    return ".".join(base) if base else None


def _tainted_names(module: "ModuleSource") -> Set[str]:
    """Local names bound (at module level) to fast-engine code."""
    tainted: Set[str] = set()
    for node in module.tree.body:
        if isinstance(node, ast.ImportFrom):
            source = _resolve_relative(
                module.module, node.level, node.module
            )
            if source is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                origin = f"{source}.{alias.name}"
                if (
                    source in _FAST_ENGINE_MODULES
                    or origin in _FAST_ENGINE_MODULES
                ):
                    tainted.add(local)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _FAST_ENGINE_MODULES:
                    tainted.add(alias.asname or alias.name.split(".")[0])
    return tainted


@register_check_rule
class CliFlagsDocumented(CheckRule):
    """Every CLI flag defined in a ``cli.py`` must appear in ``docs/``.

    The CLI is the operational surface of the system; a flag that only
    exists in ``add_argument`` calls is invisible to operators reading
    the docs and silently drifts from them.  The diagnostics engine
    already holds docs to this standard (``docs/DIAGNOSTICS.md`` is
    generated and sync-checked in CI); flags deserve the same.

    Remediation: Document the flag (with its subcommand) in
    ``docs/CLI.md`` — or whichever ``docs/*.md`` covers its subsystem —
    in the same change that introduces it.
    """

    code = "RC108"
    title = "CLI flags documented under docs/"
    scope = "project"

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        if not facts.rel.endswith("cli.py"):
            return
        docs = graph.docs_text
        seen: Set[str] = set()
        for flag, lineno, col in facts.cli_flags:
            if flag in seen:
                continue
            seen.add(flag)
            if flag in docs:
                continue
            yield self.finding_at(
                facts.rel,
                lineno,
                col,
                f"flag {flag} is not documented in any docs/*.md",
            )
