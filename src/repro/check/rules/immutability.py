"""Snapshot immutability invariants: RC102, RC105.

The whole scaling architecture hangs off frozen snapshots: one
``AnalysisContext`` (with its ``RibSnapshot``/``RoaSnapshot``) is built
per run and shared across worker processes, and the serve layer swaps
immutable ``LeaseIndex`` generations atomically.  Mutating one of
these after construction corrupts every consumer that assumed the
freeze; shipping a non-spawn-safe class through ``run_sharded`` blows
up only on spawn platforms, long after the code merged.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from ..context import infer_local_types, iter_scopes, walk_scope
from ..model import CheckFinding, CheckRule, register_check_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..context import ModuleSource, ProjectContext

__all__ = ["SnapshotImmutability", "SpawnSafePayloads"]

#: Frozen snapshot classes → the one module allowed to touch their
#: attributes (their defining module, i.e. ``__init__`` and friends).
FROZEN_CLASSES: Dict[str, str] = {
    "AnalysisContext": "repro.core.context",
    "RibSnapshot": "repro.core.context",
    "RoaSnapshot": "repro.core.context",
    "LeaseIndex": "repro.serve.index",
}


@register_check_rule
class SnapshotImmutability(CheckRule):
    """No attribute assignment on frozen snapshot instances outside
    their defining module.

    ``AnalysisContext``, ``RibSnapshot``, ``RoaSnapshot`` and
    ``LeaseIndex`` are built once and then shared — across worker
    processes (pickled at fork/spawn) and across concurrent requests
    (generation-swapped).  Any post-construction mutation desynchronizes
    copies silently: workers keep the old value, the serve cache keys
    stop matching, and digest equivalence with the frozen references
    breaks in ways no local test sees.

    Remediation: Build a *new* snapshot with the changed value (the
    constructors and ``from_*``/``build`` factories exist for this) or,
    if the field genuinely must vary per run, move it out of the
    snapshot into the call path.
    """

    code = "RC102"
    title = "frozen snapshots are never mutated outside their module"

    def check(
        self, module: "ModuleSource", project: "ProjectContext"
    ) -> Iterator[CheckFinding]:
        for scope in iter_scopes(module.tree):
            types = infer_local_types(scope, FROZEN_CLASSES)
            if not types:
                continue
            for node in walk_scope(scope):
                yield from self._scan_statement(module, node, types)

    def _scan_statement(
        self,
        module: "ModuleSource",
        node: ast.AST,
        types: Dict[str, str],
    ) -> Iterator[CheckFinding]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            hit = _frozen_attribute_target(target, types)
            if hit is None:
                continue
            name, cls = hit
            if module.module == FROZEN_CLASSES[cls]:
                continue  # the defining module may initialize itself
            verb = "del" if isinstance(node, ast.Delete) else "assignment"
            yield self.finding(
                module,
                target,
                f"{verb} on attribute of frozen {cls} instance "
                f"{name!r} outside {FROZEN_CLASSES[cls]}",
            )


def _frozen_attribute_target(
    target: ast.expr, types: Dict[str, str]
) -> Optional[tuple]:
    """``(name, class)`` when *target* writes through a frozen instance."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value  # x.attr[...] = ... mutates interior state
    if not isinstance(node, ast.Attribute):
        return None
    base = node.value
    if isinstance(base, ast.Name) and base.id in types:
        return base.id, types[base.id]
    return None


@register_check_rule
class SpawnSafePayloads(CheckRule):
    """Classes shipped through ``run_sharded`` payloads must be
    deliberately spawn-safe.

    ``run_sharded`` pickles its payload into every worker; on spawn
    platforms that is the *only* state a worker gets.  A class with no
    ``__getstate__``/``__reduce__``/``__slots__`` has never had its
    pickled form thought about — lazily built caches, open handles, or
    megabytes of derived indexes ride along silently (the
    ``AnalysisContext.__getstate__`` leaf-record drop exists precisely
    because of this).

    Remediation: Give the class an explicit ``__getstate__`` (drop
    derived/unpicklable state) or ``__slots__`` declaration, or — after
    reviewing its pickled size and contents — add it to this rule's
    ``ALLOWLIST``.
    """

    code = "RC105"
    title = "run_sharded payload classes define their pickled form"

    #: Class names vetted as safe to pickle without explicit protocol
    #: support (reviewed: small, immutable, no derived state).
    ALLOWLIST: Set[str] = set()

    def check(
        self, module: "ModuleSource", project: "ProjectContext"
    ) -> Iterator[CheckFinding]:
        for scope in iter_scopes(module.tree):
            types: Optional[Dict[str, str]] = None
            for node in walk_scope(scope):
                if not isinstance(node, ast.Call):
                    continue
                if not _is_run_sharded(node.func) or not node.args:
                    continue
                if types is None:
                    types = _all_local_classes(scope)
                payload = _resolve_payload(scope, node.args[0])
                for cls_name, at in _payload_classes(payload, types):
                    yield from self._audit_class(
                        module, project, cls_name, at
                    )

    def _audit_class(
        self,
        module: "ModuleSource",
        project: "ProjectContext",
        cls_name: str,
        node: ast.AST,
    ) -> Iterator[CheckFinding]:
        if cls_name in self.ALLOWLIST:
            return
        defs = project.class_defs(cls_name)
        for _def_module, class_def in defs:
            if _is_spawn_safe(class_def):
                return
        if not defs:
            return  # defined outside the checked tree; nothing to judge
        yield self.finding(
            module,
            node,
            f"{cls_name} rides a run_sharded payload but defines no "
            "__getstate__/__reduce__/__slots__",
        )


def _is_run_sharded(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "run_sharded"
    if isinstance(func, ast.Attribute):
        return func.attr == "run_sharded"
    return False


def _all_local_classes(scope: ast.AST) -> Dict[str, str]:
    """Local name → class name, for any inferable class (not a fixed set).

    Reuses the shared inference but keeps *every* class-like binding:
    the payload rule judges safety per class definition rather than
    against a known list.
    """

    class _Everything:
        def __contains__(self, item: object) -> bool:
            return isinstance(item, str)

    return infer_local_types(scope, _Everything())


def _resolve_payload(scope: ast.AST, payload: ast.expr) -> ast.expr:
    """Chase ``payload = (...)`` bindings so wrapped tuples are seen."""
    if not isinstance(payload, ast.Name):
        return payload
    for node in walk_scope(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id == payload.id
                    and isinstance(node.value, (ast.Tuple, ast.List))
                ):
                    return node.value
    return payload


def _payload_classes(payload: ast.expr, types: Dict[str, str]):
    """Yield ``(class_name, node)`` for classes visible in *payload*."""
    for node in ast.walk(payload):
        if isinstance(node, ast.Name) and node.id in types:
            yield types[node.id], node
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id[:1].isupper():
                yield func.id, node


def _is_spawn_safe(class_def: ast.ClassDef) -> bool:
    """True when the class declares its pickled form explicitly."""
    for stmt in class_def.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name in ("__getstate__", "__reduce__"):
                return True
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
    return False
