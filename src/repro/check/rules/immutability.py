"""Snapshot immutability invariants: RC102, RC105, RC111.

The whole scaling architecture hangs off frozen snapshots: one
``AnalysisContext`` (with its ``RibSnapshot``/``RoaSnapshot``) is built
per run and shared across worker processes, and the serve layer swaps
immutable ``LeaseIndex`` generations atomically.  Mutating one of
these after construction corrupts every consumer that assumed the
freeze — whether the assignment is written in place (RC102) or hidden
behind a helper the snapshot is passed into (RC111, via the project
call graph); shipping a non-spawn-safe class through ``run_sharded``
blows up only on spawn platforms, long after the code merged (RC105).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from ..context import infer_local_types, iter_scopes, walk_scope
from ..graph import FROZEN_CLASSES
from ..model import CheckFinding, CheckRule, register_check_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..context import ModuleSource, ProjectContext
    from ..graph import ModuleFacts, ProjectGraph

__all__ = [
    "SnapshotImmutability",
    "SpawnSafePayloads",
    "NoTransitiveSnapshotMutation",
]


@register_check_rule
class SnapshotImmutability(CheckRule):
    """No attribute assignment on frozen snapshot instances outside
    their defining module.

    ``AnalysisContext``, ``RibSnapshot``, ``RoaSnapshot`` and
    ``LeaseIndex`` are built once and then shared — across worker
    processes (pickled at fork/spawn) and across concurrent requests
    (generation-swapped).  Any post-construction mutation desynchronizes
    copies silently: workers keep the old value, the serve cache keys
    stop matching, and digest equivalence with the frozen references
    breaks in ways no local test sees.

    Remediation: Build a *new* snapshot with the changed value (the
    constructors and ``from_*``/``build`` factories exist for this) or,
    if the field genuinely must vary per run, move it out of the
    snapshot into the call path.
    """

    code = "RC102"
    title = "frozen snapshots are never mutated outside their module"

    def check(
        self, module: "ModuleSource", project: "ProjectContext"
    ) -> Iterator[CheckFinding]:
        for scope in iter_scopes(module.tree):
            types = infer_local_types(scope, FROZEN_CLASSES)
            if not types:
                continue
            for node in walk_scope(scope):
                yield from self._scan_statement(module, node, types)

    def _scan_statement(
        self,
        module: "ModuleSource",
        node: ast.AST,
        types: Dict[str, str],
    ) -> Iterator[CheckFinding]:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        for target in targets:
            hit = _frozen_attribute_target(target, types)
            if hit is None:
                continue
            name, cls = hit
            if module.module == FROZEN_CLASSES[cls]:
                continue  # the defining module may initialize itself
            verb = "del" if isinstance(node, ast.Delete) else "assignment"
            yield self.finding(
                module,
                target,
                f"{verb} on attribute of frozen {cls} instance "
                f"{name!r} outside {FROZEN_CLASSES[cls]}",
            )


def _frozen_attribute_target(
    target: ast.expr, types: Dict[str, str]
) -> Optional[tuple]:
    """``(name, class)`` when *target* writes through a frozen instance."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value  # x.attr[...] = ... mutates interior state
    if not isinstance(node, ast.Attribute):
        return None
    base = node.value
    if isinstance(base, ast.Name) and base.id in types:
        return base.id, types[base.id]
    return None


@register_check_rule
class SpawnSafePayloads(CheckRule):
    """Classes shipped through ``run_sharded`` payloads must be
    deliberately spawn-safe.

    ``run_sharded`` pickles its payload into every worker; on spawn
    platforms that is the *only* state a worker gets.  A class with no
    ``__getstate__``/``__reduce__``/``__slots__`` has never had its
    pickled form thought about — lazily built caches, open handles, or
    megabytes of derived indexes ride along silently (the
    ``AnalysisContext.__getstate__`` leaf-record drop exists precisely
    because of this).

    Remediation: Give the class an explicit ``__getstate__`` (drop
    derived/unpicklable state) or ``__slots__`` declaration, or — after
    reviewing its pickled size and contents — add it to this rule's
    ``ALLOWLIST``.
    """

    code = "RC105"
    title = "run_sharded payload classes define their pickled form"
    scope = "project"

    #: Class names vetted as safe to pickle without explicit protocol
    #: support (reviewed: small, immutable, no derived state).
    ALLOWLIST: Set[str] = set()

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        for cls_name, lineno, col in facts.payload_refs:
            if cls_name in self.ALLOWLIST:
                continue
            defs = graph.classes_named(cls_name)
            if not defs:
                continue  # defined outside the checked tree
            if any(cls.spawn_safe for _rel, cls in defs):
                continue
            yield self.finding_at(
                facts.rel,
                lineno,
                col,
                f"{cls_name} rides a run_sharded payload but defines no "
                "__getstate__/__reduce__/__slots__",
            )


@register_check_rule
class NoTransitiveSnapshotMutation(CheckRule):
    """No passing frozen snapshots into helpers that mutate their
    parameters.

    RC102 sees ``ctx.cache = {}`` only where the *variable* is known to
    hold a snapshot; rename the parameter, drop the annotation, and the
    same mutation one call away goes dark.  This rule closes the alias
    hole with the project call graph: every function whose parameter is
    attribute-assigned — directly, or by forwarding the parameter into
    another mutating function, computed to a fixpoint — is *mutating*,
    and passing a frozen snapshot instance into a mutating parameter
    from outside the snapshot's defining module is flagged at the call
    site, where the freeze contract is actually broken.

    Remediation: Same as RC102 — build a new snapshot instead of
    editing one through a helper.  Helpers that legitimately assemble a
    snapshot belong in its defining module, where the freeze has not
    happened yet.
    """

    code = "RC111"
    title = "frozen snapshots never flow into mutating parameters"
    scope = "project"

    def check_facts(
        self, facts: "ModuleFacts", graph: "ProjectGraph"
    ) -> Iterator[CheckFinding]:
        mutating = graph.mutating_params()
        for func in facts.functions:
            for passed in func.frozen_args:
                home = FROZEN_CLASSES.get(passed.cls)
                if home is None or facts.module == home:
                    continue
                callee = graph.resolve_call(
                    facts.rel, func.owner_class, passed.base, passed.name
                )
                if callee is None:
                    continue
                callee_facts = graph.facts.get(callee[0])
                if callee_facts is not None and callee_facts.module == home:
                    continue  # defining-module helpers may assemble
                offset = 1 if passed.base in ("self", "cls") else 0
                param = graph.param_name(callee, passed.position, offset)
                if param is None or param not in mutating.get(callee, set()):
                    continue
                yield self.finding_at(
                    facts.rel,
                    passed.lineno,
                    passed.col,
                    f"frozen {passed.cls} instance {passed.var!r} passed "
                    f"into mutating parameter {param!r} of "
                    f"{callee[1]}() ({callee[0]})",
                )
