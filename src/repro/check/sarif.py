"""SARIF 2.1.0 emitter for ``repro check`` reports.

SARIF (Static Analysis Results Interchange Format) is what code hosts
ingest for inline PR annotations — CI uploads the output of ``repro
check --format sarif`` via ``github/codeql-action/upload-sarif`` and
findings appear on the diff instead of in a log nobody opens.

The document is minimal but schema-valid: one run, the full rule
metadata (title, rationale, remediation) under ``tool.driver.rules``,
and one ``result`` per finding.  SARIF regions are 1-based; finding
columns are 0-based ast offsets, so they shift by one on the way out.

Findings that carry a witness path (the RC113–RC115 flow rules) also
emit it as ``codeFlows``/``threadFlows`` — one location per step, each
with its own file (interprocedural witnesses cross modules) and a
``message`` narrating the step — which code hosts render as a clickable
taint trace under the annotation.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..diagnostics.model import Severity
from .engine import INERT_SUPPRESSION_CODE, CheckReport
from .model import check_rule_for_code

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: SARIF result levels per severity (SARIF has no "info"; it has "note").
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_metadata(code: str) -> Dict[str, object]:
    """SARIF ``reportingDescriptor`` for one rule code."""
    rule = check_rule_for_code(code)
    if rule is not None:
        title = rule.title
        rationale = rule.rationale()
        remediation = rule.remediation()
        level = _LEVELS[rule.default_severity]
    elif code == INERT_SUPPRESSION_CODE:
        title = "suppression comment has no justification"
        rationale = (
            "A '# repro-check: ignore[...]' comment without the "
            "mandatory '-- reason' tail suppresses nothing and is "
            "reported so it gets fixed rather than trusted."
        )
        remediation = (
            "Add '-- <reason>' to the suppression, or delete it."
        )
        level = "warning"
    else:  # pragma: no cover - unknown codes cannot normally appear
        title = code
        rationale = ""
        remediation = ""
        level = "warning"
    descriptor: Dict[str, object] = {
        "id": code,
        "name": code,
        "shortDescription": {"text": title},
        "defaultConfiguration": {"level": level},
    }
    if rationale:
        descriptor["fullDescription"] = {"text": rationale.split("\n\n")[0]}
    if remediation:
        descriptor["help"] = {"text": remediation}
    return descriptor


def render_sarif(report: CheckReport, version: Optional[str] = None) -> str:
    """The report as a SARIF 2.1.0 JSON document."""
    codes = sorted(
        set(report.rules_run)
        | {finding.code for finding in report.findings}
    )
    rule_index = {code: index for index, code in enumerate(codes)}
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        result: Dict[str, object] = {
            "ruleId": finding.code,
            "ruleIndex": rule_index[finding.code],
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column + 1,
                        },
                    }
                }
            ],
        }
        if finding.flow:
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": {
                                        "physicalLocation": {
                                            "artifactLocation": {
                                                "uri": step.path
                                            },
                                            "region": {
                                                "startLine": step.line,
                                                "startColumn": step.column
                                                + 1,
                                            },
                                        },
                                        "message": {"text": step.note},
                                    }
                                }
                                for step in finding.flow
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    driver: Dict[str, object] = {
        "name": "repro-check",
        "rules": [_rule_metadata(code) for code in codes],
    }
    if version:
        driver["version"] = version
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
