"""Command-line interface.

Subcommands mirror the paper's workflow::

    repro generate --out data/          # synthesize the §4 datasets
    repro infer --data data/            # §5 inference -> Table 1
    repro evaluate --data data/         # §5.3/§6.2 -> Table 2
    repro holders --data data/          # §6.3 -> Table 3
    repro abuse --data data/            # §6.3/§6.4 statistics
    repro timeline                      # Fig. 3 for the featured prefix
    repro lint --data data/             # diagnostics over every dataset
    repro run-all                       # everything, in memory
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .core import (
    BgpOriginHistory,
    RelatednessOracle,
    build_timeline,
    curate_reference,
    drop_correlation,
    evaluate_inference,
    hijacker_overlap,
    infer_leases,
    roa_abuse_analysis,
    top_holders,
)
from .reporting import (
    render_drop_stats,
    render_hijacker_stats,
    render_roa_stats,
    render_table1,
    render_table2,
    render_table3,
    render_timeline,
)
from .simulation import build_world, paper_world, small_world
from .simulation.io import DatasetBundle, load_datasets, write_world

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    handler = {
        "generate": _cmd_generate,
        "infer": _cmd_infer,
        "evaluate": _cmd_evaluate,
        "holders": _cmd_holders,
        "abuse": _cmd_abuse,
        "legacy": _cmd_legacy,
        "lint": _cmd_lint,
        "check": _cmd_check,
        "release": _cmd_release,
        "rpki": _cmd_rpki,
        "timeline": _cmd_timeline,
        "run-all": _cmd_run_all,
        "report": _cmd_report,
        "bench": _cmd_bench,
        "stream": _cmd_stream,
        "bench-temporal": _cmd_bench_temporal,
        "history": _cmd_history,
        "serve": _cmd_serve,
        "loadgen": _cmd_loadgen,
    }[args.command]
    return handler(args)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IP-leasing inference (IMC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")

    def add_scenario_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=20240401)
        p.add_argument(
            "--scale",
            type=int,
            default=50,
            help="1/scale of the April 2024 Internet (default 50)",
        )
        p.add_argument(
            "--small",
            action="store_true",
            help="use the tiny test scenario instead of the paper world",
        )
        p.add_argument(
            "--config",
            type=Path,
            default=None,
            help="load generation parameters from a scenario JSON file",
        )

    generate = sub.add_parser(
        "generate", help="synthesize the datasets to a directory"
    )
    add_scenario_options(generate)
    generate.add_argument("--out", type=Path, required=True)
    generate.add_argument(
        "--check",
        action="store_true",
        help="validate cross-dataset consistency before writing",
    )

    def add_worker_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="classify shards across this many processes (default 1)",
        )
        p.add_argument(
            "--shard-size",
            type=int,
            default=None,
            help="leaves per shard (default: pipeline default)",
        )

    for name, helptext in (
        ("infer", "run lease inference and print Table 1"),
        ("evaluate", "curate the reference dataset and print Table 2"),
        ("holders", "print Table 3 (top holders per RIR)"),
        ("abuse", "print the hijacker/DROP/ROA statistics"),
        ("legacy", "run the legacy-space lease inference extension"),
        ("rpki", "print RPKI validation profiles for leased vs other"),
    ):
        command = sub.add_parser(name, help=helptext)
        command.add_argument("--data", type=Path, required=True)
        if name == "infer":
            command.add_argument(
                "--strict",
                action="store_true",
                help="run diagnostics first and abort on errors",
            )
        if name in ("infer", "legacy", "rpki"):
            add_worker_options(command)
        if name in ("infer", "evaluate", "legacy", "rpki"):
            command.add_argument(
                "--json",
                action="store_true",
                help="print the table as JSON (golden-regression format)",
            )

    lint = sub.add_parser(
        "lint", help="run the diagnostics rules over every dataset"
    )
    lint.add_argument("--data", type=Path, required=True)
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    lint.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="exit non-zero at/above this severity (default error)",
    )
    lint.add_argument(
        "--suppress",
        action="append",
        default=[],
        metavar="CODE",
        help="disable a rule code (repeatable)",
    )
    lint.add_argument(
        "--severity",
        action="append",
        default=[],
        metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. W105=error (repeatable)",
    )

    check = sub.add_parser(
        "check",
        help="run the source-level invariant analyzer over the repo",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=[],
        metavar="PATH",
        help="files or directories to check (default: src and scripts)",
    )
    check.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="repository root (default: current directory)",
    )
    check.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default text)",
    )
    check.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="warning",
        help="exit non-zero at/above this severity (default warning)",
    )
    check.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="CODE",
        help="run only these rule codes (repeatable)",
    )
    check.add_argument(
        "--fix",
        action="store_true",
        help="apply the mechanically safe fixes and re-check",
    )
    check.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze changed files over N worker processes (default 1)",
    )
    check.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="PATH",
        help="incremental cache file "
        "(default <root>/.repro-check-cache.json)",
    )
    check.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the incremental cache",
    )
    check.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print a rule's model, rationale, and worked example, "
        "then exit without analyzing",
    )
    check.add_argument(
        "--stats",
        action="store_true",
        help="include cache hit counts in the JSON report "
        "(cold/warm runs stay byte-identical without it)",
    )

    timeline = sub.add_parser(
        "timeline", help="print the Fig. 3 lease timeline"
    )
    add_scenario_options(timeline)
    timeline.add_argument(
        "--data",
        type=Path,
        default=None,
        help="load the featured prefix from a generated dataset directory",
    )

    run_all = sub.add_parser(
        "run-all", help="generate in memory and print every table"
    )
    add_scenario_options(run_all)
    add_worker_options(run_all)
    run_all.add_argument(
        "--strict",
        action="store_true",
        help="run diagnostics first and abort on errors",
    )

    bench = sub.add_parser(
        "bench", help="time the inference engines and write BENCH_pipeline.json"
    )
    bench.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_pipeline.json"),
        help="output path (default BENCH_pipeline.json)",
    )
    bench.add_argument(
        "--sizes",
        default=None,
        help="comma-separated world sizes out of small, medium, large, "
        "xlarge, internet (default small,medium,large)",
    )
    bench.add_argument(
        "--workers",
        default=None,
        help="comma-separated parallel worker counts (default 2,4)",
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="repeats per mode, best wall time wins (default 2)",
    )
    bench.add_argument("--seed", type=int, default=20240401)
    bench.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small world, one parallel mode, one repeat",
    )
    bench.add_argument(
        "--no-extensions",
        action="store_true",
        help="skip the legacy/RPKI/longitudinal pipeline timings",
    )
    bench.add_argument(
        "--memory",
        action="store_true",
        help="record peak RSS and per-worker payload bytes per mode",
    )
    bench.add_argument(
        "--shm",
        action="store_true",
        help="also time a parallel-N-shm (fork + shared-memory RIB) mode",
    )
    bench.add_argument(
        "--spawn",
        action="store_true",
        help="also time spawn-N and spawn-N-shm modes (the payload-bytes "
        "comparison behind the shared-memory engine)",
    )
    bench.add_argument(
        "--xlarge-scale",
        type=int,
        default=None,
        help="downsampling divisor override for the xlarge/internet "
        "tiers (larger divisor, smaller world; default 5 / 2)",
    )

    stream = sub.add_parser(
        "stream",
        help="apply BGP update bursts incrementally and write "
        "BENCH_stream.json",
    )
    stream.add_argument(
        "--size",
        default="small",
        help="bench world size: small, medium, or large (default small)",
    )
    stream.add_argument(
        "--seed", type=int, default=20240401, help="world seed"
    )
    stream.add_argument(
        "--stream-seed",
        type=int,
        default=20240403,
        help="update-feed seed (default 20240403)",
    )
    stream.add_argument(
        "--bursts",
        type=int,
        default=3,
        help="update bursts to apply (default 3)",
    )
    stream.add_argument(
        "--burst-size",
        type=int,
        default=32,
        help="updates per burst (default 32)",
    )
    stream.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the bit-identical digest check against full rebuilds",
    )
    stream.add_argument(
        "--replay",
        type=Path,
        default=None,
        help="apply a committed replay-log fixture instead of generating",
    )
    stream.add_argument(
        "--record",
        type=Path,
        default=None,
        help="write the applied feed as a replay-log JSON fixture",
    )
    stream.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_stream.json"),
        help="trajectory file to append to (default BENCH_stream.json)",
    )

    def add_evolution_options(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--epochs",
            type=int,
            default=12,
            help="lease-churn epochs to evolve (default 12)",
        )
        p.add_argument(
            "--evolution-seed",
            type=int,
            default=20240404,
            help="lease-churn seed (default 20240404)",
        )

    bench_temporal = sub.add_parser(
        "bench-temporal",
        help="measure the delta-encoded temporal index and write "
        "BENCH_temporal.json",
    )
    bench_temporal.add_argument(
        "--size",
        default="small",
        help="bench world size: small, medium, or large (default small)",
    )
    bench_temporal.add_argument(
        "--seed", type=int, default=20240401, help="world seed"
    )
    add_evolution_options(bench_temporal)
    bench_temporal.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        help="epochs between retained full views (default 8)",
    )
    bench_temporal.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-epoch differential check against full rebuilds",
    )
    bench_temporal.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_temporal.json"),
        help="trajectory file to append to (default BENCH_temporal.json)",
    )

    history = sub.add_parser(
        "history",
        help="evolve lease churn and print a prefix's lease timeline",
    )
    add_scenario_options(history)
    add_evolution_options(history)
    history.add_argument(
        "--prefix",
        default=None,
        help="CIDR to report (default: summarize every churned prefix)",
    )
    history.add_argument(
        "--json",
        action="store_true",
        help="print the timeline payload as JSON",
    )

    serve = sub.add_parser(
        "serve",
        help="serve lease lookups over HTTP from an inference snapshot",
    )
    add_scenario_options(serve)
    add_worker_options(serve)
    serve.add_argument(
        "--data",
        type=Path,
        default=None,
        help="serve a generated dataset directory instead of a scenario",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8473)
    serve.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU response-cache capacity (default 1024)",
    )
    serve.add_argument(
        "--temporal-epochs",
        type=int,
        default=None,
        help="evolve this many lease-churn epochs and mount the "
        "time-travel endpoints (scenario worlds only)",
    )
    serve.add_argument(
        "--evolution-seed",
        type=int,
        default=20240404,
        help="lease-churn seed for --temporal-epochs (default 20240404)",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="self-host a snapshot and record serve throughput/latency",
    )
    loadgen.add_argument(
        "--data",
        type=Path,
        default=None,
        help="load-test a generated dataset directory (default: small world)",
    )
    loadgen.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="seconds of closed-loop load (default 5)",
    )
    loadgen.add_argument(
        "--requests",
        type=int,
        default=None,
        help="stop after this many requests instead of --duration",
    )
    loadgen.add_argument(
        "--seed",
        type=int,
        default=7,
        help="query-mix seed (also the in-memory world seed)",
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="closed-loop client connections (default 4)",
    )
    loadgen.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="LRU response-cache capacity (default 1024)",
    )
    loadgen.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_serve.json"),
        help="trajectory file to append to (default BENCH_serve.json)",
    )

    report = sub.add_parser(
        "report", help="write the full Markdown reproduction report"
    )
    add_scenario_options(report)
    report.add_argument("--out", type=Path, default=None)

    release = sub.add_parser(
        "release",
        help="export the Appendix C artifacts (inferred leases, labels)",
    )
    release.add_argument("--data", type=Path, required=True)
    release.add_argument("--out", type=Path, required=True)
    return parser


def _scenario(args: argparse.Namespace):
    if getattr(args, "config", None) is not None:
        from .simulation.scenario_io import load_scenario_file

        return load_scenario_file(args.config)
    if args.small:
        return small_world(seed=args.seed)
    return paper_world(seed=args.seed, scale=args.scale)


def _cmd_generate(args: argparse.Namespace) -> int:
    world = build_world(_scenario(args))
    if getattr(args, "check", False):
        from .simulation.validate import validate_world

        problems = validate_world(world)
        if problems:
            for problem in problems:
                print(f"inconsistency: {problem}")
            return 1
        print("world consistency check passed")
    write_world(world, args.out)
    print(f"wrote datasets for {len(world.ground_truth)} labelled blocks "
          f"to {args.out}")
    return 0


def _infer_bundle(bundle: DatasetBundle, args: Optional[argparse.Namespace] = None):
    return infer_leases(
        bundle.whois,
        bundle.routing_table,
        bundle.relationships,
        bundle.as2org,
        workers=getattr(args, "workers", 1) if args is not None else 1,
        shard_size=getattr(args, "shard_size", None) if args is not None else None,
    )


def _cmd_infer(args: argparse.Namespace) -> int:
    bundle = load_datasets(args.data)
    if getattr(args, "strict", False):
        from .diagnostics import DiagnosticContext

        if _strict_gate(DiagnosticContext.from_bundle(bundle)):
            return 1
    result = _infer_bundle(bundle, args)
    if getattr(args, "json", False):
        import json

        from .reporting import table1_json

        print(json.dumps(
            table1_json(result, bundle.routing_table.num_prefixes()),
            indent=2,
            sort_keys=True,
        ))
    else:
        print(render_table1(result, bundle.routing_table.num_prefixes()))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    bundle = load_datasets(args.data)
    result = _infer_bundle(bundle, args)
    reference = curate_reference(
        bundle.whois,
        bundle.broker_registry,
        bundle.routing_table,
        not_leased_exclusions=bundle.curation_exclusions,
        negative_isp_org_ids=bundle.negative_isp_org_ids,
    )
    report = evaluate_inference(result, reference)
    if getattr(args, "json", False):
        import json

        from .reporting import table2_json

        print(json.dumps(table2_json(report), indent=2, sort_keys=True))
    else:
        print(render_table2(report.matrix))
        print(
            f"\nFalse negatives: {report.fn_unused} inactive (Unused), "
            f"{report.fn_invisible} outside the tree (legacy)"
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import run_from_args

    return run_from_args(args)


def _cmd_stream(args: argparse.Namespace) -> int:
    from .bench import stream_from_args

    return stream_from_args(args)


def _cmd_bench_temporal(args: argparse.Namespace) -> int:
    from .bench import temporal_from_args

    return temporal_from_args(args)


def _cmd_history(args: argparse.Namespace) -> int:
    """Evolve lease churn over a world and print §6.5 timelines."""
    import json

    from .bench import build_temporal_product
    from .core import LeaseInferencePipeline
    from .net import AddressError, Prefix

    if args.epochs < 1:
        print(f"--epochs must be >= 1, got {args.epochs}")
        return 2
    query = None
    if args.prefix is not None:
        try:
            query = Prefix.parse(args.prefix)
        except AddressError:
            print(f"bad --prefix {args.prefix!r}")
            return 2
    world = build_world(_scenario(args))
    pipeline = LeaseInferencePipeline(
        world.whois, world.routing_table, world.relationships, world.as2org
    )
    result = pipeline.run()
    product, _evolution, _base, _reports = build_temporal_product(
        world,
        pipeline.context,
        result,
        epochs=args.epochs,
        evolution_seed=args.evolution_seed,
    )
    store = product.timelines
    if query is not None:
        payload = store.history_payload(query)
        if payload is None:
            print(f"no timeline tracked for {query} "
                  f"(churned prefixes: {len(store)})")
            return 1
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        print(f"lease timeline for {payload['prefix']} ({payload['rir']}):")
        periods = payload["periods"]
        assert isinstance(periods, list)
        for period in periods:
            end = period["end"] if period["end"] is not None else "..."
            asns = ",".join(f"AS{a}" for a in period["bgp_asns"]) or "-"
            print(f"  [{period['start']} .. {end}) "
                  f"{period['kind']:<5} bgp={asns}")
        lessees = payload["distinct_lessees"]
        assert isinstance(lessees, list)
        print(f"leases: {payload['lease_count']}, "
              f"AS0 gaps: {payload['as0_gaps']}, "
              f"lessees: {', '.join(f'AS{a}' for a in lessees)}")
        return 0
    if args.json:
        print(json.dumps(store.churn_payload(), indent=2, sort_keys=True))
        return 0
    print(f"{len(store)} churned prefixes over {product.epochs} epochs:")
    for prefix in store.prefixes():
        payload = store.history_payload(prefix)
        assert payload is not None
        print(f"  {str(prefix):<20} leases={payload['lease_count']} "
              f"as0_gaps={payload['as0_gaps']} rir={payload['rir']}")
    return 0


def _cmd_holders(args: argparse.Namespace) -> int:
    bundle = load_datasets(args.data)
    result = _infer_bundle(bundle)
    print(render_table3(top_holders(result, bundle.whois, 3)))
    return 0


def _cmd_abuse(args: argparse.Namespace) -> int:
    bundle = load_datasets(args.data)
    result = _infer_bundle(bundle)
    drop = bundle.drop_archive.union()
    print(render_hijacker_stats(
        hijacker_overlap(result, bundle.routing_table, bundle.hijackers)
    ))
    print()
    print(render_drop_stats(
        drop_correlation(result, bundle.routing_table, drop)
    ))
    print()
    leased = result.leased_prefixes()
    non_leased = set(bundle.routing_table.prefixes()) - leased
    print(render_roa_stats(
        roa_abuse_analysis(leased, bundle.roas, drop),
        roa_abuse_analysis(non_leased, bundle.roas, drop),
    ))
    return 0


def _cmd_legacy(args: argparse.Namespace) -> int:
    from .core import LegacyLeasePipeline

    bundle = load_datasets(args.data)
    oracle = RelatednessOracle(bundle.relationships, bundle.as2org)
    verdicts = LegacyLeasePipeline(
        bundle.whois, bundle.routing_table, oracle
    ).run(
        workers=getattr(args, "workers", 1),
        shard_size=getattr(args, "shard_size", None),
    )
    if getattr(args, "json", False):
        import json

        payload = [
            {
                "prefix": str(inference.prefix),
                "verdict": inference.verdict.value,
                "parent": (
                    str(inference.parent_prefix)
                    if inference.parent_prefix is not None
                    else None
                ),
                "origins": sorted(inference.origins),
            }
            for inference in verdicts
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    by_verdict: dict = {}
    for inference in verdicts:
        by_verdict.setdefault(inference.verdict.value, []).append(inference)
    print(f"{len(verdicts)} registered legacy blocks:")
    for verdict, group in sorted(by_verdict.items()):
        print(f"  {verdict:<10} {len(group)}")
    for inference in by_verdict.get("leased", []):
        origins = ",".join(f"AS{a}" for a in sorted(inference.origins))
        print(f"    leased: {inference.prefix} originated by {origins}")
    return 0


def _cmd_rpki(args: argparse.Namespace) -> int:
    from .core import LeaseInferencePipeline, RpkiValidationPipeline

    bundle = load_datasets(args.data)
    pipeline = LeaseInferencePipeline(
        bundle.whois,
        bundle.routing_table,
        bundle.relationships,
        bundle.as2org,
    )
    workers = getattr(args, "workers", 1)
    shard_size = getattr(args, "shard_size", None)
    result = pipeline.run(workers=workers, shard_size=shard_size)
    profiler = RpkiValidationPipeline(
        bundle.routing_table, bundle.roas, context=pipeline.context
    )
    leased = result.leased_prefixes()
    other = set(bundle.routing_table.prefixes()) - leased
    profiles = {
        label: profiler.profile(
            sorted(population), workers=workers, shard_size=shard_size
        )
        for label, population in (("leased", leased), ("non-leased", other))
    }
    if getattr(args, "json", False):
        import json

        payload = {
            label: {
                "valid": profile.valid,
                "invalid": profile.invalid,
                "not_found": profile.not_found,
                "total": profile.total,
            }
            for label, profile in profiles.items()
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for label in ("leased", "non-leased"):
        profile = profiles[label]
        print(
            f"{label:<11} announcements: {profile.total:>6}  "
            f"valid {profile.valid_share:6.1%}  "
            f"covered {profile.covered_share:6.1%}"
        )
    return 0


def _lease_index(args: argparse.Namespace, scenario=None):
    """Build a :class:`LeaseIndex` snapshot from ``--data`` or a scenario.

    Returns ``(index, label, pipeline, result, world)``; *world* is None
    when serving a ``--data`` directory (no scenario to evolve).
    """
    from .core import LeaseInferencePipeline
    from .serve import LeaseIndex

    world = None
    if getattr(args, "data", None) is not None:
        bundle = load_datasets(args.data)
        pipeline = LeaseInferencePipeline(
            bundle.whois,
            bundle.routing_table,
            bundle.relationships,
            bundle.as2org,
        )
        label = str(args.data)
    else:
        world = build_world(
            scenario if scenario is not None else _scenario(args)
        )
        pipeline = LeaseInferencePipeline(
            world.whois,
            world.routing_table,
            world.relationships,
            world.as2org,
        )
        label = "small world" if scenario is not None or getattr(
            args, "small", False
        ) else f"paper world (1/{args.scale})"
    result = pipeline.run(
        workers=getattr(args, "workers", 1),
        shard_size=getattr(args, "shard_size", None),
    )
    assert pipeline.context is not None
    index = LeaseIndex.build(pipeline.context, result)
    return index, label, pipeline, result, world


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import DEFAULT_CACHE_SIZE, LeaseQueryServer, SnapshotManager

    epochs = getattr(args, "temporal_epochs", None)
    if epochs is not None and epochs < 1:
        print(f"--temporal-epochs must be >= 1, got {epochs}")
        return 2
    if epochs is not None and getattr(args, "data", None) is not None:
        print("--temporal-epochs needs a scenario world (drop --data)")
        return 2
    index, label, pipeline, result, world = _lease_index(args)
    temporal = None
    if epochs is not None:
        from .bench import build_temporal_product

        assert world is not None
        temporal, _evolution, _base, _reports = build_temporal_product(
            world,
            pipeline.context,
            result,
            epochs=epochs,
            evolution_seed=args.evolution_seed,
        )
        print(
            f"mounted temporal history: {temporal.epochs} epochs over "
            f"{len(temporal.timelines)} churned prefixes"
        )
    manager = SnapshotManager(index)
    cache_size = (
        args.cache_size if args.cache_size is not None else DEFAULT_CACHE_SIZE
    )
    server = LeaseQueryServer(
        manager,
        host=args.host,
        port=args.port,
        cache_size=cache_size,
        temporal=temporal,
    )
    return _serve_forever(server, index, label)


def _serve_forever(server, index, label: str) -> int:
    """Run the query service in the foreground until interrupted."""
    import asyncio

    async def main() -> None:
        host, port = await server.start_async()
        print(
            f"serving {len(index):,} classified leaves ({label}) "
            f"on http://{host}:{port} "
            f"(generation {server.manager.generation})"
        )
        await server.run_async()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("shutting down")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .bench import append_trajectory
    from .reporting import render_serve_report
    from .serve import DEFAULT_CACHE_SIZE, run_loadgen, validate_serve_run
    from .serve.loadgen import SERVE_SCHEMA_VERSION

    scenario = None if args.data is not None else small_world(seed=args.seed)
    index, label, _pipeline, _result, _world = _lease_index(
        args, scenario=scenario
    )
    payload = run_loadgen(
        index,
        duration_s=args.duration,
        requests=args.requests,
        seed=args.seed,
        concurrency=args.concurrency,
        cache_size=(
            args.cache_size
            if args.cache_size is not None
            else DEFAULT_CACHE_SIZE
        ),
        world=label,
    )
    append_trajectory(payload, args.out, "BENCH_serve", SERVE_SCHEMA_VERSION)
    print(render_serve_report(payload))
    print(f"wrote {args.out}")
    problems = validate_serve_run(payload)
    if problems:
        for problem in problems:
            print(f"schema problem: {problem}")
        return 1
    if payload["totals"]["errors"]:
        print("FAIL: load run recorded unexpected response statuses")
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .diagnostics import (
        DiagnosticContext,
        DiagnosticsConfig,
        DiagnosticsEngine,
        Severity,
    )
    from .reporting import render_diagnostics_text

    overrides = {}
    for spec in args.severity:
        code, _, level = spec.partition("=")
        if not code or not level:
            print(f"bad --severity {spec!r}; expected CODE=LEVEL")
            return 2
        overrides[code] = level
    try:
        config = DiagnosticsConfig.build(
            suppress=args.suppress, severity_overrides=overrides
        )
    except ValueError as error:
        print(f"bad --severity value: {error}")
        return 2
    bundle = load_datasets(args.data)
    engine = DiagnosticsEngine(config=config)
    report = engine.run(DiagnosticContext.from_bundle(bundle))
    if args.format == "json":
        print(report.to_json())
    else:
        print(render_diagnostics_text(report))
    fail_on = (
        None if args.fail_on == "never" else Severity.parse(args.fail_on)
    )
    return report.exit_code(fail_on)


def _cmd_check(args: argparse.Namespace) -> int:
    from .check import CheckEngine
    from .check.cache import DEFAULT_CACHE_NAME
    from .check.fixes import apply_fixes
    from .check.sarif import render_sarif

    if args.explain:
        return _explain_check_rule(args.explain)
    root = args.root.resolve()
    targets = args.paths or None
    engine = CheckEngine(select=args.select or None)
    cache_path = (
        None
        if args.no_cache
        else (args.cache or root / DEFAULT_CACHE_NAME)
    )
    report = engine.analyze(
        root, targets, cache_path=cache_path, jobs=args.jobs
    )
    if args.fix:
        applied = apply_fixes(root, report.findings)
        for rel in sorted(applied):
            print(f"fixed {applied[rel]} finding(s) in {rel}")
        if applied:  # re-analyze so the report reflects the new text
            report = engine.analyze(
                root, targets, cache_path=cache_path, jobs=args.jobs
            )
    if args.format == "json":
        print(report.to_json(include_stats=args.stats))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(report.render_text())
    if report.analyzed is not None and args.format == "text":
        print(
            f"(analyzed {report.analyzed} changed files, "
            f"reused {report.reused} cached)",
            file=sys.stderr,
        )
    return report.exit_code(args.fail_on)


def _explain_check_rule(code: str) -> int:
    """``repro check --explain RC###``: the rule's model on stdout."""
    from .check.model import check_rule_for_code

    rule = check_rule_for_code(code)
    if rule is None:
        print(f"unknown check rule code: {code}", file=sys.stderr)
        return 1
    print(f"{rule.code}: {rule.title}")
    print(f"severity: {rule.default_severity.value}   scope: {rule.scope}")
    print()
    print(rule.rationale())
    remediation = rule.remediation()
    if remediation:
        print()
        print(f"Remediation: {remediation}")
    if rule.worked_example:
        print()
        print("Worked example:")
        print()
        for line in rule.worked_example.splitlines():
            print(f"    {line}" if line else "")
    return 0


def _strict_gate(context) -> int:
    """Run diagnostics before an inference command; 1 on any error."""
    from .diagnostics import DiagnosticsEngine
    from .reporting import render_diagnostics_summary

    report = DiagnosticsEngine().run(context)
    errors = report.errors()
    for finding in errors:
        print(finding)
    print(render_diagnostics_summary(report))
    if errors:
        print("aborting: dataset diagnostics reported errors "
              "(re-run without --strict to ignore)")
        return 1
    return 0


def _cmd_release(args: argparse.Namespace) -> int:
    from .core.release import (
        export_inferred_leases,
        export_reference_dataset,
    )

    bundle = load_datasets(args.data)
    result = _infer_bundle(bundle)
    reference = curate_reference(
        bundle.whois,
        bundle.broker_registry,
        bundle.routing_table,
        not_leased_exclusions=bundle.curation_exclusions,
        negative_isp_org_ids=bundle.negative_isp_org_ids,
    )
    args.out.mkdir(parents=True, exist_ok=True)
    leases_path = args.out / "inferred_leases.csv"
    labels_path = args.out / "evaluation_labels.csv"
    leases_path.write_text(export_inferred_leases(result))
    labels_path.write_text(export_reference_dataset(reference))
    print(
        f"wrote {leases_path} ({result.total_leased():,} leases) and "
        f"{labels_path} ({reference.total:,} labels)"
    )
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    if args.data is not None:
        bundle = load_datasets(args.data)
        if bundle.featured is None:
            print("no featured prefix in the dataset directory")
            return 1
        featured = bundle.featured
        bgp = featured.updates.origin_history(featured.prefix)
        timeline = build_timeline(
            featured.prefix, bgp, featured.rpki_archive
        )
    else:
        world = build_world(_scenario(args))
        featured = world.featured
        bgp = BgpOriginHistory()
        for timestamp, origins in featured.bgp_observations:
            bgp.add_observation(timestamp, origins)
        timeline = build_timeline(
            featured.prefix, bgp, featured.rpki_archive
        )
    print(render_timeline(timeline))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .reporting import build_full_report

    world = build_world(_scenario(args))
    result = infer_leases(
        world.whois, world.routing_table, world.relationships, world.as2org
    )
    text = build_full_report(world, result)
    if args.out is not None:
        args.out.write_text(text)
        print(f"wrote {args.out} ({len(text):,} characters)")
    else:
        print(text)
    return 0


def _cmd_run_all(args: argparse.Namespace) -> int:
    world = build_world(_scenario(args))
    if getattr(args, "strict", False):
        from .diagnostics import DiagnosticContext

        if _strict_gate(DiagnosticContext.from_world(world)):
            return 1
    result = infer_leases(
        world.whois,
        world.routing_table,
        world.relationships,
        world.as2org,
        workers=getattr(args, "workers", 1),
        shard_size=getattr(args, "shard_size", None),
    )
    print(render_table1(result, world.routing_table.num_prefixes()))
    print()
    reference = curate_reference(
        world.whois,
        world.broker_registry,
        world.routing_table,
        not_leased_exclusions=world.curation_exclusions,
        negative_isp_org_ids=world.negative_isp_org_ids,
    )
    report = evaluate_inference(result, reference)
    print(render_table2(report.matrix))
    print()
    print(render_table3(top_holders(result, world.whois, 3)))
    print()
    drop = world.drop
    print(render_hijacker_stats(
        hijacker_overlap(result, world.routing_table, world.hijackers)
    ))
    print()
    print(render_drop_stats(
        drop_correlation(result, world.routing_table, drop)
    ))
    print()
    leased = result.leased_prefixes()
    non_leased = set(world.routing_table.prefixes()) - leased
    print(render_roa_stats(
        roa_abuse_analysis(leased, world.roas, drop),
        roa_abuse_analysis(non_leased, world.roas, drop),
    ))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
