"""The paper's contribution: IP lease inference and its analyses.

Public surface:

* :class:`LeaseInferencePipeline` / :func:`infer_leases` — §5 end to end.
* :class:`AnalysisContext` — the shared, spawn-safe substrate snapshot
  every fast engine (base, legacy, RPKI, longitudinal) draws from.
* :class:`AllocationTree` — §5.1 address allocation trees.
* :class:`Category` / :func:`classify_leaf` — §5.2 leaf classification.
* :func:`curate_reference` / :func:`evaluate_inference` — §5.3/§6.2.
* :func:`maintainer_baseline` — the Prehn et al. comparison of §6.1.
* :func:`top_holders` et al. / :func:`hijacker_overlap` — §6.3.
* :func:`drop_correlation` / :func:`roa_abuse_analysis` — §6.4.
* :func:`build_timeline` — Fig. 3 / §6.5.
"""

from .abuse import (
    DropCorrelation,
    RoaAbuseStats,
    drop_correlation,
    roa_abuse_analysis,
)
from .allocation_tree import (
    DEFAULT_MAX_LEAF_LENGTH,
    AllocationScan,
    AllocationTree,
    TreeLeaf,
)
from .baseline import maintainer_baseline
from .classify import Category, MemoizedClassifier, classify_leaf
from .ecosystem import (
    HijackerOverlap,
    hijacker_overlap,
    resolve_maintainer_names,
    top_facilitators,
    top_holders,
    top_originators,
)
from .evaluation import EvaluationReport, evaluate_inference
from .geo import GeoConsistency, geo_consistency
from .holders import HolderProfile, holder_profiles
from .hijack_confusion import (
    AlarmAttribution,
    AlarmReport,
    OriginChange,
    attribute_alarms,
    origin_changes,
)
from .context import AnalysisContext, RibSnapshot, RoaSnapshot
from .incremental import (
    BurstReport,
    IncrementalEngine,
    MutableRibOverlay,
    clone_routing_table,
    replay_into_table,
    result_digest,
)
from .legacy import (
    LegacyInference,
    LegacyLeasePipeline,
    LegacyVerdict,
    infer_legacy_leases,
)
from .longitudinal import (
    LeaseChurn,
    RegionChurn,
    compare_epochs,
    compare_epochs_fast,
)
from .metrics import ConfusionMatrix
from .rpki_analysis import (
    RpkiValidationPipeline,
    ValidationProfile,
    validation_profile,
)
from .stats import BootstrapCI, risk_ratio_ci, share_ci
from .pipeline import LeaseInferencePipeline, infer_leases
from .reference import ReferenceDataset, curate_reference
from .relatedness import RelatednessOracle
from .results import InferenceResult, LeafInference, RegionalTally
from .sharding import (
    DEFAULT_SHARD_SIZE,
    CacheStats,
    Shard,
    ShardClassifier,
    effective_workers,
    fork_available,
    plan_shards,
    run_sharded,
)
from .timeline import (
    BgpOriginHistory,
    PeriodKind,
    PrefixTimeline,
    TimelinePeriod,
    build_timeline,
)

__all__ = [
    "AlarmAttribution",
    "AlarmReport",
    "AllocationScan",
    "AllocationTree",
    "AnalysisContext",
    "BgpOriginHistory",
    "BurstReport",
    "IncrementalEngine",
    "MutableRibOverlay",
    "clone_routing_table",
    "replay_into_table",
    "result_digest",
    "CacheStats",
    "DEFAULT_SHARD_SIZE",
    "MemoizedClassifier",
    "RibSnapshot",
    "RoaSnapshot",
    "Shard",
    "ShardClassifier",
    "effective_workers",
    "fork_available",
    "plan_shards",
    "run_sharded",
    "BootstrapCI",
    "GeoConsistency",
    "HolderProfile",
    "OriginChange",
    "Category",
    "ConfusionMatrix",
    "DEFAULT_MAX_LEAF_LENGTH",
    "DropCorrelation",
    "EvaluationReport",
    "HijackerOverlap",
    "InferenceResult",
    "LeafInference",
    "LeaseChurn",
    "LeaseInferencePipeline",
    "LegacyInference",
    "LegacyLeasePipeline",
    "LegacyVerdict",
    "RegionChurn",
    "RpkiValidationPipeline",
    "ValidationProfile",
    "PeriodKind",
    "PrefixTimeline",
    "ReferenceDataset",
    "RegionalTally",
    "RelatednessOracle",
    "RoaAbuseStats",
    "TimelinePeriod",
    "TreeLeaf",
    "attribute_alarms",
    "build_timeline",
    "classify_leaf",
    "compare_epochs",
    "compare_epochs_fast",
    "origin_changes",
    "resolve_maintainer_names",
    "curate_reference",
    "geo_consistency",
    "holder_profiles",
    "infer_legacy_leases",
    "risk_ratio_ci",
    "share_ci",
    "validation_profile",
    "drop_correlation",
    "evaluate_inference",
    "hijacker_overlap",
    "infer_leases",
    "maintainer_baseline",
    "roa_abuse_analysis",
    "top_facilitators",
    "top_holders",
    "top_originators",
]
