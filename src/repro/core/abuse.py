"""Abuse correlation (§6.4): DROP origination and ROA blocklist analysis."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from ..abuse.dropdb import AsnDropList
from ..bgp.rib import RoutingTable
from ..net import Prefix
from ..rpki.roa import RoaSet
from .results import InferenceResult

__all__ = [
    "DropCorrelation",
    "drop_correlation",
    "RoaAbuseStats",
    "roa_abuse_analysis",
]


@dataclass(frozen=True)
class DropCorrelation:
    """Leased vs non-leased origination by blocklisted ASes.

    The paper's headline: 1.1% of leased prefixes vs 0.2% of non-leased —
    "leased prefixes are approximately five times more likely to be
    advertised by an AS considered abusive by Spamhaus".
    """

    leased_prefixes: int
    leased_by_blocklisted: int
    non_leased_prefixes: int
    non_leased_by_blocklisted: int

    @property
    def leased_share(self) -> float:
        """Blocklisted-origin share among leased prefixes."""
        return _share(self.leased_by_blocklisted, self.leased_prefixes)

    @property
    def non_leased_share(self) -> float:
        """Blocklisted-origin share among non-leased prefixes."""
        return _share(self.non_leased_by_blocklisted, self.non_leased_prefixes)

    @property
    def risk_ratio(self) -> float:
        """How much more likely leased space is to be abusively originated."""
        non_leased = self.non_leased_share
        if not non_leased or non_leased != non_leased:  # zero or NaN
            return float("nan")
        return self.leased_share / non_leased


def drop_correlation(
    result: InferenceResult,
    routing_table: RoutingTable,
    drop: AsnDropList,
) -> DropCorrelation:
    """Compute blocklisted-origination shares for leased vs non-leased."""
    leased_prefixes = result.leased_prefixes()
    leased_by_blocklisted = sum(
        1
        for inference in result.leased()
        if any(origin in drop for origin in inference.originators)
    )
    non_leased_total = 0
    non_leased_by_blocklisted = 0
    for prefix, origins in routing_table.items():
        if prefix in leased_prefixes:
            continue
        non_leased_total += 1
        if any(origin in drop for origin in origins):
            non_leased_by_blocklisted += 1
    return DropCorrelation(
        leased_prefixes=len(leased_prefixes),
        leased_by_blocklisted=leased_by_blocklisted,
        non_leased_prefixes=non_leased_total,
        non_leased_by_blocklisted=non_leased_by_blocklisted,
    )


@dataclass(frozen=True)
class RoaAbuseStats:
    """ROAs covering a prefix population and their blocklisted share."""

    prefixes_considered: int
    prefixes_with_roas: int
    roas_total: int
    roas_blocklisted: int

    @property
    def blocklisted_share(self) -> float:
        """Fraction of covering ROAs that authorize a blocklisted AS."""
        return _share(self.roas_blocklisted, self.roas_total)

    @property
    def coverage(self) -> float:
        """Fraction of prefixes with at least one covering ROA."""
        return _share(self.prefixes_with_roas, self.prefixes_considered)


def roa_abuse_analysis(
    prefixes: Set[Prefix],
    roas: RoaSet,
    drop: AsnDropList,
) -> RoaAbuseStats:
    """§6.4 ROA analysis for one prefix population.

    Counts distinct ROAs covering any prefix of the population and how
    many of those authorize an AS on the DROP list (AS0 markers are not
    blocklisted ASes and never count).
    """
    covering_roas = set()
    prefixes_with_roas = 0
    for prefix in prefixes:
        found = roas.covering(prefix)
        if found:
            prefixes_with_roas += 1
        covering_roas.update(found)
    blocklisted = sum(
        1 for roa in covering_roas if not roa.is_as0 and roa.asn in drop
    )
    return RoaAbuseStats(
        prefixes_considered=len(prefixes),
        prefixes_with_roas=prefixes_with_roas,
        roas_total=len(covering_roas),
        roas_blocklisted=blocklisted,
    )


def _share(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else float("nan")
