"""Address allocation trees (§5.1 step 2).

For one registry, every IANA-allocated (non-legacy) address block is
converted from range notation to CIDR prefixes and inserted into a prefix
tree.  Root nodes are portable prefixes directly allocated by the RIR;
leaf nodes are non-portable sub-allocations/assignments — the units the
paper classifies.  Hyper-specific prefixes (longer than /24) are removed
first, and intermediate nodes are kept but not classified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..net import Prefix, PrefixTrie
from ..whois.database import WhoisDatabase
from ..whois.objects import InetnumRecord
from ..whois.statuses import Portability, classify_status

__all__ = [
    "DEFAULT_MAX_LEAF_LENGTH",
    "TreeLeaf",
    "AllocationTree",
    "AllocationScan",
]

#: §5.1: "We remove all hyper-specific prefixes longer than /24".
DEFAULT_MAX_LEAF_LENGTH = 24


@dataclass(frozen=True)
class TreeLeaf:
    """One leaf node with its covering root.

    ``root_prefix``/``root_record`` are None for orphan leaves — blocks
    with no registered covering allocation (rare in practice, possible in
    partial databases).
    """

    prefix: Prefix
    record: InetnumRecord
    root_prefix: Optional[Prefix]
    root_record: Optional[InetnumRecord]

    @property
    def has_root(self) -> bool:
        """True when a distinct covering root exists."""
        return self.root_prefix is not None


class AllocationTree:
    """The per-registry prefix tree with root/leaf roles resolved."""

    def __init__(
        self,
        database: WhoisDatabase,
        max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
    ) -> None:
        self.database = database
        self.max_leaf_length = max_leaf_length
        self._trie: PrefixTrie[InetnumRecord] = PrefixTrie()
        self.hyper_specific_dropped = 0
        self.legacy_dropped = 0
        self._build()

    def _build(self) -> None:
        for record in self.database.inetnums:
            if record.is_legacy:
                self.legacy_dropped += 1
                continue
            for prefix in record.range.to_prefixes():
                if prefix.length > self.max_leaf_length:
                    self.hyper_specific_dropped += 1
                    continue
                # First-registered record wins on duplicate prefixes;
                # RIR databases occasionally carry stale duplicates.
                if self._trie.exact(prefix) is None:
                    self._trie.insert(prefix, record)

    # -- roles ------------------------------------------------------------
    def roots(self) -> List[Tuple[Prefix, InetnumRecord]]:
        """Prefixes with no registered covering prefix.

        In a well-formed registry these carry portable statuses; the
        pipeline treats whatever tops the tree as the root regardless, as
        the paper's tree construction does.
        """
        return self._trie.roots()

    def portable_roots(self) -> List[Tuple[Prefix, InetnumRecord]]:
        """Roots whose status is portable (§2.1 category 1)."""
        return [
            (prefix, record)
            for prefix, record in self.roots()
            if record.portability is Portability.PORTABLE
        ]

    def leaves(self) -> List[TreeLeaf]:
        """All tree leaves, each paired with its least-specific root."""
        result: List[TreeLeaf] = []
        for prefix, record in self._trie.leaves():
            root = self._trie.least_specific_match(prefix)
            if root is None or root[0] == prefix:
                result.append(
                    TreeLeaf(
                        prefix=prefix,
                        record=record,
                        root_prefix=None,
                        root_record=None,
                    )
                )
            else:
                result.append(
                    TreeLeaf(
                        prefix=prefix,
                        record=record,
                        root_prefix=root[0],
                        root_record=root[1],
                    )
                )
        return result

    def classifiable_leaves(self) -> List[TreeLeaf]:
        """Leaves the paper classifies: non-portable, under a root.

        Portable leaves are whole unsubdivided allocations — they have no
        address provider, so the leasing definition does not apply.
        """
        return [
            leaf
            for leaf in self.leaves()
            if leaf.has_root
            and leaf.record.portability is Portability.NON_PORTABLE
        ]

    # -- queries ------------------------------------------------------------
    def record_at(self, prefix: Prefix) -> Optional[InetnumRecord]:
        """The record stored exactly at *prefix*, or None."""
        return self._trie.exact(prefix)

    def chain(self, prefix: Prefix) -> List[Tuple[Prefix, InetnumRecord]]:
        """The covering chain at *prefix*, least-specific first."""
        return self._trie.covering(prefix)

    def __len__(self) -> int:
        return len(self._trie)

    def __iter__(self) -> Iterator[Tuple[Prefix, InetnumRecord]]:
        return self._trie.items()


class AllocationScan:
    """Sort-based root/leaf resolution, equivalent to :class:`AllocationTree`.

    Registry prefixes are nested-or-disjoint, so one pass over the
    deduplicated prefixes in ``(network, length)`` order resolves every
    role with an enclosing-interval stack: a node is a leaf iff the next
    node in sort order starts past its last address, and its root is the
    bottom of the stack of enclosing prefixes.  This produces the exact
    leaf list (same order, same roots) as the per-bit trie in
    :class:`AllocationTree` without paying one trie insert plus one
    covering walk per prefix — the dominant cost of a census-scale run.

    Only role resolution lives here; point queries (``record_at``,
    ``chain``) stay on :class:`AllocationTree`.
    """

    def __init__(
        self,
        database: WhoisDatabase,
        max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
    ) -> None:
        self.database = database
        self.max_leaf_length = max_leaf_length
        self.hyper_specific_dropped = 0
        self.legacy_dropped = 0
        self.root_count = 0
        self._leaves: List[TreeLeaf] = []
        self._classifiable: List[TreeLeaf] = []
        self._node_count = 0
        self._build()

    def _build(self) -> None:
        rir = self.database.rir
        nodes: List[Tuple[Prefix, InetnumRecord, Portability]] = []
        seen = set()
        for record in self.database.inetnums:
            portability = classify_status(rir, record.status)
            if portability is Portability.LEGACY:
                self.legacy_dropped += 1
                continue
            for prefix in record.range.to_prefixes():
                if prefix.length > self.max_leaf_length:
                    self.hyper_specific_dropped += 1
                    continue
                # First-registered record wins on duplicate prefixes,
                # matching AllocationTree's insert-if-absent.
                if prefix in seen:
                    continue
                seen.add(prefix)
                nodes.append((prefix, record, portability))
        nodes.sort(key=lambda node: (node[0].network, node[0].length))
        self._node_count = len(nodes)
        total = len(nodes)
        # Stack of enclosing prefixes as (last_address, prefix, record);
        # the bottom entry is the least-specific cover, i.e. the root.
        stack: List[Tuple[int, Prefix, InetnumRecord]] = []
        for index, (prefix, record, portability) in enumerate(nodes):
            network = prefix.network
            last = network | ((1 << (32 - prefix.length)) - 1)
            while stack and network > stack[-1][0]:
                stack.pop()
            if stack:
                root_prefix: Optional[Prefix] = stack[0][1]
                root_record: Optional[InetnumRecord] = stack[0][2]
            else:
                self.root_count += 1
                root_prefix = None
                root_record = None
            is_leaf = (
                index + 1 >= total or nodes[index + 1][0].network > last
            )
            if is_leaf:
                leaf = TreeLeaf(
                    prefix=prefix,
                    record=record,
                    root_prefix=root_prefix,
                    root_record=root_record,
                )
                self._leaves.append(leaf)
                if (
                    root_prefix is not None
                    and portability is Portability.NON_PORTABLE
                ):
                    self._classifiable.append(leaf)
            stack.append((last, prefix, record))

    def leaves(self) -> List[TreeLeaf]:
        """All leaves with their least-specific roots (copy)."""
        return list(self._leaves)

    def classifiable_leaves(self) -> List[TreeLeaf]:
        """Non-portable leaves under a root — the classification input."""
        return list(self._classifiable)

    def stats(self) -> Dict[str, int]:
        """The per-region counters :meth:`AllocationTree` exposes."""
        return {
            "nodes": self._node_count,
            "roots": self.root_count,
            "leaves": len(self._leaves),
            "classifiable": len(self._classifiable),
            "hyper_specific_dropped": self.hyper_specific_dropped,
            "legacy_dropped": self.legacy_dropped,
        }

    def __len__(self) -> int:
        return self._node_count
