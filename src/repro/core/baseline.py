"""The Prehn et al. maintainer-difference baseline (§6.1 comparison).

Prehn, Lichtblau, and Feldmann (CoNEXT 2020) "classified address blocks
as leased if their maintainers differed from their parent blocks".  The
paper contrasts this with its BGP-grounded method: maintainer difference
yields false positives on customer blocks with customer-owned
maintainers and false negatives when holders lease under their own
maintainer — but it *can* flag inactive leases that the BGP method files
under Unused.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net import Prefix
from ..rir import RIR
from ..whois.database import WhoisCollection, WhoisDatabase
from .allocation_tree import DEFAULT_MAX_LEAF_LENGTH, AllocationTree

__all__ = ["maintainer_baseline"]


def maintainer_baseline(
    whois: WhoisCollection,
    rirs: Optional[List[RIR]] = None,
    max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
) -> Dict[Prefix, bool]:
    """Leased-or-not per leaf prefix under the maintainer heuristic.

    A leaf is flagged leased when its maintainer set is disjoint from its
    parent block's maintainer set.  Leaves or parents without maintainers
    (ARIN-style records fall back to OrgIDs) are compared on whatever
    handles they carry; a leaf with no root is never flagged.
    """
    verdicts: Dict[Prefix, bool] = {}
    for rir in rirs if rirs is not None else list(RIR):
        database: WhoisDatabase = whois[rir]
        if not database.inetnums:
            continue
        tree = AllocationTree(database, max_leaf_length)
        for leaf in tree.classifiable_leaves():
            if leaf.root_record is None:
                verdicts[leaf.prefix] = False
                continue
            leaf_handles = set(leaf.record.maintainers)
            root_handles = set(leaf.root_record.maintainers)
            if not leaf_handles or not root_handles:
                verdicts[leaf.prefix] = False
                continue
            verdicts[leaf.prefix] = leaf_handles.isdisjoint(root_handles)
    return verdicts
