"""Leaf classification (§5.2): the four inference groups.

Given, for one leaf node, its BGP origins, its root's BGP origins, and
the RIR-assigned ASes of the root organisation, the classifier produces
one of six categories spanning the paper's four groups:

1. **Unused** — neither leaf nor root originated.
2. **Aggregated customer** — only the root originated.
3. Leaf originated only: **ISP customer** when the leaf origin is related
   to a root-assigned AS, else **Leased**.
4. Both originated: **Delegated customer** when the leaf origin is
   related to a root-assigned AS or to the root's BGP origin, else
   **Leased**.
"""

from __future__ import annotations

import enum
from typing import AbstractSet, Dict, FrozenSet, Tuple

from .relatedness import RelatednessOracle

__all__ = ["Category", "classify_leaf", "MemoizedClassifier"]


class Category(enum.Enum):
    """A leaf node's inference category (Table 1 rows)."""

    UNUSED = ("Unused", 1, False)
    AGGREGATED_CUSTOMER = ("Aggregated Customer", 2, False)
    ISP_CUSTOMER = ("ISP Customer", 3, False)
    LEASED_GROUP3 = ("Leased", 3, True)
    DELEGATED_CUSTOMER = ("Delegated Customer", 4, False)
    LEASED_GROUP4 = ("Leased", 4, True)

    def __init__(self, label: str, group: int, leased: bool) -> None:
        self.label = label
        self.group = group
        self.is_leased = leased


def classify_leaf(
    leaf_origins: AbstractSet[int],
    root_origins: AbstractSet[int],
    root_assigned_asns: AbstractSet[int],
    oracle: RelatednessOracle,
) -> Category:
    """Classify one leaf node per the §5.2 decision procedure."""
    if not leaf_origins and not root_origins:
        return Category.UNUSED
    if not leaf_origins:
        return Category.AGGREGATED_CUSTOMER
    if not root_origins:
        if oracle.any_related(leaf_origins, root_assigned_asns):
            return Category.ISP_CUSTOMER
        return Category.LEASED_GROUP3
    related_targets = set(root_assigned_asns) | set(root_origins)
    if oracle.any_related(leaf_origins, related_targets):
        return Category.DELEGATED_CUSTOMER
    return Category.LEASED_GROUP4


_ClassifyKey = Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]


class MemoizedClassifier:
    """Memoized §5.2 classification over one oracle.

    The category is a pure function of the ``(leaf origins, root
    origins, root assigned ASNs)`` triple, and real registries repeat the
    same triple across thousands of sibling leaves (every leaf of one
    hoster under one root, say).  One instance per shard keeps the cache
    process-local and its counters mergeable.
    """

    def __init__(self, oracle: RelatednessOracle) -> None:
        self.oracle = oracle
        self._cache: Dict[_ClassifyKey, Category] = {}
        self.hits = 0
        self.misses = 0

    def classify(
        self,
        leaf_origins: FrozenSet[int],
        root_origins: FrozenSet[int],
        root_assigned_asns: FrozenSet[int],
    ) -> Category:
        """Cached :func:`classify_leaf`."""
        key = (leaf_origins, root_origins, root_assigned_asns)
        category = self._cache.get(key)
        if category is None:
            self.misses += 1
            category = classify_leaf(
                leaf_origins, root_origins, root_assigned_asns, self.oracle
            )
            self._cache[key] = category
        else:
            self.hits += 1
        return category
