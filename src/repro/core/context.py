"""The shared, read-only analysis substrate every engine draws from.

One :class:`AnalysisContext` is built per run and handed to the lease
classifier, the legacy-space extension, the RPKI profiler, and the
longitudinal comparison.  It snapshots everything those engines query:

* the RIB's exact-match and covering-prefix indexes
  (:class:`RibSnapshot` — plain dicts, no trie),
* the per-registry allocation scan (leaf keys + tree stats),
* the AS-relationship closure (per-AS "business family" sets that fold
  AS relationships and AS2org membership into one frozenset), and
* the per-registry organisation → RIR-assigned-ASN maps.

The snapshot is deliberately **pickle-cheap and spawn-safe**: every
field is built from hashable immutables (``Prefix``, ``frozenset``,
tuples), and the one heavy structure — the full ``TreeLeaf`` record
lists — is dropped by ``__getstate__`` so spawn-based worker pools ship
only the compact classification keys.  Workers classify from keys; the
parent keeps the records and reassembles full inferences.

Covering lookups work without a trie because CIDR prefixes nest or are
disjoint: every covering prefix of ``p`` is a truncation
``p.supernet(L)`` for some shorter ``L``, so probing the exact dict at
each RIB-observed length, ascending, finds the least-specific cover
first — the §5.1 root-node lookup — with a handful of dict probes.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..asdata.as2org import AS2Org
from ..asdata.relationships import ASRelationships
from ..bgp.rib import RoutingTable
from ..net import Prefix
from ..rir import ALL_RIRS, RIR
from ..rpki.roa import RoaSet
from ..whois.database import WhoisCollection
from .allocation_tree import (
    DEFAULT_MAX_LEAF_LENGTH,
    AllocationScan,
    TreeLeaf,
)

__all__ = ["AnalysisContext", "RibSnapshot", "RoaSnapshot"]

_EMPTY: FrozenSet[int] = frozenset()

#: The compact per-leaf classification input shipped to workers:
#: ``(leaf_prefix, root_prefix, root_org_id)``.  Everything the §5.2
#: decision needs that is not already in the shared context.
LeafKey = Tuple[Prefix, Optional[Prefix], Optional[str]]


class RibSnapshot:
    """Frozen exact/covering origin lookups over a routing table.

    Semantically identical to :meth:`RoutingTable.exact_origins` and
    :meth:`RoutingTable.covering_origins`, but backed by one plain dict
    (picklable, shareable across processes) instead of a live trie.
    """

    __slots__ = ("_exact", "_lengths")

    def __init__(self, exact: Dict[Prefix, FrozenSet[int]]) -> None:
        self._exact = exact
        self._lengths: Tuple[int, ...] = tuple(
            sorted({prefix.length for prefix in exact})
        )

    @classmethod
    def from_routing_table(cls, routing_table: RoutingTable) -> "RibSnapshot":
        """Freeze the table's exact index (origins become frozensets)."""
        return cls(
            {
                prefix: frozenset(origins)
                for prefix, origins in routing_table.exact_index().items()
            }
        )

    def exact_origins(self, prefix: Prefix) -> FrozenSet[int]:
        """Origins of the exact-matching prefix (empty when absent)."""
        return self._exact.get(prefix, _EMPTY)

    def covering_origins(self, prefix: Prefix) -> FrozenSet[int]:
        """Exact match, else the least-specific covering prefix's origins.

        Probes the truncations of *prefix* at every advertised length,
        ascending, so the first hit is the least-specific cover — the
        trie-free equivalent of ``least_specific_match``.
        """
        exact = self._exact.get(prefix)
        if exact:
            return exact
        for length in self._lengths:
            if length > prefix.length:
                break
            origins = self._exact.get(prefix.supernet(length))
            if origins is not None:
                return origins
        return _EMPTY

    def exact_items(self) -> Iterable[Tuple[Prefix, FrozenSet[int]]]:
        """The ``(prefix, origins)`` pairs of the exact index.

        The incremental overlay seeds its mutable copy from this view;
        iteration order is the underlying dict's insertion order.
        """
        return self._exact.items()

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._exact

    def __len__(self) -> int:
        return len(self._exact)


class RoaSnapshot:
    """Frozen RFC 6811 validation over one ROA snapshot.

    Same truncation-walk trick as :class:`RibSnapshot`: the covering
    ROAs of a prefix live at its supernets, so a dict keyed by ROA
    prefix replaces the covering-trie walk.  Outcomes are identical to
    :func:`repro.rpki.validation.validate_origin` — VALID/INVALID/
    NOT_FOUND do not depend on the order covering ROAs are visited.
    """

    __slots__ = ("_buckets", "_lengths")

    def __init__(self, roas: RoaSet) -> None:
        buckets: Dict[Prefix, List] = {}
        for roa in roas:
            buckets.setdefault(roa.prefix, []).append(roa)
        self._buckets: Dict[Prefix, Tuple] = {
            prefix: tuple(bucket) for prefix, bucket in buckets.items()
        }
        self._lengths: Tuple[int, ...] = tuple(
            sorted({prefix.length for prefix in self._buckets})
        )

    def validate(self, prefix: Prefix, origin: int) -> str:
        """The RFC 6811 outcome name: ``valid``/``invalid``/``not-found``."""
        covered = False
        for length in self._lengths:
            if length > prefix.length:
                break
            bucket = self._buckets.get(prefix.supernet(length))
            if bucket is None:
                continue
            covered = True
            for roa in bucket:
                if roa.authorizes(prefix, origin):
                    return "valid"
        return "invalid" if covered else "not-found"

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class AnalysisContext:
    """Everything the fast engines query, snapshotted once per run.

    Build with :meth:`build`; hand the instance to
    ``LeaseInferencePipeline.run``, ``LegacyLeasePipeline``, and friends
    so they share one substrate instead of recomputing per pass.
    """

    def __init__(
        self,
        rirs: Tuple[RIR, ...],
        max_leaf_length: int,
        rib: RibSnapshot,
        related_sets: Dict[int, FrozenSet[int]],
        assigned: Dict[RIR, Dict[str, FrozenSet[int]]],
        leaf_keys: Dict[RIR, Tuple[LeafKey, ...]],
        stats: Dict[RIR, Dict[str, int]],
        leaves: Optional[Dict[RIR, List[TreeLeaf]]],
    ) -> None:
        self.rirs = rirs
        self.max_leaf_length = max_leaf_length
        self.rib = rib
        self.related_sets = related_sets
        self.assigned = assigned
        self.leaf_keys = leaf_keys
        self.stats = stats
        self._leaves = leaves

    @classmethod
    def build(
        cls,
        whois: WhoisCollection,
        routing_table: RoutingTable,
        relationships: ASRelationships,
        as2org: Optional[AS2Org] = None,
        max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
        rirs: Optional[Iterable[RIR]] = None,
    ) -> "AnalysisContext":
        """Snapshot the substrates for the selected registries."""
        rib = RibSnapshot.from_routing_table(routing_table)
        related_sets = build_related_sets(relationships, as2org)

        assigned: Dict[RIR, Dict[str, FrozenSet[int]]] = {}
        for rir in ALL_RIRS:
            by_org: Dict[str, List[int]] = {}
            for autnum in whois[rir].autnums:
                if autnum.org_id:
                    by_org.setdefault(autnum.org_id, []).append(autnum.asn)
            assigned[rir] = {
                org: frozenset(asns) for org, asns in by_org.items()
            }

        work_rirs: List[RIR] = []
        leaf_keys: Dict[RIR, Tuple[LeafKey, ...]] = {}
        stats: Dict[RIR, Dict[str, int]] = {}
        leaves: Dict[RIR, List[TreeLeaf]] = {}
        for rir in rirs if rirs is not None else list(RIR):
            database = whois[rir]
            if not database.inetnums:
                continue
            scan = AllocationScan(database, max_leaf_length)
            region_leaves = scan.classifiable_leaves()
            work_rirs.append(rir)
            stats[rir] = scan.stats()
            leaves[rir] = region_leaves
            leaf_keys[rir] = tuple(
                (
                    leaf.prefix,
                    leaf.root_prefix,
                    leaf.root_record.org_id if leaf.root_record else None,
                )
                for leaf in region_leaves
            )
        return cls(
            rirs=tuple(work_rirs),
            max_leaf_length=max_leaf_length,
            rib=rib,
            related_sets=related_sets,
            assigned=assigned,
            leaf_keys=leaf_keys,
            stats=stats,
            leaves=leaves,
        )

    # -- relatedness ------------------------------------------------------
    def related_to(self, asn: int) -> FrozenSet[int]:
        """The business family of *asn* (always contains *asn*)."""
        family = self.related_sets.get(asn)
        if family is None:
            return frozenset((asn,))
        return family

    def any_related(
        self, lefts: Iterable[int], rights: FrozenSet[int]
    ) -> bool:
        """True when any left AS's family intersects *rights*.

        Equivalent to ``RelatednessOracle.any_related``: ``related(l, r)``
        holds exactly when ``r`` is in ``l``'s family set.
        """
        return any(
            not self.related_to(left).isdisjoint(rights) for left in lefts
        )

    def related_pair(
        self, lefts: Iterable[int], rights: FrozenSet[int]
    ) -> Optional[Tuple[int, int]]:
        """The lowest-numbered related ``(left, right)`` pair, or None.

        The serving layer surfaces this pair as the relatedness verdict
        behind a Delegated/ISP-customer answer: *which* leaf origin was
        related to *which* root-side AS.  Deterministic (ascending AS
        number) so identical snapshots explain answers identically.
        """
        for left in sorted(lefts):
            hits = self.related_to(left) & rights
            if hits:
                return left, min(hits)
        return None

    # -- registry lookups -------------------------------------------------
    def assigned_asns(self, rir: RIR, org_id: Optional[str]) -> FrozenSet[int]:
        """RIR-assigned ASNs of *org_id* in *rir* (§5.1 step 3)."""
        if not org_id:
            return _EMPTY
        return self.assigned.get(rir, {}).get(org_id, _EMPTY)

    def leaves(self, rir: RIR) -> List[TreeLeaf]:
        """The full leaf records for *rir* (parent side only)."""
        if self._leaves is None:
            raise RuntimeError(
                "AnalysisContext leaf records were stripped for worker "
                "transfer; only the parent process holds them"
            )
        return self._leaves.get(rir, [])

    def total_leaves(self) -> int:
        """Classifiable leaves across all snapshotted registries."""
        return sum(len(keys) for keys in self.leaf_keys.values())

    # -- pickling ---------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Drop the heavy record lists: workers classify from keys."""
        return {
            "rirs": self.rirs,
            "max_leaf_length": self.max_leaf_length,
            "rib": self.rib,
            "related_sets": self.related_sets,
            "assigned": self.assigned,
            "leaf_keys": self.leaf_keys,
            "stats": self.stats,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._leaves = None


def build_related_sets(
    relationships: ASRelationships, as2org: Optional[AS2Org] = None
) -> Dict[int, FrozenSet[int]]:
    """Per-AS family sets equal to the relatedness oracle's closure.

    ``oracle.related(a, b)`` is true exactly when ``b`` is in
    ``{a} | neighbors(a) | as2org members of a's organisation`` — the
    identity, direct-relationship, and same-organisation clauses of
    §5.2.  Precomputing the union turns every relatedness query into a
    set-membership test with no oracle (and no dataset objects) needed
    at classification time.
    """
    asns = set(relationships.asns())
    if as2org is not None:
        asns.update(as2org.asns())
    related: Dict[int, FrozenSet[int]] = {}
    for asn in asns:
        family = {asn}
        family.update(relationships.neighbors(asn))
        if as2org is not None:
            org = as2org.org_of(asn)
            if org is not None:
                family.update(as2org.members(org))
        related[asn] = frozenset(family)
    return related
