"""Leasing-ecosystem analysis (§6.3): top parties and hijacker overlap."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..asdata.hijackers import SerialHijackerList
from ..bgp.rib import RoutingTable
from ..net import Prefix
from ..rir import ALL_RIRS, RIR
from ..whois.database import WhoisCollection
from .results import InferenceResult

__all__ = [
    "top_holders",
    "top_facilitators",
    "top_originators",
    "HijackerOverlap",
    "hijacker_overlap",
]


def top_holders(
    result: InferenceResult,
    whois: WhoisCollection,
    k: int = 3,
) -> Dict[RIR, List[Tuple[str, int]]]:
    """Table 3: per registry, the IP holders leasing out the most prefixes.

    Holders are root-node organisations; counts are their leased leaf
    prefixes.  Organisation handles resolve to display names through the
    regional WHOIS database.
    """
    ranking: Dict[RIR, List[Tuple[str, int]]] = {}
    for rir in ALL_RIRS:
        counter: Counter = Counter()
        for inference in result.leased(rir):
            org_id = inference.holder_org_id
            if org_id is None:
                continue
            org = whois[rir].org(org_id)
            counter[org.name if org else org_id] += 1
        ranking[rir] = counter.most_common(k)
    return ranking


def top_facilitators(
    result: InferenceResult, k: int = 3
) -> Dict[RIR, List[Tuple[str, int]]]:
    """Per registry, the maintainers on the most leased leaf blocks.

    §6.3 identifies IPXO in the top three for RIPE, ARIN, and APNIC this
    way: the leaf maintainer is the facilitator role of Fig. 2.
    """
    ranking: Dict[RIR, List[Tuple[str, int]]] = {}
    for rir in ALL_RIRS:
        counter: Counter = Counter()
        for inference in result.leased(rir):
            for handle in inference.facilitator_handles:
                counter[handle] += 1
        ranking[rir] = counter.most_common(k)
    return ranking


def resolve_maintainer_names(
    whois: WhoisCollection, handles: List[str]
) -> Dict[str, str]:
    """Company names behind maintainer handles, for readable rankings.

    A handle resolves to the organisation listing it among its
    maintainers; handles without such an organisation resolve to
    themselves (real maintainers are frequently anonymous this way).
    """
    resolution: Dict[str, str] = {}
    wanted = set(handles)
    for database in whois:
        for org in database.orgs.values():
            for handle in org.maintainers:
                if handle in wanted and handle not in resolution:
                    resolution[handle] = org.name
    for handle in handles:
        resolution.setdefault(handle, handle)
    return resolution


def top_originators(
    result: InferenceResult, k: int = 5
) -> Dict[RIR, List[Tuple[int, int]]]:
    """Per registry, the ASes originating the most leased prefixes."""
    ranking: Dict[RIR, List[Tuple[int, int]]] = {}
    for rir in ALL_RIRS:
        counter: Counter = Counter()
        for inference in result.leased(rir):
            for origin in inference.originators:
                counter[origin] += 1
        ranking[rir] = counter.most_common(k)
    return ranking


@dataclass(frozen=True)
class HijackerOverlap:
    """§6.3 serial-hijacker statistics."""

    lease_originators: int
    hijacker_originators: int
    leased_prefixes: int
    leased_by_hijackers: int
    non_leased_prefixes: int
    non_leased_by_hijackers: int

    @property
    def originator_share(self) -> float:
        """Fraction of lease originators that are serial hijackers (2.9%)."""
        return _share(self.hijacker_originators, self.lease_originators)

    @property
    def leased_share(self) -> float:
        """Fraction of leased prefixes originated by hijackers (13.3%)."""
        return _share(self.leased_by_hijackers, self.leased_prefixes)

    @property
    def non_leased_share(self) -> float:
        """Fraction of non-leased prefixes originated by hijackers (3.1%)."""
        return _share(self.non_leased_by_hijackers, self.non_leased_prefixes)


def hijacker_overlap(
    result: InferenceResult,
    routing_table: RoutingTable,
    hijackers: SerialHijackerList,
) -> HijackerOverlap:
    """Compare lease originators against the serial-hijacker list."""
    originators: Set[int] = set()
    leased_by_hijackers = 0
    leased_prefixes = result.leased_prefixes()
    for inference in result.leased():
        originators.update(inference.originators)
        if any(origin in hijackers for origin in inference.originators):
            leased_by_hijackers += 1

    non_leased_total = 0
    non_leased_by_hijackers = 0
    for prefix, origins in routing_table.items():
        if prefix in leased_prefixes:
            continue
        non_leased_total += 1
        if any(origin in hijackers for origin in origins):
            non_leased_by_hijackers += 1

    return HijackerOverlap(
        lease_originators=len(originators),
        hijacker_originators=sum(
            1 for origin in originators if origin in hijackers
        ),
        leased_prefixes=len(leased_prefixes),
        leased_by_hijackers=leased_by_hijackers,
        non_leased_prefixes=non_leased_total,
        non_leased_by_hijackers=non_leased_by_hijackers,
    )


def _share(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else float("nan")
