"""Evaluating inference output against the reference dataset (§6.2).

Produces the Table 2 confusion matrix plus the paper's error
breakdowns: false negatives by category (inactive leases classified
Unused, legacy blocks invisible to the method) and false-positive
listings (the Vodafone-subsidiary effect).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..net import Prefix
from .classify import Category
from .metrics import ConfusionMatrix
from .reference import ReferenceDataset
from .results import InferenceResult

__all__ = ["EvaluationReport", "evaluate_inference"]


@dataclass
class EvaluationReport:
    """Confusion matrix plus per-error diagnostics."""

    matrix: ConfusionMatrix = field(default_factory=ConfusionMatrix)
    false_positives: List[Prefix] = field(default_factory=list)
    false_negatives: List[Prefix] = field(default_factory=list)
    #: FN prefixes by the category the pipeline assigned (§6.2 finds most
    #: are Unused = inactive leases); key None = not a leaf at all
    #: (legacy blocks never enter the tree).
    fn_by_category: Dict[Optional[Category], int] = field(default_factory=dict)
    #: FP prefixes by holder organisation, to surface subsidiary clusters.
    fp_by_holder: Dict[Optional[str], int] = field(default_factory=dict)

    @property
    def fn_unused(self) -> int:
        """False negatives the pipeline filed as Unused (inactive leases)."""
        return self.fn_by_category.get(Category.UNUSED, 0)

    @property
    def fn_invisible(self) -> int:
        """False negatives that never became classifiable leaves (legacy)."""
        return self.fn_by_category.get(None, 0)


def evaluate_inference(
    result: InferenceResult, reference: ReferenceDataset
) -> EvaluationReport:
    """Score *result* against *reference* (§6.2, Table 2).

    Every labelled prefix is scored: a positive-labelled prefix counts as
    a true positive only when the pipeline classified it leased; labelled
    prefixes the pipeline never classified (legacy blocks, or space absent
    from the tree) count as inferred-non-leased, exactly as in the paper.
    """
    report = EvaluationReport()
    leased: Set[Prefix] = result.leased_prefixes()

    for prefix in sorted(reference.positives):
        inferred = prefix in leased
        report.matrix.add_prediction(actual_leased=True, inferred_leased=inferred)
        if not inferred:
            report.false_negatives.append(prefix)
            inference = result.lookup(prefix)
            key = inference.category if inference else None
            report.fn_by_category[key] = report.fn_by_category.get(key, 0) + 1

    for prefix in sorted(reference.negatives):
        inferred = prefix in leased
        report.matrix.add_prediction(
            actual_leased=False, inferred_leased=inferred
        )
        if inferred:
            report.false_positives.append(prefix)
            inference = result.lookup(prefix)
            holder = inference.holder_org_id if inference else None
            report.fp_by_holder[holder] = report.fp_by_holder.get(holder, 0) + 1
    return report
