"""Geolocation-consistency analysis for leased space (§8).

For each prefix, counts the distinct countries and continents the
configured geolocation databases report and aggregates over a
population — quantifying the paper's anecdote that leased prefixes
geolocate wildly inconsistently (IPXO marketplace blocks spanning four
continents across five databases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from ..geo.database import GeoDatabase, continent_of
from ..net import Prefix

__all__ = ["GeoConsistency", "geo_consistency"]


@dataclass(frozen=True)
class GeoConsistency:
    """Per-population geolocation spread statistics."""

    prefixes: int
    located: int
    #: Histogram: number of distinct countries reported → prefix count.
    country_spread: Dict[int, int]
    #: Histogram: number of distinct continents reported → prefix count.
    continent_spread: Dict[int, int]

    @property
    def inconsistent_share(self) -> float:
        """Located prefixes on which the databases disagree on country."""
        disagreeing = sum(
            count for spread, count in self.country_spread.items() if spread > 1
        )
        return disagreeing / self.located if self.located else float("nan")

    @property
    def multi_continent_share(self) -> float:
        """Located prefixes spanning more than one continent."""
        spanning = sum(
            count
            for spread, count in self.continent_spread.items()
            if spread > 1
        )
        return spanning / self.located if self.located else float("nan")

    @property
    def max_continent_spread(self) -> int:
        """The worst observed continent disagreement."""
        return max(self.continent_spread, default=0)


def geo_consistency(
    prefixes: Iterable[Prefix],
    databases: Sequence[GeoDatabase],
) -> GeoConsistency:
    """Measure cross-database geolocation spread over a population."""
    total = 0
    located = 0
    country_spread: Dict[int, int] = {}
    continent_spread: Dict[int, int] = {}
    for prefix in prefixes:
        total += 1
        countries: Set[str] = set()
        for database in databases:
            country = database.locate(prefix)
            if country is not None:
                countries.add(country)
        if not countries:
            continue
        located += 1
        continents = {continent_of(country) for country in countries}
        country_spread[len(countries)] = (
            country_spread.get(len(countries), 0) + 1
        )
        continent_spread[len(continents)] = (
            continent_spread.get(len(continents), 0) + 1
        )
    return GeoConsistency(
        prefixes=total,
        located=located,
        country_spread=country_spread,
        continent_spread=continent_spread,
    )
