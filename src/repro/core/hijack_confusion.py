"""Origin-change alarms and their confusion with leasing (§8).

Hijack-detection systems alarm on origin changes: a prefix that was
originated by AS A suddenly appears from AS B.  §8 notes that "some IP
leasing behavior may be falsely identified as routing attacks" — a
re-lease produces exactly that signature.  This module extracts
origin-change events between two routing epochs and attributes each to
leasing (the block was inferred leased in either epoch), to known serial
hijackers, or to neither.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from ..asdata.hijackers import SerialHijackerList
from ..bgp.rib import RoutingTable
from ..net import Prefix
from .results import InferenceResult

__all__ = [
    "AlarmAttribution",
    "OriginChange",
    "origin_changes",
    "attribute_alarms",
    "AlarmReport",
]


class AlarmAttribution(enum.Enum):
    """What an origin-change alarm most likely was."""

    LEASE_CHURN = "lease-churn"  # the block is leased: benign turnover
    HIJACKER = "hijacker"  # new origin is a known serial hijacker
    UNEXPLAINED = "unexplained"  # neither: candidate real incident


@dataclass(frozen=True)
class OriginChange:
    """One alarm: the origin set of *prefix* changed between epochs."""

    prefix: Prefix
    old_origins: FrozenSet[int]
    new_origins: FrozenSet[int]

    @property
    def added_origins(self) -> FrozenSet[int]:
        """Origins present only in the later epoch."""
        return self.new_origins - self.old_origins


@dataclass
class AlarmReport:
    """Attribution counts over all origin-change alarms."""

    changes: List[OriginChange]
    attribution: Dict[Prefix, AlarmAttribution]

    def count(self, kind: AlarmAttribution) -> int:
        """Alarms attributed to *kind*."""
        return sum(1 for value in self.attribution.values() if value is kind)

    @property
    def total(self) -> int:
        """All alarms."""
        return len(self.changes)

    @property
    def lease_share(self) -> float:
        """Share of alarms explained by lease churn — the §8 false-alarm
        burden leasing imposes on hijack detection."""
        return (
            self.count(AlarmAttribution.LEASE_CHURN) / self.total
            if self.total
            else float("nan")
        )


def origin_changes(
    earlier: RoutingTable, later: RoutingTable
) -> List[OriginChange]:
    """Prefixes whose origin set changed (present in both epochs)."""
    changes: List[OriginChange] = []
    for prefix, old_origins in earlier.items():
        new_origins = later.exact_origins(prefix)
        if new_origins and new_origins != old_origins:
            changes.append(
                OriginChange(
                    prefix=prefix,
                    old_origins=old_origins,
                    new_origins=new_origins,
                )
            )
    return changes


def attribute_alarms(
    changes: List[OriginChange],
    earlier_result: Optional[InferenceResult],
    later_result: Optional[InferenceResult],
    hijackers: SerialHijackerList,
) -> AlarmReport:
    """Attribute each alarm to lease churn, a hijacker, or neither.

    Lease churn takes precedence: the whole §8 point is that a naive
    detector would escalate those alarms although the inference explains
    them.
    """
    leased: set = set()
    for result in (earlier_result, later_result):
        if result is not None:
            leased |= result.leased_prefixes()
    attribution: Dict[Prefix, AlarmAttribution] = {}
    for change in changes:
        if change.prefix in leased:
            attribution[change.prefix] = AlarmAttribution.LEASE_CHURN
        elif any(origin in hijackers for origin in change.added_origins):
            attribution[change.prefix] = AlarmAttribution.HIJACKER
        else:
            attribution[change.prefix] = AlarmAttribution.UNEXPLAINED
    return AlarmReport(changes=changes, attribution=attribution)
