"""Per-holder lease profiles (the Table 3 narrative, §6.3).

The paper annotates its top holders with geography: "Resilans ... leases
806 prefixes within Sweden. Cyber Assets FZCO ... leases prefixes to 44
countries, including 332 prefixes to the U.S."  This module computes the
same per-holder profile: lease count, distinct lessee ASes and
facilitators, and — when geolocation databases are supplied — the
countries the leased blocks land in.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geo.database import GeoDatabase
from ..rir import RIR
from ..whois.database import WhoisCollection
from .results import InferenceResult

__all__ = ["HolderProfile", "holder_profiles"]


@dataclass
class HolderProfile:
    """One IP holder's leasing footprint."""

    rir: RIR
    org_id: str
    name: str
    leased_prefixes: int = 0
    lessee_asns: set = field(default_factory=set)
    facilitator_handles: set = field(default_factory=set)
    #: country code → leased-prefix count (majority vote across geo DBs).
    countries: Counter = field(default_factory=Counter)

    @property
    def country_count(self) -> int:
        """Distinct countries the holder leases into."""
        return len(self.countries)

    def top_countries(self, k: int = 3) -> List[Tuple[str, int]]:
        """The most common destination countries."""
        return self.countries.most_common(k)


def holder_profiles(
    result: InferenceResult,
    whois: WhoisCollection,
    geo_databases: Sequence[GeoDatabase] = (),
    k: int = 10,
) -> Dict[RIR, List[HolderProfile]]:
    """The top-*k* holder profiles per registry, by lease count."""
    profiles: Dict[Tuple[RIR, str], HolderProfile] = {}
    for inference in result.leased():
        org_id = inference.holder_org_id
        if org_id is None:
            continue
        key = (inference.rir, org_id)
        profile = profiles.get(key)
        if profile is None:
            org = whois[inference.rir].org(org_id)
            profile = HolderProfile(
                rir=inference.rir,
                org_id=org_id,
                name=org.name if org else org_id,
            )
            profiles[key] = profile
        profile.leased_prefixes += 1
        profile.lessee_asns.update(inference.originators)
        profile.facilitator_handles.update(inference.facilitator_handles)
        country = _majority_country(geo_databases, inference.prefix)
        if country is not None:
            profile.countries[country] += 1

    ranking: Dict[RIR, List[HolderProfile]] = {rir: [] for rir in RIR}
    for (rir, _org_id), profile in profiles.items():
        ranking[rir].append(profile)
    for rir in ranking:
        ranking[rir].sort(key=lambda p: (-p.leased_prefixes, p.name))
        ranking[rir] = ranking[rir][:k]
    return ranking


def _majority_country(
    databases: Sequence[GeoDatabase], prefix
) -> Optional[str]:
    if not databases:
        return None
    votes = Counter()
    for database in databases:
        country = database.locate(prefix)
        if country:
            votes[country] += 1
    if not votes:
        return None
    return votes.most_common(1)[0][0]
