"""Incremental reclassification over a mutable RIB overlay.

The frozen-snapshot engines rebuild everything per run; this module is
the streaming path between collector dumps.  A burst of announce/
withdraw updates lands on :class:`MutableRibOverlay` — a mutable copy of
the run's :class:`~repro.core.context.RibSnapshot` exact index — and
:class:`IncrementalEngine` reclassifies **only** the leaves whose §5.1
lookups could have changed:

* a leaf's own origins come from the exact index at its prefix, so a
  changed prefix dirties exactly the leaves keyed by it;
* a root's origins come from the exact index at the root or one of its
  supernets (the covering walk), so a changed prefix ``p`` can only
  move roots **at or below** ``p`` — the trie of root prefixes answers
  ``covered(p)`` and each candidate is recomputed, dirtying its leaves
  only when the resolved origin set actually differs.

Everything else survives: the per-classifier relatedness and category
memos are RIB-independent, and the per-root origin memo is evicted only
for roots whose resolution moved.  After every burst the engine's rows
are bit-identical to a from-scratch ``pipeline.run()`` on the mutated
table — the differential test harness proves it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Set,
    Tuple,
    Union,
)

from ..bgp.history import AnnounceUpdate, Update
from ..bgp.rib import RoutingTable
from ..bgp.updates import SequencedUpdate
from ..net import Prefix, PrefixTrie
from ..rir import RIR
from .context import AnalysisContext, RibSnapshot
from .pipeline import LeaseInferencePipeline
from .results import InferenceResult, LeafInference
from .sharding import CacheStats, ShardClassifier

__all__ = [
    "BurstReport",
    "IncrementalEngine",
    "MutableRibOverlay",
    "clone_routing_table",
    "replay_into_table",
    "result_digest",
]

_EMPTY: FrozenSet[int] = frozenset()

#: A leaf's position in the engine's row store: ``(rir, index)``.
_LeafSlot = Tuple[RIR, int]


class MutableRibOverlay(RibSnapshot):
    """A mutable copy of a frozen RIB snapshot, update by update.

    Exposes the same lookup surface as :class:`RibSnapshot` (so the
    shard classifier reads it unchanged) while accepting the stream's
    mutations with :class:`RoutingTable` semantics: ``announce`` adds
    one origin to a prefix's set, ``withdraw`` evicts the prefix's
    exact-index entry wholly.  The advertised-length index is kept in
    sync so covering walks stay correct as lengths appear and vanish.
    """

    __slots__ = ("_length_counts",)

    def __init__(self, base: RibSnapshot) -> None:
        super().__init__(dict(base.exact_items()))
        counts: Dict[int, int] = {}
        for prefix in self._exact:
            counts[prefix.length] = counts.get(prefix.length, 0) + 1
        self._length_counts = counts

    def announce(self, prefix: Prefix, origin: int) -> bool:
        """Add *origin* to the prefix's set; True when state changed."""
        current = self._exact.get(prefix)
        if current is not None:
            if origin in current:
                return False
            self._exact[prefix] = current | {origin}
            return True
        self._exact[prefix] = frozenset((origin,))
        count = self._length_counts.get(prefix.length, 0)
        self._length_counts[prefix.length] = count + 1
        if count == 0:
            self._refresh_lengths()
        return True

    def withdraw(self, prefix: Prefix) -> bool:
        """Evict the prefix's entry wholly; True when it was present.

        Mirrors :meth:`RoutingTable.withdraw`: a withdraw removes the
        prefix from the exact index regardless of how many origins were
        announcing it.
        """
        if self._exact.pop(prefix, None) is None:
            return False
        remaining = self._length_counts[prefix.length] - 1
        if remaining:
            self._length_counts[prefix.length] = remaining
        else:
            del self._length_counts[prefix.length]
            self._refresh_lengths()
        return True

    def _refresh_lengths(self) -> None:
        self._lengths = tuple(sorted(self._length_counts))


@dataclass(frozen=True)
class BurstReport:
    """What one burst did to the engine's state.

    ``applied`` counts updates that changed the overlay; ``ignored``
    counts no-ops (withdraw of an absent prefix, re-announce of an
    already-present origin).  ``changed`` holds the new rows of leaves
    whose inference actually moved — the delta the serve layer patches
    into its index.
    """

    applied: int
    ignored: int
    changed_prefixes: Tuple[Prefix, ...]
    dirty_roots: Tuple[Prefix, ...]
    reclassified: int
    changed: Tuple[LeafInference, ...]


class IncrementalEngine:
    """Burst-at-a-time reclassification over a mutable RIB overlay.

    Built parent-side from a context that still holds its leaf records
    (worker-stripped contexts raise).  Construction runs one full
    classification — bit-identical to the pipeline's serial path — and
    indexes every leaf by its exact prefix and by its root prefix; each
    :meth:`apply` then touches only the dirty subset.
    """

    def __init__(
        self,
        context: AnalysisContext,
        use_covering_root_lookup: bool = True,
    ) -> None:
        self._context = context
        self._use_covering = use_covering_root_lookup
        self._overlay = MutableRibOverlay(context.rib)
        self._classifiers: Dict[RIR, ShardClassifier] = {}
        self._rows: Dict[RIR, List[LeafInference]] = {}
        self._by_exact: Dict[Prefix, List[_LeafSlot]] = {}
        self._root_slots: "PrefixTrie[List[_LeafSlot]]" = PrefixTrie()
        self._root_resolution: Dict[Prefix, FrozenSet[int]] = {}
        for rir in context.rirs:
            classifier = ShardClassifier(
                context, rir, use_covering_root_lookup, rib=self._overlay
            )
            rows: List[LeafInference] = []
            for position, leaf in enumerate(context.leaves(rir)):
                category, leaf_origins, root_origins, assigned = (
                    classifier.classify(
                        leaf.prefix,
                        leaf.root_prefix,
                        leaf.root_record.org_id if leaf.root_record else None,
                    )
                )
                rows.append(
                    LeaseInferencePipeline._make_inference(
                        rir, leaf, category, leaf_origins, root_origins,
                        assigned,
                    )
                )
                slot: _LeafSlot = (rir, position)
                self._by_exact.setdefault(leaf.prefix, []).append(slot)
                if leaf.root_prefix is not None:
                    slots = self._root_slots.exact(leaf.root_prefix)
                    if slots is None:
                        self._root_slots.insert(leaf.root_prefix, [slot])
                    else:
                        slots.append(slot)
                    self._root_resolution[leaf.root_prefix] = root_origins
            self._classifiers[rir] = classifier
            self._rows[rir] = rows

    @property
    def rib(self) -> MutableRibOverlay:
        """The live overlay (the state all current rows reflect)."""
        return self._overlay

    def apply(
        self, updates: Iterable[Union[Update, SequencedUpdate]]
    ) -> BurstReport:
        """Apply one burst and reclassify exactly the dirty leaves."""
        applied = 0
        ignored = 0
        changed_prefixes: Set[Prefix] = set()
        for item in updates:
            update = item.update if isinstance(item, SequencedUpdate) else item
            if isinstance(update, AnnounceUpdate):
                changed = self._overlay.announce(update.prefix, update.origin)
            else:
                changed = self._overlay.withdraw(update.prefix)
            if changed:
                applied += 1
                changed_prefixes.add(update.prefix)
            else:
                ignored += 1

        dirty: Set[_LeafSlot] = set()
        dirty_roots: Set[Prefix] = set()
        for prefix in changed_prefixes:
            dirty.update(self._by_exact.get(prefix, ()))
            # A changed entry at ``prefix`` can only move the covering
            # resolution of roots at or below it.
            for root_prefix, slots in self._root_slots.covered(prefix):
                if root_prefix in dirty_roots:
                    continue
                resolved = self._resolve_root(root_prefix)
                if resolved != self._root_resolution[root_prefix]:
                    self._root_resolution[root_prefix] = resolved
                    dirty_roots.add(root_prefix)
                    dirty.update(slots)

        for root_prefix in dirty_roots:
            for classifier in self._classifiers.values():
                classifier.invalidate_root(root_prefix)

        changed_rows: List[LeafInference] = []
        for rir, position in sorted(
            dirty, key=lambda slot: (slot[0].name, slot[1])
        ):
            leaf = self._context.leaves(rir)[position]
            classifier = self._classifiers[rir]
            category, leaf_origins, root_origins, assigned = (
                classifier.classify(
                    leaf.prefix,
                    leaf.root_prefix,
                    leaf.root_record.org_id if leaf.root_record else None,
                )
            )
            row = LeaseInferencePipeline._make_inference(
                rir, leaf, category, leaf_origins, root_origins, assigned
            )
            if row != self._rows[rir][position]:
                self._rows[rir][position] = row
                changed_rows.append(row)
        return BurstReport(
            applied=applied,
            ignored=ignored,
            changed_prefixes=tuple(sorted(changed_prefixes)),
            dirty_roots=tuple(sorted(dirty_roots)),
            reclassified=len(dirty),
            changed=tuple(changed_rows),
        )

    def _resolve_root(self, root_prefix: Prefix) -> FrozenSet[int]:
        if self._use_covering:
            return self._overlay.covering_origins(root_prefix)
        return self._overlay.exact_origins(root_prefix)

    def result(self) -> InferenceResult:
        """The full current inference (same row order as the pipeline)."""
        return InferenceResult.from_inferences(
            row for rir in self._context.rirs for row in self._rows[rir]
        )

    def digest(self) -> str:
        """Content digest of the current rows (for bit-identical checks)."""
        return result_digest(self.result())

    def cache_stats(self) -> CacheStats:
        """Merged memo counters across the per-region classifiers."""
        merged = CacheStats()
        for rir in self._context.rirs:
            merged.merge(self._classifiers[rir].stats())
        return merged


def clone_routing_table(table: RoutingTable) -> RoutingTable:
    """An independent copy of *table* (same routes, separate state).

    The differential harness mutates the copy in lockstep with the
    engine's overlay while the original stays frozen under the baseline
    context.
    """
    clone = RoutingTable()
    for prefix, origins in table.items():
        for origin in sorted(origins):
            clone.add_route(prefix, origin)
    return clone


def replay_into_table(
    table: RoutingTable,
    updates: Iterable[Union[Update, SequencedUpdate]],
) -> RoutingTable:
    """Apply a burst to a live routing table with overlay semantics.

    The differential harness keeps a :class:`RoutingTable` in lockstep
    with the engine's overlay, rebuilding from scratch to compare:
    announce adds the origin's route, withdraw evicts the prefix wholly
    (exactly :meth:`RoutingTable.withdraw`).
    """
    for item in updates:
        update = item.update if isinstance(item, SequencedUpdate) else item
        if isinstance(update, AnnounceUpdate):
            table.add_route(update.prefix, update.origin)
        else:
            table.withdraw(update.prefix)
    return table


def result_digest(result: InferenceResult) -> str:
    """Order-insensitive sha256 over every inference's decision surface.

    Two results digest equal exactly when every leaf carries the same
    category and origin evidence — the bit-identical contract the
    incremental path is held to.
    """
    rows = sorted(
        (
            inference.rir.name,
            str(inference.prefix),
            inference.category.name,
            tuple(sorted(inference.leaf_origins)),
            tuple(sorted(inference.root_origins)),
            tuple(sorted(inference.root_assigned_asns)),
        )
        for inference in result
    )
    return hashlib.sha256(repr(rows).encode("utf-8")).hexdigest()
