"""IRR hygiene analysis: route-object origins vs BGP reality.

Quantifies the §1 motivation — address circulation leaves routing
databases inaccurate.  For a prefix population, each announcement is
matched against the IRR: *consistent* (some covering route object names
the BGP origin), *stale* (route objects exist but none matches), or
*unregistered* (no route object at all).  Leased space, whose route
objects predate the lease, skews stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..bgp.rib import RoutingTable
from ..net import Prefix
from ..whois.routes import RouteRegistry

__all__ = ["irr_hygiene"]


@dataclass(frozen=True)
class IrrHygiene:
    """Announcement-level IRR consistency counts."""

    consistent: int
    stale: int
    unregistered: int

    @property
    def total(self) -> int:
        """All checked announcements."""
        return self.consistent + self.stale + self.unregistered

    @property
    def stale_share(self) -> float:
        """Stale announcements among those with route objects."""
        registered = self.consistent + self.stale
        return self.stale / registered if registered else float("nan")

    @property
    def consistent_share(self) -> float:
        """Consistent announcements among all checked."""
        return self.consistent / self.total if self.total else float("nan")


def irr_hygiene(
    prefixes: Iterable[Prefix],
    routing_table: RoutingTable,
    registry: RouteRegistry,
) -> IrrHygiene:
    """Check every announcement of *prefixes* against the IRR."""
    consistent = 0
    stale = 0
    unregistered = 0
    for prefix in prefixes:
        origins = routing_table.exact_origins(prefix)
        if not origins:
            continue
        registered = registry.covering_origins(prefix)
        for origin in origins:
            if not registered:
                unregistered += 1
            elif origin in registered:
                consistent += 1
            else:
                stale += 1
    return IrrHygiene(
        consistent=consistent, stale=stale, unregistered=unregistered
    )
