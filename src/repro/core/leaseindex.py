"""``LeaseIndex``: one pipeline run frozen into a queryable snapshot.

The batch pipeline answers "how much space is leased?"; the serving
layer answers "is *this* prefix leased, by whom, and why?" at
interactive rates.  :meth:`LeaseIndex.build` turns one
:class:`~repro.core.context.AnalysisContext` plus its
:class:`~repro.core.results.InferenceResult` into an immutable snapshot:

* a :class:`~repro.net.PrefixTrie` of every classified leaf for
  exact / longest-prefix / covering-chain lookups (the same
  :func:`~repro.net.resolve_covering_chain` semantics as the RFC 3912
  WHOIS server),
* inverted indexes by origin ASN, holder organisation, RIR, and
  category, and
* a per-leaf **evidence** payload — group, leaf/root BGP origins, the
  root organisation's assigned ASNs, and the relatedness verdict — so
  every answer is explainable without re-running the classifier.

The snapshot holds no reference to the context or the datasets it was
built from; hot-reload (:mod:`repro.serve.reload`) swaps whole
instances atomically.

The module lives in ``core`` (it is pure data over core results and
``net`` tries) so that both of its consumers — the ``serve`` layer and
the ``temporal`` time-travel index, which may never import ``serve`` —
can share one snapshot type; :mod:`repro.serve.index` re-exports it for
compatibility.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, cast

from ..net import AddressError, Prefix, PrefixTrie, resolve_covering_chain
from .context import AnalysisContext
from .results import InferenceResult, LeafInference

__all__ = ["DeltaLeaseIndex", "LeaseIndex", "MAX_LISTING", "parse_asn_text"]

#: Listing endpoints (ASN / org) cap their prefix lists at this many
#: entries and set ``"truncated": true`` — a bounded response no matter
#: how large the snapshot grows.
MAX_LISTING = 1000

Payload = Dict[str, object]


def parse_asn_text(text: str) -> Optional[int]:
    """Parse ``"64500"`` or ``"AS64500"``; None when malformed."""
    text = text.strip()
    if text.upper().startswith("AS"):
        text = text[2:]
    if not text.isdigit():
        return None
    return int(text)


def _relatedness_verdict(
    context: AnalysisContext, inference: LeafInference
) -> Optional[str]:
    """The human-readable §5.2 relatedness outcome behind the category."""
    category = inference.category.name
    if category == "UNUSED":
        return "not applicable: neither leaf nor root is originated"
    if category == "AGGREGATED_CUSTOMER":
        return "not applicable: leaf not originated, covered by the root"
    if category == "ISP_CUSTOMER":
        pair = context.related_pair(
            inference.leaf_origins, inference.root_assigned_asns
        )
        if pair is not None:
            return f"leaf origin AS{pair[0]} related to root-assigned AS{pair[1]}"
        return "related (pair unavailable)"  # pragma: no cover - defensive
    if category == "LEASED_GROUP3":
        return "no leaf origin related to the root organisation's assigned ASNs"
    targets = inference.root_assigned_asns | inference.root_origins
    if category == "DELEGATED_CUSTOMER":
        pair = context.related_pair(inference.leaf_origins, targets)
        if pair is not None:
            return f"leaf origin AS{pair[0]} related to root-side AS{pair[1]}"
        return "related (pair unavailable)"  # pragma: no cover - defensive
    return (
        "no leaf origin related to the root's assigned or originating ASNs"
    )


class LeaseIndex:
    """An immutable, queryable snapshot of one classification run."""

    def __init__(
        self,
        trie: PrefixTrie[Payload],
        by_origin: Dict[int, Tuple[Prefix, ...]],
        by_org: Dict[str, Tuple[Prefix, ...]],
        by_rir: Dict[str, int],
        by_category: Dict[str, int],
        leased: int,
    ) -> None:
        self._trie = trie
        self._by_origin = by_origin
        self._by_org = by_org
        self._by_rir = by_rir
        self._by_category = by_category
        self._leased = leased

    @classmethod
    def build(
        cls, context: AnalysisContext, result: InferenceResult
    ) -> "LeaseIndex":
        """Freeze *result* (classified with *context*) into a snapshot.

        Evidence — including the relatedness verdict, which needs the
        context's business-family sets — is computed here, once; the
        finished index no longer references the context.
        """
        trie: PrefixTrie[Payload] = PrefixTrie()
        by_origin: Dict[int, List[Prefix]] = {}
        by_org: Dict[str, List[Prefix]] = {}
        by_rir: Dict[str, int] = {}
        by_category: Dict[str, int] = {}
        leased = 0
        for inference in result:
            payload = inference.to_payload()
            evidence = payload["evidence"]
            assert isinstance(evidence, dict)
            evidence["relatedness"] = _relatedness_verdict(context, inference)
            trie.insert(inference.prefix, payload)
            for asn in inference.leaf_origins:
                by_origin.setdefault(asn, []).append(inference.prefix)
            if inference.holder_org_id:
                by_org.setdefault(
                    inference.holder_org_id.lower(), []
                ).append(inference.prefix)
            by_rir[inference.rir.name] = by_rir.get(inference.rir.name, 0) + 1
            code = inference.category.name
            by_category[code] = by_category.get(code, 0) + 1
            if inference.is_leased:
                leased += 1
        return cls(
            trie=trie,
            by_origin={
                asn: tuple(sorted(prefixes))
                for asn, prefixes in by_origin.items()
            },
            by_org={
                org: tuple(sorted(prefixes))
                for org, prefixes in by_org.items()
            },
            by_rir=by_rir,
            by_category=by_category,
            leased=leased,
        )

    # -- size -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._trie)

    # -- prefix lookups ---------------------------------------------------
    def exact(self, prefix: Prefix) -> Optional[Payload]:
        """The classified leaf stored at exactly *prefix*, or None."""
        return self._patched(prefix, self._trie.exact(prefix))

    def _patched(
        self, prefix: Prefix, payload: Optional[Payload]
    ) -> Optional[Payload]:
        """The payload to surface for *prefix* (delta overlays override).

        The base index surfaces trie payloads as stored; a delta layer
        substitutes its patched payloads here so every lookup path —
        exact, resolve, listings — sees one consistent view without
        copying the trie.
        """
        return payload

    def resolve(self, prefix: Prefix) -> Optional[Payload]:
        """Exact-or-longest-prefix answer with the covering chain.

        Returns ``None`` when no classified leaf covers *prefix*;
        otherwise a payload naming the match kind (``exact`` or
        ``longest-prefix``), the matched leaf's full answer, and the
        covering chain least-specific first.
        """
        best, chain = resolve_covering_chain(self._trie, prefix)
        if best is None:
            return None
        match_prefix, answer = best
        patched = self._patched(match_prefix, answer)
        assert patched is not None  # the trie held a payload for it
        return {
            "query": str(prefix),
            "match": "exact" if match_prefix == prefix else "longest-prefix",
            "matched_prefix": str(match_prefix),
            "answer": patched,
            "covering": [
                {
                    "prefix": str(chain_prefix),
                    "category": entry["category"],
                    "leased": entry["leased"],
                }
                for chain_prefix, chain_payload in chain
                for entry in (self._patched(chain_prefix, chain_payload),)
                if entry is not None
            ],
        }

    def resolve_text(self, text: str) -> Tuple[int, Payload]:
        """Resolve a textual CIDR query into ``(status, payload)``.

        Status is HTTP-shaped: 200 with the answer, 400 for a malformed
        query, 404 when nothing covers it.
        """
        try:
            prefix = Prefix.parse(text)
        except AddressError:
            return 400, {"error": f"bad prefix: {text!r}"}
        resolved = self.resolve(prefix)
        if resolved is None:
            return 404, {
                "error": "no classified prefix covers the query",
                "query": str(prefix),
            }
        return 200, resolved

    # -- inverted lookups -------------------------------------------------
    def by_asn(
        self, asn: int, limit: Optional[int] = None
    ) -> Optional[Payload]:
        """Every leaf originated by *asn*, with category tallies."""
        prefixes = self._by_origin.get(asn)
        if not prefixes:
            return None
        return self._listing({"asn": asn}, prefixes, limit)

    def by_org(
        self, handle: str, limit: Optional[int] = None
    ) -> Optional[Payload]:
        """Every leaf whose *holder* (root organisation) is *handle*."""
        prefixes = self._by_org.get(handle.strip().lower())
        if not prefixes:
            return None
        return self._listing({"org": handle.strip(), "role": "holder"},
                             prefixes, limit)

    def _listing(
        self,
        head: Payload,
        prefixes: Tuple[Prefix, ...],
        limit: Optional[int] = None,
    ) -> Payload:
        cap = MAX_LISTING if limit is None else min(limit, MAX_LISTING)
        categories: Dict[str, int] = {}
        leased = 0
        answers: List[Payload] = []
        for prefix in prefixes:
            payload = self.exact(prefix)
            assert payload is not None  # inverted indexes mirror the trie
            category = str(payload["category_code"])
            categories[category] = categories.get(category, 0) + 1
            if payload["leased"]:
                leased += 1
            if len(answers) < cap:
                answers.append(payload)
        result = dict(head)
        result.update(
            {
                "total": len(prefixes),
                "leased": leased,
                "categories": categories,
                "truncated": len(prefixes) > cap,
                "answers": answers,
            }
        )
        return result

    # -- snapshot-wide views ----------------------------------------------
    def stats(self) -> Payload:
        """Aggregate counts for ``/v1/stats`` (JSON-ready)."""
        return {
            "leaves": len(self._trie),
            "leased": self._leased,
            "by_rir": dict(sorted(self._by_rir.items())),
            "by_category": dict(sorted(self._by_category.items())),
            "origins": len(self._by_origin),
            "orgs": len(self._by_org),
        }

    def prefixes(self) -> List[Prefix]:
        """Every classified leaf prefix, sorted (loadgen sampling)."""
        return sorted(self._trie.keys())

    def asns(self) -> List[int]:
        """Every originating ASN, sorted (loadgen sampling)."""
        return sorted(self._by_origin)

    def orgs(self) -> List[str]:
        """Every holder organisation handle, sorted (loadgen sampling)."""
        return sorted(self._by_org)

    # -- delta-layer accessors ---------------------------------------------
    # Read-only views over the inverted indexes, for machinery that
    # derives new generations from this one (the temporal index) without
    # reaching into name-mangled internals.
    def origin_prefixes(self, asn: int) -> Tuple[Prefix, ...]:
        """The by-origin inverted-index row for *asn* (empty when absent)."""
        return self._by_origin.get(asn, ())

    def origin_rows(self) -> Dict[int, Tuple[Prefix, ...]]:
        """A copy of the full by-origin inverted index."""
        return dict(self._by_origin)

    def category_tallies(self) -> Dict[str, int]:
        """A copy of the per-category leaf counts."""
        return dict(self._by_category)

    @property
    def leased_count(self) -> int:
        """How many indexed leaves are classified as leased."""
        return self._leased

    # -- delta generations -------------------------------------------------
    def delta_base(self) -> "LeaseIndex":
        """The index whose trie delta layers share (public view)."""
        return self._delta_base()

    def payload_overrides(self) -> Dict[Prefix, Payload]:
        """A copy of the payload overrides patched over the base trie.

        Empty for a base index; a delta generation returns its full
        (flattened) override map.  The temporal index replays these when
        materializing historical epochs from a checkpoint.
        """
        return dict(self._delta_overrides())

    def _delta_base(self) -> "LeaseIndex":
        """The index whose trie a delta layer should share (self here)."""
        return self

    def _delta_overrides(self) -> Dict[Prefix, Payload]:
        """Prior payload overrides to carry forward (none here)."""
        return {}

    def with_updates(
        self, context: AnalysisContext, changes: Iterable[LeafInference]
    ) -> "DeltaLeaseIndex":
        """A new generation patching *changes* over this snapshot.

        O(changes), not O(snapshot): the leaf trie is **shared** with
        this index and only the changed leaves' payloads, the affected
        inverted-index rows, and the category/leased tallies are
        recomputed.  Applying updates to an already-patched generation
        flattens onto the original base index, so override chains never
        grow deeper than one level.

        Streaming churn moves BGP evidence, never the WHOIS-derived
        leaf set — a change naming an unindexed prefix raises
        :class:`KeyError` rather than silently growing the snapshot.
        """
        overrides = dict(self._delta_overrides())
        by_origin = dict(self._by_origin)
        by_category = dict(self._by_category)
        leased = self._leased
        for inference in changes:
            old = self.exact(inference.prefix)
            if old is None:
                raise KeyError(
                    f"update for unindexed leaf {inference.prefix}; delta "
                    "generations cannot add leaves — rebuild the snapshot"
                )
            payload = inference.to_payload()
            evidence = payload["evidence"]
            assert isinstance(evidence, dict)
            evidence["relatedness"] = _relatedness_verdict(context, inference)
            old_code = str(old["category_code"])
            new_code = inference.category.name
            if old_code != new_code:
                remaining = by_category.get(old_code, 0) - 1
                if remaining:
                    by_category[old_code] = remaining
                else:
                    by_category.pop(old_code, None)
                by_category[new_code] = by_category.get(new_code, 0) + 1
            leased += int(inference.is_leased) - int(bool(old["leased"]))
            old_evidence = old["evidence"]
            assert isinstance(old_evidence, dict)
            old_origins = frozenset(
                cast(Iterable[int], old_evidence["leaf_origins"])
            )
            for asn in old_origins - inference.leaf_origins:
                pruned = tuple(
                    entry
                    for entry in by_origin[asn]
                    if entry != inference.prefix
                )
                if pruned:
                    by_origin[asn] = pruned
                else:
                    del by_origin[asn]
            for asn in inference.leaf_origins - old_origins:
                by_origin[asn] = tuple(
                    sorted(by_origin.get(asn, ()) + (inference.prefix,))
                )
            overrides[inference.prefix] = payload
        return DeltaLeaseIndex(
            base=self._delta_base(),
            overrides=overrides,
            by_origin=by_origin,
            by_category=by_category,
            leased=leased,
        )


class DeltaLeaseIndex(LeaseIndex):
    """One delta generation: a base snapshot plus patched leaf payloads.

    Shares the base index's trie and the static inverted indexes (RIR
    and holder organisation never move under BGP churn); carries its own
    by-origin index, tallies, and a flat payload-override map consulted
    by every lookup through :meth:`LeaseIndex._patched`.
    """

    def __init__(
        self,
        base: LeaseIndex,
        overrides: Dict[Prefix, Payload],
        by_origin: Dict[int, Tuple[Prefix, ...]],
        by_category: Dict[str, int],
        leased: int,
    ) -> None:
        super().__init__(
            trie=base._trie,
            by_origin=by_origin,
            by_org=base._by_org,
            by_rir=base._by_rir,
            by_category=by_category,
            leased=leased,
        )
        self._base = base
        self._overrides = overrides

    def _delta_base(self) -> LeaseIndex:
        return self._base

    def _delta_overrides(self) -> Dict[Prefix, Payload]:
        return self._overrides

    def _patched(
        self, prefix: Prefix, payload: Optional[Payload]
    ) -> Optional[Payload]:
        override = self._overrides.get(prefix)
        return payload if override is None else override
