"""Legacy address-space lease inference (the paper's §7/§8 future work).

Legacy space predates the RIRs and has no defined portability, so the
paper's methodology deliberately skips it — its 138 legacy false
negatives (§6.2) are exactly the blocks this module targets.  Because
the portable/non-portable root-leaf structure is unavailable, the
extension combines the two remaining signals:

* **registration structure** — a legacy block nested under another
  registered block whose holder organisation differs, or whose
  maintainers are disjoint from the parent's (the Prehn-style signal);
* **routing** — the block is originated in BGP by an AS unrelated to the
  parent organisation's registered ASNs and to the parent's BGP origin
  (the paper's group-3/4 test, §5.2).

A legacy block is inferred leased when the routing signal fires; the
registration signal alone marks it *suspected* (inactive-lease
analogue).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..bgp.rib import RoutingTable
from ..net import Prefix, PrefixTrie
from ..rir import RIR
from ..whois.database import WhoisCollection, WhoisDatabase
from ..whois.objects import InetnumRecord
from .allocation_tree import DEFAULT_MAX_LEAF_LENGTH
from .context import AnalysisContext
from .relatedness import RelatednessOracle
from .sharding import effective_workers, run_sharded

__all__ = [
    "LegacyVerdict",
    "LegacyInference",
    "LegacyLeasePipeline",
    "infer_legacy_leases",
]


class LegacyVerdict(enum.Enum):
    """Outcome for one legacy block."""

    LEASED = "leased"  # routing signal: unrelated active origin
    SUSPECTED = "suspected"  # registration signal only (not originated)
    IN_USE = "in-use"  # originated by a related AS
    UNUSED = "unused"  # no signal at all


@dataclass(frozen=True)
class LegacyInference:
    """The verdict for one legacy block with its evidence."""

    prefix: Prefix
    verdict: LegacyVerdict
    record: InetnumRecord
    parent_prefix: Optional[Prefix]
    parent_record: Optional[InetnumRecord]
    origins: frozenset

    @property
    def is_leased(self) -> bool:
        """True for the active-lease verdict."""
        return self.verdict is LegacyVerdict.LEASED


def infer_legacy_leases(
    whois: WhoisCollection,
    routing_table: RoutingTable,
    oracle: RelatednessOracle,
    max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
) -> List[LegacyInference]:
    """Classify every registered legacy block across all registries.

    This is the **frozen reference engine** (per-bit trie, per-block
    oracle queries).  :class:`LegacyLeasePipeline` runs the same
    classification from the shared :class:`AnalysisContext`, serially or
    sharded, with bit-identical output; this function is the executable
    specification its equivalence tests diff against.
    """
    results: List[LegacyInference] = []
    for database in whois:
        results.extend(
            _infer_region(database, routing_table, oracle, max_leaf_length)
        )
    return results


def _infer_region(
    database: WhoisDatabase,
    routing_table: RoutingTable,
    oracle: RelatednessOracle,
    max_leaf_length: int,
) -> List[LegacyInference]:
    # Index every registered block (legacy or not) so legacy blocks can
    # find their most-specific registered parent.
    trie: PrefixTrie[InetnumRecord] = PrefixTrie()
    legacy_prefixes: Dict[Prefix, InetnumRecord] = {}
    for record in database.inetnums:
        for prefix in record.range.to_prefixes():
            if prefix.length > max_leaf_length:
                continue
            if trie.exact(prefix) is None:
                trie.insert(prefix, record)
            if record.is_legacy:
                legacy_prefixes.setdefault(prefix, record)

    results: List[LegacyInference] = []
    for prefix, record in sorted(legacy_prefixes.items()):
        parent = trie.parent(prefix)
        parent_prefix, parent_record = parent if parent else (None, None)
        origins = routing_table.exact_origins(prefix)
        verdict = _classify(
            database, oracle, routing_table, record, parent_record,
            parent_prefix, origins,
        )
        results.append(
            LegacyInference(
                prefix=prefix,
                verdict=verdict,
                record=record,
                parent_prefix=parent_prefix,
                parent_record=parent_record,
                origins=frozenset(origins),
            )
        )
    return results


def _classify(
    database: WhoisDatabase,
    oracle: RelatednessOracle,
    routing_table: RoutingTable,
    record: InetnumRecord,
    parent_record: Optional[InetnumRecord],
    parent_prefix: Optional[Prefix],
    origins: frozenset,
) -> LegacyVerdict:
    registration_signal = _registration_differs(record, parent_record)
    if not origins:
        return (
            LegacyVerdict.SUSPECTED
            if registration_signal
            else LegacyVerdict.UNUSED
        )
    related_targets = set()
    if parent_record is not None and parent_record.org_id:
        related_targets.update(database.asns_of_org(parent_record.org_id))
    if record.org_id:
        related_targets.update(database.asns_of_org(record.org_id))
    if parent_prefix is not None:
        related_targets.update(routing_table.covering_origins(parent_prefix))
    if related_targets and oracle.any_related(origins, related_targets):
        return LegacyVerdict.IN_USE
    if registration_signal or not related_targets:
        return LegacyVerdict.LEASED
    return LegacyVerdict.LEASED


def _registration_differs(
    record: InetnumRecord, parent: Optional[InetnumRecord]
) -> bool:
    if parent is None:
        return False
    if record.org_id and parent.org_id and record.org_id != parent.org_id:
        return True
    if record.maintainers and parent.maintainers:
        return set(record.maintainers).isdisjoint(parent.maintainers)
    return False


# -- fast engine ----------------------------------------------------------
#
# The fast engine splits the reference loop into a parent-side scan and a
# context-only verdict step.  The scan resolves each legacy block's
# most-specific registered parent with a sorted enclosing-interval stack
# (prefixes nest or are disjoint, so the stack top after popping closed
# intervals *is* ``trie.parent``) and reduces every block to a compact
# key.  Keys are what ships to worker processes; verdicts come entirely
# from the shared :class:`AnalysisContext`, so serial and sharded runs
# execute the identical code path.

#: ``(prefix, record_org, parent_prefix, parent_org, registration_signal)``
_LegacyKey = Tuple[Prefix, Optional[str], Optional[Prefix], Optional[str], bool]


def _scan_region(
    database: WhoisDatabase, max_leaf_length: int
) -> List[Tuple[Prefix, InetnumRecord, Optional[Prefix], Optional[InetnumRecord]]]:
    """Replicate the reference trie walk with one sorted pass.

    First-wins dedup per prefix (matching ``trie.insert`` guarded by
    ``trie.exact``) for all records, and separately for legacy records
    (matching ``legacy_prefixes.setdefault``); parent = most-specific
    strict ancestor among all registered prefixes.
    """
    nodes: Dict[Prefix, InetnumRecord] = {}
    legacy: Dict[Prefix, InetnumRecord] = {}
    for record in database.inetnums:
        for prefix in record.range.to_prefixes():
            if prefix.length > max_leaf_length:
                continue
            if prefix not in nodes:
                nodes[prefix] = record
            if record.is_legacy and prefix not in legacy:
                legacy[prefix] = record

    parents: Dict[Prefix, Tuple[Optional[Prefix], Optional[InetnumRecord]]] = {}
    stack: List[Tuple[int, Prefix, InetnumRecord]] = []
    for prefix in sorted(nodes):
        network = prefix.network
        while stack and network > stack[-1][0]:
            stack.pop()
        if prefix in legacy:
            if stack:
                parents[prefix] = (stack[-1][1], stack[-1][2])
            else:
                parents[prefix] = (None, None)
        stack.append((prefix.last_address, prefix, nodes[prefix]))

    return [
        (prefix, legacy[prefix], parents[prefix][0], parents[prefix][1])
        for prefix in sorted(legacy)
    ]


def _legacy_rows(
    context: AnalysisContext, rir: RIR, keys: Tuple[_LegacyKey, ...]
) -> List[Tuple[str, Tuple[int, ...]]]:
    """Verdict rows for a slice of keys, entirely from the context."""
    assigned = context.assigned.get(rir, {})
    targets_memo: Dict[
        Tuple[Optional[str], Optional[str], Optional[Prefix]], FrozenSet[int]
    ] = {}
    rows: List[Tuple[str, Tuple[int, ...]]] = []
    for prefix, record_org, parent_prefix, parent_org, signal in keys:
        origins = context.rib.exact_origins(prefix)
        if not origins:
            verdict = (
                LegacyVerdict.SUSPECTED if signal else LegacyVerdict.UNUSED
            )
        else:
            memo_key = (record_org, parent_org, parent_prefix)
            targets = targets_memo.get(memo_key)
            if targets is None:
                pool = set()
                if parent_org:
                    pool.update(assigned.get(parent_org, ()))
                if record_org:
                    pool.update(assigned.get(record_org, ()))
                if parent_prefix is not None:
                    pool.update(context.rib.covering_origins(parent_prefix))
                targets = frozenset(pool)
                targets_memo[memo_key] = targets
            if targets and context.any_related(origins, targets):
                verdict = LegacyVerdict.IN_USE
            else:
                verdict = LegacyVerdict.LEASED
        rows.append((verdict.name, tuple(sorted(origins))))
    return rows


def _legacy_shard(payload, shard):
    """Module-level shard runner for :func:`run_sharded`."""
    context, units = payload
    rir, keys = units[shard.work_index]
    return _legacy_rows(context, rir, keys[shard.start : shard.stop])


class LegacyLeasePipeline:
    """Context-backed legacy inference with serial and sharded engines.

    Mirrors ``LeaseInferencePipeline``: :meth:`run` is the fast path
    (``workers``/``shard_size`` select process-parallel sharding),
    :meth:`run_reference` delegates to the frozen
    :func:`infer_legacy_leases`, and both produce bit-identical output.
    """

    def __init__(
        self,
        whois: WhoisCollection,
        routing_table: RoutingTable,
        oracle: RelatednessOracle,
        max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
        context: Optional[AnalysisContext] = None,
    ) -> None:
        self.whois = whois
        self.routing_table = routing_table
        self.oracle = oracle
        self.max_leaf_length = max_leaf_length
        self.context = context

    def _ensure_context(self) -> AnalysisContext:
        if self.context is None:
            self.context = AnalysisContext.build(
                self.whois,
                self.routing_table,
                self.oracle.relationships,
                self.oracle.as2org,
                self.max_leaf_length,
            )
        return self.context

    def run(
        self, workers: int = 1, shard_size: Optional[int] = None
    ) -> List[LegacyInference]:
        """Classify every legacy block; bit-equal to the reference."""
        context = self._ensure_context()
        units = []
        for database in self.whois:
            scan = _scan_region(database, self.max_leaf_length)
            keys = tuple(
                (
                    prefix,
                    record.org_id or None,
                    parent_prefix,
                    (parent_record.org_id or None) if parent_record else None,
                    _registration_differs(record, parent_record),
                )
                for prefix, record, parent_prefix, parent_record in scan
            )
            units.append((database.rir, scan, keys))

        total = sum(len(keys) for _rir, _scan, keys in units)
        pool_size = effective_workers(workers, total, shard_size)
        if pool_size <= 1:
            rows_per_unit = [
                _legacy_rows(context, rir, keys)
                for rir, _scan, keys in units
            ]
        else:
            payload = (
                context,
                tuple((rir, keys) for rir, _scan, keys in units),
            )
            shards, outputs = run_sharded(
                payload,
                _legacy_shard,
                [len(keys) for _rir, _scan, keys in units],
                pool_size,
                shard_size,
            )
            rows_per_unit = [[] for _ in units]
            for shard, rows in zip(shards, outputs):
                rows_per_unit[shard.work_index].extend(rows)

        results: List[LegacyInference] = []
        for (rir, scan, _keys), rows in zip(units, rows_per_unit):
            for (prefix, record, parent_prefix, parent_record), (
                verdict_name,
                origins,
            ) in zip(scan, rows):
                results.append(
                    LegacyInference(
                        prefix=prefix,
                        verdict=LegacyVerdict[verdict_name],
                        record=record,
                        parent_prefix=parent_prefix,
                        parent_record=parent_record,
                        origins=frozenset(origins),
                    )
                )
        return results

    def run_reference(self) -> List[LegacyInference]:
        """The frozen per-bit-trie engine (executable specification)."""
        return infer_legacy_leases(
            self.whois, self.routing_table, self.oracle, self.max_leaf_length
        )
