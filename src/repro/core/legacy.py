"""Legacy address-space lease inference (the paper's §7/§8 future work).

Legacy space predates the RIRs and has no defined portability, so the
paper's methodology deliberately skips it — its 138 legacy false
negatives (§6.2) are exactly the blocks this module targets.  Because
the portable/non-portable root-leaf structure is unavailable, the
extension combines the two remaining signals:

* **registration structure** — a legacy block nested under another
  registered block whose holder organisation differs, or whose
  maintainers are disjoint from the parent's (the Prehn-style signal);
* **routing** — the block is originated in BGP by an AS unrelated to the
  parent organisation's registered ASNs and to the parent's BGP origin
  (the paper's group-3/4 test, §5.2).

A legacy block is inferred leased when the routing signal fires; the
registration signal alone marks it *suspected* (inactive-lease
analogue).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..bgp.rib import RoutingTable
from ..net import Prefix, PrefixTrie
from ..whois.database import WhoisCollection, WhoisDatabase
from ..whois.objects import InetnumRecord
from .allocation_tree import DEFAULT_MAX_LEAF_LENGTH
from .relatedness import RelatednessOracle

__all__ = ["LegacyVerdict", "LegacyInference", "infer_legacy_leases"]


class LegacyVerdict(enum.Enum):
    """Outcome for one legacy block."""

    LEASED = "leased"  # routing signal: unrelated active origin
    SUSPECTED = "suspected"  # registration signal only (not originated)
    IN_USE = "in-use"  # originated by a related AS
    UNUSED = "unused"  # no signal at all


@dataclass(frozen=True)
class LegacyInference:
    """The verdict for one legacy block with its evidence."""

    prefix: Prefix
    verdict: LegacyVerdict
    record: InetnumRecord
    parent_prefix: Optional[Prefix]
    parent_record: Optional[InetnumRecord]
    origins: frozenset

    @property
    def is_leased(self) -> bool:
        """True for the active-lease verdict."""
        return self.verdict is LegacyVerdict.LEASED


def infer_legacy_leases(
    whois: WhoisCollection,
    routing_table: RoutingTable,
    oracle: RelatednessOracle,
    max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
) -> List[LegacyInference]:
    """Classify every registered legacy block across all registries."""
    results: List[LegacyInference] = []
    for database in whois:
        results.extend(
            _infer_region(database, routing_table, oracle, max_leaf_length)
        )
    return results


def _infer_region(
    database: WhoisDatabase,
    routing_table: RoutingTable,
    oracle: RelatednessOracle,
    max_leaf_length: int,
) -> List[LegacyInference]:
    # Index every registered block (legacy or not) so legacy blocks can
    # find their most-specific registered parent.
    trie: PrefixTrie[InetnumRecord] = PrefixTrie()
    legacy_prefixes: Dict[Prefix, InetnumRecord] = {}
    for record in database.inetnums:
        for prefix in record.range.to_prefixes():
            if prefix.length > max_leaf_length:
                continue
            if trie.exact(prefix) is None:
                trie.insert(prefix, record)
            if record.is_legacy:
                legacy_prefixes.setdefault(prefix, record)

    results: List[LegacyInference] = []
    for prefix, record in sorted(legacy_prefixes.items()):
        parent = trie.parent(prefix)
        parent_prefix, parent_record = parent if parent else (None, None)
        origins = routing_table.exact_origins(prefix)
        verdict = _classify(
            database, oracle, routing_table, record, parent_record,
            parent_prefix, origins,
        )
        results.append(
            LegacyInference(
                prefix=prefix,
                verdict=verdict,
                record=record,
                parent_prefix=parent_prefix,
                parent_record=parent_record,
                origins=frozenset(origins),
            )
        )
    return results


def _classify(
    database: WhoisDatabase,
    oracle: RelatednessOracle,
    routing_table: RoutingTable,
    record: InetnumRecord,
    parent_record: Optional[InetnumRecord],
    parent_prefix: Optional[Prefix],
    origins: frozenset,
) -> LegacyVerdict:
    registration_signal = _registration_differs(record, parent_record)
    if not origins:
        return (
            LegacyVerdict.SUSPECTED
            if registration_signal
            else LegacyVerdict.UNUSED
        )
    related_targets = set()
    if parent_record is not None and parent_record.org_id:
        related_targets.update(database.asns_of_org(parent_record.org_id))
    if record.org_id:
        related_targets.update(database.asns_of_org(record.org_id))
    if parent_prefix is not None:
        related_targets.update(routing_table.covering_origins(parent_prefix))
    if related_targets and oracle.any_related(origins, related_targets):
        return LegacyVerdict.IN_USE
    if registration_signal or not related_targets:
        return LegacyVerdict.LEASED
    return LegacyVerdict.LEASED


def _registration_differs(
    record: InetnumRecord, parent: Optional[InetnumRecord]
) -> bool:
    if parent is None:
        return False
    if record.org_id and parent.org_id and record.org_id != parent.org_id:
        return True
    if record.maintainers and parent.maintainers:
        return set(record.maintainers).isdisjoint(parent.maintainers)
    return False
