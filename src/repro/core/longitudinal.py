"""Longitudinal lease-market dynamics (the paper's §8 future work).

Compares lease inferences from two measurement epochs and quantifies
churn: new leases, ended leases, persisting leases, and originator
turnover on persisting leases (a re-lease of the same block to a new
lessee, the pattern Fig. 3 shows for one prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from ..net import Prefix
from ..rir import RIR
from .results import InferenceResult

__all__ = ["LeaseChurn", "compare_epochs"]


@dataclass
class LeaseChurn:
    """Lease-set differences between two inference epochs."""

    new_leases: FrozenSet[Prefix]
    ended_leases: FrozenSet[Prefix]
    persisting: FrozenSet[Prefix]
    #: Persisting leases whose origin AS set changed (re-leases).
    re_leased: FrozenSet[Prefix]
    by_rir: Dict[RIR, "RegionChurn"] = field(default_factory=dict)

    @property
    def turnover_rate(self) -> float:
        """Ended leases as a fraction of the earlier epoch's leases."""
        earlier = len(self.ended_leases) + len(self.persisting)
        return len(self.ended_leases) / earlier if earlier else float("nan")

    @property
    def growth_rate(self) -> float:
        """Net change in lease count relative to the earlier epoch."""
        earlier = len(self.ended_leases) + len(self.persisting)
        later = len(self.new_leases) + len(self.persisting)
        return (later - earlier) / earlier if earlier else float("nan")


@dataclass(frozen=True)
class RegionChurn:
    """Per-region churn counts."""

    rir: RIR
    new: int
    ended: int
    persisting: int
    re_leased: int


def compare_epochs(
    earlier: InferenceResult, later: InferenceResult
) -> LeaseChurn:
    """Diff the leased sets of two epochs, with per-region breakdowns."""
    earlier_leased = earlier.leased_prefixes()
    later_leased = later.leased_prefixes()
    new = later_leased - earlier_leased
    ended = earlier_leased - later_leased
    persisting = earlier_leased & later_leased

    re_leased = frozenset(
        prefix
        for prefix in persisting
        if _origins(earlier, prefix) != _origins(later, prefix)
    )

    by_rir: Dict[RIR, RegionChurn] = {}
    for rir in RIR:
        region_earlier = {
            inf.prefix for inf in earlier.leased(rir)
        }
        region_later = {inf.prefix for inf in later.leased(rir)}
        region_persisting = region_earlier & region_later
        by_rir[rir] = RegionChurn(
            rir=rir,
            new=len(region_later - region_earlier),
            ended=len(region_earlier - region_later),
            persisting=len(region_persisting),
            re_leased=len(region_persisting & re_leased),
        )
    return LeaseChurn(
        new_leases=frozenset(new),
        ended_leases=frozenset(ended),
        persisting=frozenset(persisting),
        re_leased=re_leased,
        by_rir=by_rir,
    )


def _origins(result: InferenceResult, prefix: Prefix) -> FrozenSet[int]:
    inference = result.lookup(prefix)
    return inference.leaf_origins if inference else frozenset()
