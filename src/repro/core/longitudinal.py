"""Longitudinal lease-market dynamics (the paper's §8 future work).

Compares lease inferences from two measurement epochs and quantifies
churn: new leases, ended leases, persisting leases, and originator
turnover on persisting leases (a re-lease of the same block to a new
lessee, the pattern Fig. 3 shows for one prefix).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..net import Prefix
from ..rir import RIR
from .results import InferenceResult
from .sharding import effective_workers, run_sharded

__all__ = ["LeaseChurn", "compare_epochs", "compare_epochs_fast"]

_EMPTY: FrozenSet[int] = frozenset()


@dataclass
class LeaseChurn:
    """Lease-set differences between two inference epochs."""

    new_leases: FrozenSet[Prefix]
    ended_leases: FrozenSet[Prefix]
    persisting: FrozenSet[Prefix]
    #: Persisting leases whose origin AS set changed (re-leases).
    re_leased: FrozenSet[Prefix]
    by_rir: Dict[RIR, "RegionChurn"] = field(default_factory=dict)

    @property
    def turnover_rate(self) -> float:
        """Ended leases as a fraction of the earlier epoch's leases."""
        earlier = len(self.ended_leases) + len(self.persisting)
        return len(self.ended_leases) / earlier if earlier else float("nan")

    @property
    def growth_rate(self) -> float:
        """Net change in lease count relative to the earlier epoch."""
        earlier = len(self.ended_leases) + len(self.persisting)
        later = len(self.new_leases) + len(self.persisting)
        return (later - earlier) / earlier if earlier else float("nan")


@dataclass(frozen=True)
class RegionChurn:
    """Per-region churn counts."""

    rir: RIR
    new: int
    ended: int
    persisting: int
    re_leased: int


def compare_epochs(
    earlier: InferenceResult, later: InferenceResult
) -> LeaseChurn:
    """Diff the leased sets of two epochs, with per-region breakdowns.

    This is the **frozen reference engine** (per-region list scans,
    per-prefix lookups); :func:`compare_epochs_fast` computes the same
    churn with single-pass views and optional sharding, and is tested
    for equality against it.
    """
    earlier_leased = earlier.leased_prefixes()
    later_leased = later.leased_prefixes()
    new = later_leased - earlier_leased
    ended = earlier_leased - later_leased
    persisting = earlier_leased & later_leased

    re_leased = frozenset(
        prefix
        for prefix in persisting
        if _origins(earlier, prefix) != _origins(later, prefix)
    )

    by_rir: Dict[RIR, RegionChurn] = {}
    for rir in RIR:
        region_earlier = {
            inf.prefix for inf in earlier.leased(rir)
        }
        region_later = {inf.prefix for inf in later.leased(rir)}
        region_persisting = region_earlier & region_later
        by_rir[rir] = RegionChurn(
            rir=rir,
            new=len(region_later - region_earlier),
            ended=len(region_earlier - region_later),
            persisting=len(region_persisting),
            re_leased=len(region_persisting & re_leased),
        )
    return LeaseChurn(
        new_leases=frozenset(new),
        ended_leases=frozenset(ended),
        persisting=frozenset(persisting),
        re_leased=re_leased,
        by_rir=by_rir,
    )


def _origins(result: InferenceResult, prefix: Prefix) -> FrozenSet[int]:
    inference = result.lookup(prefix)
    return inference.leaf_origins if inference else frozenset()


# -- fast engine ----------------------------------------------------------

def _epoch_view(
    result: InferenceResult,
) -> Tuple[FrozenSet[Prefix], Dict[RIR, Set[Prefix]], Dict[Prefix, FrozenSet[int]]]:
    """One pass over a result: leased set, per-region leased sets, and the
    last-wins prefix → origins map (``lookup`` semantics)."""
    leased: Set[Prefix] = set()
    by_rir: Dict[RIR, Set[Prefix]] = {rir: set() for rir in RIR}
    origins: Dict[Prefix, FrozenSet[int]] = {}
    for inference in result:
        origins[inference.prefix] = inference.leaf_origins
        if inference.is_leased:
            leased.add(inference.prefix)
            by_rir[inference.rir].add(inference.prefix)
    return frozenset(leased), by_rir, origins


def _releases_rows(
    persisting: Tuple[Prefix, ...],
    earlier_origins: Dict[Prefix, FrozenSet[int]],
    later_origins: Dict[Prefix, FrozenSet[int]],
) -> Tuple[Prefix, ...]:
    """The persisting prefixes whose origin AS set changed."""
    return tuple(
        prefix
        for prefix in persisting
        if earlier_origins.get(prefix, _EMPTY)
        != later_origins.get(prefix, _EMPTY)
    )


def _releases_shard(payload, shard):
    """Module-level shard runner for :func:`run_sharded`."""
    persisting, earlier_origins, later_origins = payload
    return _releases_rows(
        persisting[shard.start : shard.stop], earlier_origins, later_origins
    )


def compare_epochs_fast(
    earlier: InferenceResult,
    later: InferenceResult,
    workers: int = 1,
    shard_size: Optional[int] = None,
) -> LeaseChurn:
    """Churn equal to :func:`compare_epochs`, from single-pass views.

    Each epoch is reduced to (leased set, per-region leased sets,
    last-wins origins map) in one iteration; the re-lease scan over the
    persisting prefixes can then be sharded across processes — only the
    persisting-restricted origin maps ship to workers.
    """
    earlier_leased, earlier_by_rir, earlier_origins = _epoch_view(earlier)
    later_leased, later_by_rir, later_origins = _epoch_view(later)
    persisting = earlier_leased & later_leased
    ordered = tuple(sorted(persisting))

    earlier_persisting = {p: earlier_origins.get(p, _EMPTY) for p in ordered}
    later_persisting = {p: later_origins.get(p, _EMPTY) for p in ordered}
    pool_size = effective_workers(workers, len(ordered), shard_size)
    if pool_size <= 1:
        re_leased = frozenset(
            _releases_rows(ordered, earlier_persisting, later_persisting)
        )
    else:
        _shards, outputs = run_sharded(
            (ordered, earlier_persisting, later_persisting),
            _releases_shard,
            [len(ordered)],
            pool_size,
            shard_size,
        )
        re_leased = frozenset(
            prefix for rows in outputs for prefix in rows
        )

    by_rir: Dict[RIR, RegionChurn] = {}
    for rir in RIR:
        region_earlier = earlier_by_rir[rir]
        region_later = later_by_rir[rir]
        region_persisting = region_earlier & region_later
        by_rir[rir] = RegionChurn(
            rir=rir,
            new=len(region_later - region_earlier),
            ended=len(region_earlier - region_later),
            persisting=len(region_persisting),
            re_leased=len(region_persisting & re_leased),
        )
    return LeaseChurn(
        new_leases=frozenset(later_leased - earlier_leased),
        ended_leases=frozenset(earlier_leased - later_leased),
        persisting=frozenset(persisting),
        re_leased=re_leased,
        by_rir=by_rir,
    )
