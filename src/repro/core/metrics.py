"""Information-retrieval metrics for the evaluation (Appendix A)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConfusionMatrix"]


@dataclass
class ConfusionMatrix:
    """Table 2: counts plus the five Appendix-A metrics.

    Metrics return ``float('nan')`` when their denominator is zero.
    """

    tp: int = 0
    fn: int = 0
    fp: int = 0
    tn: int = 0

    def add_prediction(self, actual_leased: bool, inferred_leased: bool) -> None:
        """Count one labelled prefix."""
        if actual_leased and inferred_leased:
            self.tp += 1
        elif actual_leased:
            self.fn += 1
        elif inferred_leased:
            self.fp += 1
        else:
            self.tn += 1

    @property
    def total(self) -> int:
        """All labelled observations."""
        return self.tp + self.fn + self.fp + self.tn

    @property
    def precision(self) -> float:
        """TP / (TP + FP)."""
        return _ratio(self.tp, self.tp + self.fp)

    @property
    def recall(self) -> float:
        """TP / (TP + FN) (sensitivity)."""
        return _ratio(self.tp, self.tp + self.fn)

    @property
    def specificity(self) -> float:
        """TN / (TN + FP)."""
        return _ratio(self.tn, self.tn + self.fp)

    @property
    def npv(self) -> float:
        """TN / (TN + FN) (negative predictive value)."""
        return _ratio(self.tn, self.tn + self.fn)

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total."""
        return _ratio(self.tp + self.tn, self.total)

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (not in the paper;
        provided for downstream users)."""
        return _ratio(2 * self.tp, 2 * self.tp + self.fp + self.fn)


def _ratio(numerator: int, denominator: int) -> float:
    if denominator == 0:
        return float("nan")
    return numerator / denominator
