"""End-to-end lease inference (§5.1–§5.2).

The pipeline ties the substrates together: per registry it builds the
allocation tree, resolves root-organisation ASNs, looks up BGP origins,
and classifies every non-portable leaf.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Union

from ..asdata.as2org import AS2Org
from ..asdata.relationships import ASRelationships
from ..bgp.rib import RoutingTable
from ..rir import RIR
from ..whois.database import WhoisCollection, WhoisDatabase
from .allocation_tree import DEFAULT_MAX_LEAF_LENGTH, AllocationTree, TreeLeaf
from .classify import classify_leaf
from .relatedness import RelatednessOracle
from .results import InferenceResult, LeafInference

__all__ = ["LeaseInferencePipeline", "infer_leases"]


class LeaseInferencePipeline:
    """Configured, reusable lease inference over WHOIS + BGP + AS data."""

    def __init__(
        self,
        whois: Union[WhoisCollection, WhoisDatabase],
        routing_table: RoutingTable,
        relationships: ASRelationships,
        as2org: Optional[AS2Org] = None,
        max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
        use_covering_root_lookup: bool = True,
    ) -> None:
        if isinstance(whois, WhoisDatabase):
            collection = WhoisCollection({whois.rir: whois})
        else:
            collection = whois
        self.whois = collection
        self.routing_table = routing_table
        self.oracle = RelatednessOracle(relationships, as2org)
        self.max_leaf_length = max_leaf_length
        self.use_covering_root_lookup = use_covering_root_lookup
        self.trees: Dict[RIR, AllocationTree] = {}

    def run(self, rirs: Optional[Iterable[RIR]] = None) -> InferenceResult:
        """Classify every leaf in the selected registries (default: all)."""
        result = InferenceResult()
        for rir in rirs if rirs is not None else list(RIR):
            database = self.whois[rir]
            if not database.inetnums:
                continue
            tree = AllocationTree(database, self.max_leaf_length)
            self.trees[rir] = tree
            for leaf in tree.classifiable_leaves():
                result.add(self._infer_leaf(rir, database, leaf))
        return result

    def stats(self) -> Dict[RIR, Dict[str, int]]:
        """Per-region tree diagnostics from the last :meth:`run`.

        Keys per region: ``nodes`` (tree entries), ``roots``, ``leaves``,
        ``classifiable`` (non-portable leaves under a root),
        ``hyper_specific_dropped``, and ``legacy_dropped``.
        """
        diagnostics: Dict[RIR, Dict[str, int]] = {}
        for rir, tree in self.trees.items():
            diagnostics[rir] = {
                "nodes": len(tree),
                "roots": len(tree.roots()),
                "leaves": len(tree.leaves()),
                "classifiable": len(tree.classifiable_leaves()),
                "hyper_specific_dropped": tree.hyper_specific_dropped,
                "legacy_dropped": tree.legacy_dropped,
            }
        return diagnostics

    def _infer_leaf(
        self, rir: RIR, database: WhoisDatabase, leaf: TreeLeaf
    ) -> LeafInference:
        # §5.1 step 4: exact match for the leaf ...
        leaf_origins = self.routing_table.exact_origins(leaf.prefix)
        # ... exact-then-least-specific-covering for the root (ablatable).
        if leaf.root_prefix is not None:
            if self.use_covering_root_lookup:
                root_origins = self.routing_table.covering_origins(
                    leaf.root_prefix
                )
            else:
                root_origins = self.routing_table.exact_origins(
                    leaf.root_prefix
                )
        else:
            root_origins = frozenset()
        root_assigned = self._root_assigned_asns(database, leaf)
        category = classify_leaf(
            leaf_origins, root_origins, root_assigned, self.oracle
        )
        return LeafInference(
            rir=rir,
            prefix=leaf.prefix,
            category=category,
            record=leaf.record,
            root_prefix=leaf.root_prefix,
            root_record=leaf.root_record,
            leaf_origins=leaf_origins,
            root_origins=root_origins,
            root_assigned_asns=root_assigned,
        )

    def _root_assigned_asns(
        self, database: WhoisDatabase, leaf: TreeLeaf
    ) -> FrozenSet[int]:
        """§5.1 step 3: the RIR-assigned ASNs of the root organisation."""
        if leaf.root_record is None or leaf.root_record.org_id is None:
            return frozenset()
        return frozenset(database.asns_of_org(leaf.root_record.org_id))


def infer_leases(
    whois: Union[WhoisCollection, WhoisDatabase],
    routing_table: RoutingTable,
    relationships: ASRelationships,
    as2org: Optional[AS2Org] = None,
) -> InferenceResult:
    """One-call convenience wrapper around the pipeline."""
    return LeaseInferencePipeline(
        whois, routing_table, relationships, as2org
    ).run()
