"""End-to-end lease inference (§5.1–§5.2).

The pipeline ties the substrates together: per registry it builds the
allocation tree, resolves root-organisation ASNs, looks up BGP origins,
and classifies every non-portable leaf.

Two engines produce bit-for-bit identical results:

* :meth:`LeaseInferencePipeline.run` — the fast path: sort-based tree
  construction (:class:`~repro.core.allocation_tree.AllocationScan`),
  memoized per-shard lookups, and optional process-parallel sharding
  via ``workers``/``shard_size``.
* :meth:`LeaseInferencePipeline.run_reference` — the straight-line
  per-leaf loop over :class:`AllocationTree`, kept as the executable
  specification the fast path is tested (and benchmarked) against.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, Iterable, List, Optional, Union

from ..asdata.as2org import AS2Org
from ..asdata.relationships import ASRelationships
from ..bgp.rib import RoutingTable
from ..rir import RIR
from ..whois.database import WhoisCollection, WhoisDatabase
from .allocation_tree import (
    DEFAULT_MAX_LEAF_LENGTH,
    AllocationTree,
    TreeLeaf,
)
from .classify import Category, classify_leaf
from .context import AnalysisContext
from .relatedness import RelatednessOracle
from .results import InferenceResult, LeafInference
from .sharding import (
    CacheStats,
    ShardClassifier,
    classify_shard_rows,
    effective_workers,
    run_sharded,
)
from .shm import SharedAnalysisContext, payload_pickle_bytes

__all__ = ["LeaseInferencePipeline", "infer_leases"]


class LeaseInferencePipeline:
    """Configured, reusable lease inference over WHOIS + BGP + AS data."""

    def __init__(
        self,
        whois: Union[WhoisCollection, WhoisDatabase],
        routing_table: RoutingTable,
        relationships: ASRelationships,
        as2org: Optional[AS2Org] = None,
        max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
        use_covering_root_lookup: bool = True,
        workers: int = 1,
        shard_size: Optional[int] = None,
        use_shm: bool = False,
        start_method: Optional[str] = None,
    ) -> None:
        if isinstance(whois, WhoisDatabase):
            collection = WhoisCollection({whois.rir: whois})
        else:
            collection = whois
        self.whois = collection
        self.routing_table = routing_table
        self.oracle = RelatednessOracle(relationships, as2org)
        self.max_leaf_length = max_leaf_length
        self.use_covering_root_lookup = use_covering_root_lookup
        self.workers = workers
        self.shard_size = shard_size
        self.use_shm = use_shm
        self.start_method = start_method
        #: Filled by parallel shared-memory runs: segment + descriptor
        #: sizes, for the bench payload-bytes column.
        self.shm_stats: Optional[Dict[str, int]] = None
        #: When set, parallel runs without shared memory also measure
        #: the pickled payload each spawn worker would receive (the
        #: bench's O(table)-vs-O(1) comparison).  Off by default: it
        #: pickles the whole context once per run.
        self.measure_payload = False
        self.trees: Dict[RIR, AllocationTree] = {}
        #: The shared substrate snapshot of the last :meth:`run`; reuse
        #: it across the extension pipelines to skip rebuilding.
        self.context: Optional[AnalysisContext] = None
        #: Wall-clock stage breakdown of the last run, seconds.
        self.timings: Dict[str, float] = {}
        self._stats: Optional[Dict[RIR, Dict[str, int]]] = None
        self._cache_stats: Optional[CacheStats] = None

    # -- fast engine -----------------------------------------------------
    def run(
        self,
        rirs: Optional[Iterable[RIR]] = None,
        workers: Optional[int] = None,
        shard_size: Optional[int] = None,
        context: Optional[AnalysisContext] = None,
        use_shm: Optional[bool] = None,
        start_method: Optional[str] = None,
    ) -> InferenceResult:
        """Classify every leaf in the selected registries (default: all).

        Builds (or reuses, via ``context``) the shared
        :class:`AnalysisContext` snapshot, then classifies from it.
        ``workers`` > 1 classifies shards across a process pool — fork
        where available, spawn otherwise (the context is spawn-safe);
        small inputs (at most one shard) fall back to the identical
        serial path.  ``use_shm`` freezes the context's hot tables into
        one shared-memory segment so each worker receives an O(1)
        attach-by-name descriptor instead of a pickled copy; the
        segment is unlinked before this method returns, crash or not.
        Output is bit-for-bit equal to :meth:`run_reference` in every
        mode.
        """
        workers = self.workers if workers is None else workers
        shard_size = self.shard_size if shard_size is None else shard_size
        use_shm = self.use_shm if use_shm is None else use_shm
        if start_method is None:
            start_method = self.start_method
        self.shm_stats = None
        result = InferenceResult()

        tree_started = time.perf_counter()
        if context is None:
            context = AnalysisContext.build(
                self.whois,
                self.routing_table,
                self.oracle.relationships,
                self.oracle.as2org,
                self.max_leaf_length,
                rirs=rirs,
            )
        self.context = context
        work_rirs: List[RIR] = [
            rir
            for rir in (rirs if rirs is not None else list(RIR))
            if rir in context.rirs
        ]
        tree_elapsed = time.perf_counter() - tree_started

        classify_started = time.perf_counter()
        total = sum(len(context.leaf_keys[rir]) for rir in work_rirs)
        pool_size = effective_workers(workers, total, shard_size)
        cache_stats = CacheStats()
        if pool_size <= 1:
            for rir in work_rirs:
                classifier = ShardClassifier(
                    context, rir, self.use_covering_root_lookup
                )
                for leaf in context.leaves(rir):
                    category, leaf_origins, root_origins, assigned = (
                        classifier.classify(
                            leaf.prefix,
                            leaf.root_prefix,
                            leaf.root_record.org_id
                            if leaf.root_record
                            else None,
                        )
                    )
                    result.add(
                        self._make_inference(
                            rir,
                            leaf,
                            category,
                            leaf_origins,
                            root_origins,
                            assigned,
                        )
                    )
                cache_stats.merge(classifier.stats())
        else:
            rir_order = tuple(work_rirs)
            payload_context: object = context
            shared: Optional[SharedAnalysisContext] = None
            if use_shm:
                shared = SharedAnalysisContext.from_context(context)
                payload_context = shared
                self.shm_stats = {
                    "segment_bytes": shared.segment_bytes,
                    "payload_bytes": payload_pickle_bytes(
                        (shared, self.use_covering_root_lookup, rir_order)
                    ),
                }
            elif self.measure_payload:
                self.shm_stats = {
                    "payload_bytes": payload_pickle_bytes(
                        (context, self.use_covering_root_lookup, rir_order)
                    ),
                }
            try:
                shards, outputs = run_sharded(
                    (payload_context, self.use_covering_root_lookup, rir_order),
                    classify_shard_rows,
                    [len(context.leaf_keys[rir]) for rir in rir_order],
                    pool_size,
                    shard_size,
                    start_method=start_method,
                )
            finally:
                # Unlink before reassembly: a worker crash (pool raises)
                # must not leave a /dev/shm segment behind.
                if shared is not None:
                    shared.destroy()
            for shard, (rows, shard_stats) in zip(shards, outputs):
                rir = rir_order[shard.work_index]
                leaves = context.leaves(rir)[shard.start : shard.stop]
                for leaf, (name, leaf_origins, root_origins, assigned) in zip(
                    leaves, rows
                ):
                    result.add(
                        self._make_inference(
                            rir,
                            leaf,
                            Category[name],
                            frozenset(leaf_origins),
                            frozenset(root_origins),
                            frozenset(assigned),
                        )
                    )
                cache_stats.merge(shard_stats)

        self._stats = {
            rir: dict(context.stats[rir]) for rir in work_rirs
        }
        self._cache_stats = cache_stats
        self.timings = {
            "tree_build_s": tree_elapsed,
            "classify_s": time.perf_counter() - classify_started,
        }
        return result

    @staticmethod
    def _make_inference(
        rir: RIR,
        leaf: TreeLeaf,
        category: Category,
        leaf_origins: FrozenSet[int],
        root_origins: FrozenSet[int],
        root_assigned: FrozenSet[int],
    ) -> LeafInference:
        return LeafInference(
            rir=rir,
            prefix=leaf.prefix,
            category=category,
            record=leaf.record,
            root_prefix=leaf.root_prefix,
            root_record=leaf.root_record,
            leaf_origins=leaf_origins,
            root_origins=root_origins,
            root_assigned_asns=root_assigned,
        )

    # -- reference engine ------------------------------------------------
    def run_reference(
        self, rirs: Optional[Iterable[RIR]] = None
    ) -> InferenceResult:
        """The original straight-line engine: trie tree, per-leaf lookups.

        Kept unoptimized on purpose — it is the executable specification
        the fast engine's equivalence tests diff against, and the
        benchmark harness's speedup baseline.
        """
        result = InferenceResult()
        stats: Dict[RIR, Dict[str, int]] = {}
        tree_elapsed = 0.0
        classify_elapsed = 0.0
        for rir in rirs if rirs is not None else list(RIR):
            database = self.whois[rir]
            if not database.inetnums:
                continue
            started = time.perf_counter()
            tree = AllocationTree(database, self.max_leaf_length)
            leaves = tree.classifiable_leaves()
            tree_elapsed += time.perf_counter() - started
            self.trees[rir] = tree
            stats[rir] = {
                "nodes": len(tree),
                "roots": len(tree.roots()),
                "leaves": len(tree.leaves()),
                "classifiable": len(leaves),
                "hyper_specific_dropped": tree.hyper_specific_dropped,
                "legacy_dropped": tree.legacy_dropped,
            }
            started = time.perf_counter()
            for leaf in leaves:
                result.add(self._infer_leaf(rir, database, leaf))
            classify_elapsed += time.perf_counter() - started
        self._stats = stats
        self.timings = {
            "tree_build_s": tree_elapsed,
            "classify_s": classify_elapsed,
        }
        return result

    # -- diagnostics -----------------------------------------------------
    def stats(self) -> Dict[RIR, Dict[str, int]]:
        """Per-region tree diagnostics from the last run.

        Keys per region: ``nodes`` (tree entries), ``roots``, ``leaves``,
        ``classifiable`` (non-portable leaves under a root),
        ``hyper_specific_dropped``, and ``legacy_dropped``.

        Raises :class:`RuntimeError` before the first run — there is no
        tree to report on yet, and silently returning ``{}`` used to
        mask exactly that mistake.
        """
        if self._stats is None:
            raise RuntimeError(
                "LeaseInferencePipeline.stats() called before run(); "
                "call run() or run_reference() first"
            )
        return {rir: dict(counters) for rir, counters in self._stats.items()}

    def cache_stats(self) -> CacheStats:
        """Aggregated per-shard cache counters from the last :meth:`run`.

        Raises :class:`RuntimeError` before the first :meth:`run` (the
        reference engine uses no caches, so it never populates these).
        """
        if self._cache_stats is None:
            raise RuntimeError(
                "LeaseInferencePipeline.cache_stats() requires a prior "
                "run() — the reference engine does not use the caches"
            )
        return self._cache_stats

    def _infer_leaf(
        self, rir: RIR, database: WhoisDatabase, leaf: TreeLeaf
    ) -> LeafInference:
        # §5.1 step 4: exact match for the leaf ...
        leaf_origins = self.routing_table.exact_origins(leaf.prefix)
        # ... exact-then-least-specific-covering for the root (ablatable).
        if leaf.root_prefix is not None:
            if self.use_covering_root_lookup:
                root_origins = self.routing_table.covering_origins(
                    leaf.root_prefix
                )
            else:
                root_origins = self.routing_table.exact_origins(
                    leaf.root_prefix
                )
        else:
            root_origins = frozenset()
        root_assigned = self._root_assigned_asns(database, leaf)
        category = classify_leaf(
            leaf_origins, root_origins, root_assigned, self.oracle
        )
        return LeafInference(
            rir=rir,
            prefix=leaf.prefix,
            category=category,
            record=leaf.record,
            root_prefix=leaf.root_prefix,
            root_record=leaf.root_record,
            leaf_origins=leaf_origins,
            root_origins=root_origins,
            root_assigned_asns=root_assigned,
        )

    def _root_assigned_asns(
        self, database: WhoisDatabase, leaf: TreeLeaf
    ) -> FrozenSet[int]:
        """§5.1 step 3: the RIR-assigned ASNs of the root organisation."""
        if leaf.root_record is None or leaf.root_record.org_id is None:
            return frozenset()
        return frozenset(database.asns_of_org(leaf.root_record.org_id))


def infer_leases(
    whois: Union[WhoisCollection, WhoisDatabase],
    routing_table: RoutingTable,
    relationships: ASRelationships,
    as2org: Optional[AS2Org] = None,
    workers: int = 1,
    shard_size: Optional[int] = None,
) -> InferenceResult:
    """One-call convenience wrapper around the pipeline."""
    return LeaseInferencePipeline(
        whois,
        routing_table,
        relationships,
        as2org,
        workers=workers,
        shard_size=shard_size,
    ).run()
