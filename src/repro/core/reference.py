"""Curating the evaluation reference dataset (§5.3).

Positive labels: address blocks maintained by registered brokers, found
by matching broker company names to WHOIS organisations, taking their
maintainer handles, collecting the handles' address blocks, and
excluding blocks the analyst marks as not leased (broker-as-ISP blocks).

Negative labels: blocks of residential ISPs that are originated in BGP
by the ISPs' own ASNs — connectivity customers, by construction not
leased.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..bgp.rib import RoutingTable
from ..brokers.matching import MatchReport, match_brokers
from ..brokers.registry import BrokerRegistry
from ..net import Prefix
from ..rir import RIR
from ..whois.database import WhoisCollection
from .allocation_tree import DEFAULT_MAX_LEAF_LENGTH

__all__ = ["ReferenceDataset", "curate_reference"]


@dataclass
class ReferenceDataset:
    """Labelled prefixes plus the curation bookkeeping of §6.2."""

    positives: Set[Prefix] = field(default_factory=set)
    negatives: Set[Prefix] = field(default_factory=set)
    match_reports: Dict[RIR, MatchReport] = field(default_factory=dict)
    excluded_not_leased: Set[Prefix] = field(default_factory=set)

    @property
    def total(self) -> int:
        """All labelled prefixes."""
        return len(self.positives) + len(self.negatives)

    def label(self, prefix: Prefix) -> Optional[bool]:
        """True = leased, False = non-leased, None = unlabelled."""
        if prefix in self.positives:
            return True
        if prefix in self.negatives:
            return False
        return None


def curate_reference(
    whois: WhoisCollection,
    registry: BrokerRegistry,
    routing_table: RoutingTable,
    not_leased_exclusions: Iterable[Prefix] = (),
    negative_isp_org_ids: Optional[Dict[RIR, List[str]]] = None,
    max_leaf_length: int = DEFAULT_MAX_LEAF_LENGTH,
) -> ReferenceDataset:
    """Build the reference dataset from broker lists and ISP blocks.

    *not_leased_exclusions* plays the role of the paper's manual
    filtering: broker-maintained prefixes known to be connectivity
    customers rather than leases.  *negative_isp_org_ids* selects, per
    registry, the organisations whose customer blocks become negative
    labels; their blocks qualify only when originated in BGP by an AS
    registered to the same organisation (the paper confirmed this with
    IIJ directly).
    """
    dataset = ReferenceDataset()
    exclusions = set(not_leased_exclusions)

    # -- positives: broker-maintained blocks --------------------------------
    for rir in RIR:
        database = whois[rir]
        brokers = registry.brokers(rir)
        if not brokers or not database.orgs:
            continue
        report = match_brokers(brokers, database)
        dataset.match_reports[rir] = report
        for handle in report.maintainer_handles():
            for record in database.inetnums_by_maintainer(handle):
                for prefix in record.range.to_prefixes():
                    if prefix.length > max_leaf_length:
                        continue
                    if prefix in exclusions:
                        dataset.excluded_not_leased.add(prefix)
                        continue
                    dataset.positives.add(prefix)

    # -- negatives: residential-ISP customer blocks ---------------------------
    for rir, org_ids in (negative_isp_org_ids or {}).items():
        database = whois[rir]
        for org_id in org_ids:
            isp_asns = set(database.asns_of_org(org_id))
            for record in database.inetnums_by_org(org_id):
                for prefix in record.range.to_prefixes():
                    if prefix.length > max_leaf_length:
                        continue
                    if prefix in dataset.positives:
                        continue
                    origins = routing_table.covering_origins(prefix)
                    if origins and origins <= isp_asns:
                        dataset.negatives.add(prefix)
    return dataset
