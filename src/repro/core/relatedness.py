"""The relatedness oracle used by the classifier (§5.2).

Two ASes are *related* when the AS Relationships dataset links them
directly or the AS2org dataset maps them to the same organisation.  The
AS2org component is optional so the ablation benches can quantify its
contribution (it is what absorbs same-company multi-AS structures such
as the Vodafone subsidiaries of §6.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..asdata.as2org import AS2Org
from ..asdata.relationships import ASRelationships

__all__ = ["RelatednessOracle", "MemoizedRelatednessOracle"]


class RelatednessOracle:
    """Answers "are these two ASes the same business family?"."""

    def __init__(
        self,
        relationships: ASRelationships,
        as2org: Optional[AS2Org] = None,
    ) -> None:
        self.relationships = relationships
        self.as2org = as2org

    def related(self, left: int, right: int) -> bool:
        """True for identical ASes, direct relationships, or shared org."""
        if left == right:
            return True
        if self.relationships.are_related(left, right):
            return True
        return self.as2org is not None and self.as2org.same_org(left, right)

    def any_related(self, lefts: Iterable[int], rights: Iterable[int]) -> bool:
        """True when any pair across the two sets is related."""
        rights = list(rights)
        return any(
            self.related(left, right) for left in lefts for right in rights
        )


class MemoizedRelatednessOracle(RelatednessOracle):
    """A relatedness oracle with a per-instance answer cache.

    The classifier asks the same (origin, assigned-AS) pairs over and
    over — hosting lessees originate hundreds of leaves under the same
    handful of roots — so the sharded pipeline wraps its oracle in one of
    these per shard.  Answers are pure functions of the underlying
    datasets, so memoization cannot change results, only the counters.
    """

    def __init__(
        self,
        relationships: ASRelationships,
        as2org: Optional[AS2Org] = None,
    ) -> None:
        super().__init__(relationships, as2org)
        self._cache: Dict[Tuple[int, int], bool] = {}
        self.hits = 0
        self.misses = 0

    @classmethod
    def wrapping(cls, oracle: RelatednessOracle) -> "MemoizedRelatednessOracle":
        """A caching oracle over the same datasets as *oracle*."""
        return cls(oracle.relationships, oracle.as2org)

    def related(self, left: int, right: int) -> bool:
        """Cached :meth:`RelatednessOracle.related`."""
        key = (left, right)
        answer = self._cache.get(key)
        if answer is None:
            self.misses += 1
            answer = super().related(left, right)
            self._cache[key] = answer
        else:
            self.hits += 1
        return answer
