"""The relatedness oracle used by the classifier (§5.2).

Two ASes are *related* when the AS Relationships dataset links them
directly or the AS2org dataset maps them to the same organisation.  The
AS2org component is optional so the ablation benches can quantify its
contribution (it is what absorbs same-company multi-AS structures such
as the Vodafone subsidiaries of §6.2).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..asdata.as2org import AS2Org
from ..asdata.relationships import ASRelationships

__all__ = ["RelatednessOracle"]


class RelatednessOracle:
    """Answers "are these two ASes the same business family?"."""

    def __init__(
        self,
        relationships: ASRelationships,
        as2org: Optional[AS2Org] = None,
    ) -> None:
        self.relationships = relationships
        self.as2org = as2org

    def related(self, left: int, right: int) -> bool:
        """True for identical ASes, direct relationships, or shared org."""
        if left == right:
            return True
        if self.relationships.are_related(left, right):
            return True
        return self.as2org is not None and self.as2org.same_org(left, right)

    def any_related(self, lefts: Iterable[int], rights: Iterable[int]) -> bool:
        """True when any pair across the two sets is related."""
        rights = list(rights)
        return any(
            self.related(left, right) for left in lefts for right in rights
        )


# A per-AS-pair MemoizedRelatednessOracle used to live here.  It sat
# below the category cache, which deduplicates the origin triples, so
# the pair memo never saw a repeated query — every committed
# BENCH_pipeline.json run recorded a 0.0 hit rate.  Its replacement is
# the eager ``(leaf_origin, root_org)`` memo in
# :class:`repro.core.sharding.ShardClassifier`, which is consulted
# above the category cache and actually hits.
