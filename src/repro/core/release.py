"""Public-release artifacts (Appendix C).

The paper publishes its inferred leases and curated evaluation dataset.
This module renders the same artifacts from an inference run: one CSV of
inferred leases with their business roles, and one CSV of the labelled
reference prefixes.
"""

from __future__ import annotations

import csv
import io
from typing import Iterator, List

from .reference import ReferenceDataset
from .results import InferenceResult

__all__ = ["export_inferred_leases", "export_reference_dataset"]


def export_inferred_leases(result: InferenceResult) -> str:
    """CSV of every inferred lease with its Fig. 2 roles.

    Columns: prefix, rir, group, holder organisation, facilitator
    maintainer(s), originator AS(es).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["prefix", "rir", "group", "holder_org", "facilitators", "originators"]
    )
    for inference in sorted(result.leased(), key=lambda inf: inf.prefix):
        writer.writerow(
            [
                str(inference.prefix),
                inference.rir.value,
                inference.category.group,
                inference.holder_org_id or "",
                " ".join(inference.facilitator_handles),
                " ".join(
                    f"AS{asn}" for asn in sorted(inference.originators)
                ),
            ]
        )
    return buffer.getvalue()


def export_reference_dataset(reference: ReferenceDataset) -> str:
    """CSV of the curated evaluation labels (§5.3).

    Columns: prefix, label (leased / non-leased).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["prefix", "label"])
    rows: List = [
        (prefix, "leased") for prefix in sorted(reference.positives)
    ] + [(prefix, "non-leased") for prefix in sorted(reference.negatives)]
    for prefix, label in sorted(rows):
        writer.writerow([str(prefix), label])
    return buffer.getvalue()


def parse_inferred_leases(text: str) -> Iterator[dict]:
    """Parse a CSV produced by :func:`export_inferred_leases`."""
    reader = csv.DictReader(io.StringIO(text))
    for row in reader:
        yield row
