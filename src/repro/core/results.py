"""Inference results: per-leaf verdicts and per-region tallies (§6.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from ..net import Prefix
from ..rir import ALL_RIRS, RIR
from ..whois.objects import InetnumRecord
from .classify import Category

__all__ = ["LeafInference", "RegionalTally", "InferenceResult"]


@dataclass(frozen=True)
class LeafInference:
    """The verdict for one leaf node, with the Fig. 2 business roles.

    * IP holder — the root node's organisation,
    * facilitator — the leaf node's maintainers,
    * originator — the leaf node's BGP origin AS(es).
    """

    rir: RIR
    prefix: Prefix
    category: Category
    record: InetnumRecord
    root_prefix: Optional[Prefix]
    root_record: Optional[InetnumRecord]
    leaf_origins: FrozenSet[int]
    root_origins: FrozenSet[int]
    root_assigned_asns: FrozenSet[int]

    @property
    def is_leased(self) -> bool:
        """True for either leased category."""
        return self.category.is_leased

    @property
    def holder_org_id(self) -> Optional[str]:
        """Organisation handle of the IP holder (root node)."""
        return self.root_record.org_id if self.root_record else None

    @property
    def facilitator_handles(self) -> Tuple[str, ...]:
        """Maintainer handles on the leaf node."""
        return self.record.maintainers

    @property
    def originators(self) -> FrozenSet[int]:
        """BGP origin AS(es) of the leaf prefix."""
        return self.leaf_origins

    def to_payload(self) -> Dict[str, object]:
        """The JSON-ready answer for this verdict (the serving layer).

        Carries the classification *and* the §5.1 lookups it was derived
        from — leaf/root origins and the root organisation's assigned
        ASNs — so a query service can explain every answer it serves.
        """
        return {
            "prefix": str(self.prefix),
            "rir": self.rir.name,
            "category": self.category.label,
            "category_code": self.category.name,
            "group": self.category.group,
            "leased": self.category.is_leased,
            "status": self.record.status,
            "net_name": self.record.net_name,
            "holder_org": self.holder_org_id,
            "facilitators": list(self.facilitator_handles),
            "evidence": {
                "leaf_origins": sorted(self.leaf_origins),
                "root_prefix": (
                    str(self.root_prefix)
                    if self.root_prefix is not None
                    else None
                ),
                "root_origins": sorted(self.root_origins),
                "root_assigned_asns": sorted(self.root_assigned_asns),
            },
        }


@dataclass
class RegionalTally:
    """Category counts for one registry (one column of Table 1)."""

    rir: RIR
    counts: Dict[Category, int] = field(
        default_factory=lambda: {category: 0 for category in Category}
    )

    def add(self, category: Category) -> None:
        """Count one classified leaf."""
        self.counts[category] += 1

    @property
    def total(self) -> int:
        """All classified leaves in this region."""
        return sum(self.counts.values())

    @property
    def leased(self) -> int:
        """Leased leaves across groups 3 and 4."""
        return (
            self.counts[Category.LEASED_GROUP3]
            + self.counts[Category.LEASED_GROUP4]
        )


class InferenceResult:
    """All leaf verdicts across regions, with Table 1 style accessors."""

    def __init__(self) -> None:
        self._inferences: List[LeafInference] = []
        self._tallies: Dict[RIR, RegionalTally] = {
            rir: RegionalTally(rir) for rir in ALL_RIRS
        }
        self._by_prefix: Dict[Prefix, LeafInference] = {}

    def add(self, inference: LeafInference) -> None:
        """Record one verdict."""
        self._inferences.append(inference)
        self._tallies[inference.rir].add(inference.category)
        self._by_prefix[inference.prefix] = inference

    @classmethod
    def from_inferences(
        cls, inferences: Iterable[LeafInference]
    ) -> "InferenceResult":
        """A result holding *inferences*, in iteration order."""
        result = cls()
        for inference in inferences:
            result.add(inference)
        return result

    def merge(self, other: "InferenceResult") -> "InferenceResult":
        """Fold another result's verdicts into this one (returns self).

        Equality between results is order-independent, so shard results
        can be merged in any order without changing the outcome.
        """
        for inference in other._inferences:
            self.add(inference)
        return self

    def __len__(self) -> int:
        return len(self._inferences)

    def __iter__(self) -> Iterator[LeafInference]:
        return iter(self._inferences)

    def __eq__(self, other: object) -> bool:
        """Same verdicts, regardless of insertion order."""
        if not isinstance(other, InferenceResult):
            return NotImplemented
        if len(self._inferences) != len(other._inferences):
            return False
        return self._canonical() == other._canonical()

    def _canonical(self) -> List[LeafInference]:
        return sorted(
            self._inferences, key=lambda inf: (inf.rir.name, inf.prefix)
        )

    # -- lookups ---------------------------------------------------------
    def lookup(self, prefix: Prefix) -> Optional[LeafInference]:
        """The verdict for *prefix*, or None when it is not a leaf."""
        return self._by_prefix.get(prefix)

    def tally(self, rir: RIR) -> RegionalTally:
        """The Table 1 column for *rir*."""
        return self._tallies[rir]

    def tallies(self) -> Dict[RIR, RegionalTally]:
        """All per-region tallies."""
        return dict(self._tallies)

    # -- slices ---------------------------------------------------------
    def for_rir(self, rir: RIR) -> List[LeafInference]:
        """All verdicts in one region."""
        return [inf for inf in self._inferences if inf.rir is rir]

    def leased(self, rir: Optional[RIR] = None) -> List[LeafInference]:
        """Leased verdicts, optionally restricted to one region."""
        return [
            inf
            for inf in self._inferences
            if inf.is_leased and (rir is None or inf.rir is rir)
        ]

    def in_category(self, category: Category) -> List[LeafInference]:
        """All verdicts with *category*."""
        return [inf for inf in self._inferences if inf.category is category]

    def leased_prefixes(self) -> FrozenSet[Prefix]:
        """The set of inferred-leased prefixes (the paper's 47k)."""
        return frozenset(inf.prefix for inf in self._inferences if inf.is_leased)

    def total_leased(self) -> int:
        """Leased count across all regions."""
        return sum(tally.leased for tally in self._tallies.values())

    def leased_address_space(self) -> int:
        """Distinct addresses covered by leased prefixes.

        Overlapping leased prefixes are deduplicated; this is the
        numerator of the paper's "0.9% of routed v4 address space".
        """
        from ..net import prefixes_to_ranges

        ranges = prefixes_to_ranges(sorted(self.leased_prefixes()))
        return sum(r.num_addresses for r in ranges)

    def total_classified(self) -> int:
        """Classified leaf count across all regions."""
        return sum(tally.total for tally in self._tallies.values())
