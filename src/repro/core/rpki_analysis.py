"""RPKI validation profiles for prefix populations.

§6.4 observes that the leasing market interacts with routing security:
facilitators manage ROAs for lessees, so leased announcements tend to be
RPKI-valid — including the abusive ones, which is how leasing lets
spammers *bypass* origin validation.  This module profiles the RFC 6811
outcome of every announcement in a population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from ..bgp.rib import RoutingTable
from ..net import Prefix
from ..rpki.roa import RoaSet
from ..rpki.validation import ValidationState, validate_origin

__all__ = ["ValidationProfile", "validation_profile"]


@dataclass(frozen=True)
class ValidationProfile:
    """RFC 6811 outcome counts over a set of announcements."""

    valid: int
    invalid: int
    not_found: int

    @property
    def total(self) -> int:
        """All validated announcements."""
        return self.valid + self.invalid + self.not_found

    @property
    def valid_share(self) -> float:
        """Fraction of announcements that validate VALID."""
        return self.valid / self.total if self.total else float("nan")

    @property
    def covered_share(self) -> float:
        """Fraction of announcements with any covering ROA."""
        covered = self.valid + self.invalid
        return covered / self.total if self.total else float("nan")


def validation_profile(
    prefixes: Iterable[Prefix],
    routing_table: RoutingTable,
    roas: RoaSet,
) -> ValidationProfile:
    """Validate every (prefix, origin) announcement in the population.

    Prefixes absent from the routing table contribute nothing (only
    announcements can be validated).
    """
    counts: Dict[ValidationState, int] = {state: 0 for state in ValidationState}
    for prefix in prefixes:
        for origin in routing_table.exact_origins(prefix):
            counts[validate_origin(roas, prefix, origin)] += 1
    return ValidationProfile(
        valid=counts[ValidationState.VALID],
        invalid=counts[ValidationState.INVALID],
        not_found=counts[ValidationState.NOT_FOUND],
    )
