"""RPKI validation profiles for prefix populations.

§6.4 observes that the leasing market interacts with routing security:
facilitators manage ROAs for lessees, so leased announcements tend to be
RPKI-valid — including the abusive ones, which is how leasing lets
spammers *bypass* origin validation.  This module profiles the RFC 6811
outcome of every announcement in a population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..bgp.rib import RoutingTable
from ..net import Prefix
from ..rpki.roa import RoaSet
from ..rpki.validation import ValidationState, validate_origin
from .context import AnalysisContext, RibSnapshot, RoaSnapshot
from .sharding import effective_workers, run_sharded

__all__ = [
    "RpkiValidationPipeline",
    "ValidationProfile",
    "validation_profile",
]


@dataclass(frozen=True)
class ValidationProfile:
    """RFC 6811 outcome counts over a set of announcements."""

    valid: int
    invalid: int
    not_found: int

    @property
    def total(self) -> int:
        """All validated announcements."""
        return self.valid + self.invalid + self.not_found

    @property
    def valid_share(self) -> float:
        """Fraction of announcements that validate VALID."""
        return self.valid / self.total if self.total else float("nan")

    @property
    def covered_share(self) -> float:
        """Fraction of announcements with any covering ROA."""
        covered = self.valid + self.invalid
        return covered / self.total if self.total else float("nan")


def validation_profile(
    prefixes: Iterable[Prefix],
    routing_table: RoutingTable,
    roas: RoaSet,
) -> ValidationProfile:
    """Validate every (prefix, origin) announcement in the population.

    Prefixes absent from the routing table contribute nothing (only
    announcements can be validated).

    This is the **frozen reference engine** (live tries, per-pair
    :func:`validate_origin` calls); :class:`RpkiValidationPipeline` is
    the snapshot-backed fast path tested against it.
    """
    counts: Dict[ValidationState, int] = {state: 0 for state in ValidationState}
    for prefix in prefixes:
        for origin in routing_table.exact_origins(prefix):
            counts[validate_origin(roas, prefix, origin)] += 1
    return ValidationProfile(
        valid=counts[ValidationState.VALID],
        invalid=counts[ValidationState.INVALID],
        not_found=counts[ValidationState.NOT_FOUND],
    )


# -- fast engine ----------------------------------------------------------

def _profile_rows(
    rib: RibSnapshot,
    roas: RoaSnapshot,
    population: Tuple[Prefix, ...],
) -> Tuple[int, int, int]:
    """``(valid, invalid, not_found)`` over a slice of the population."""
    valid = invalid = not_found = 0
    for prefix in population:
        for origin in rib.exact_origins(prefix):
            outcome = roas.validate(prefix, origin)
            if outcome == "valid":
                valid += 1
            elif outcome == "invalid":
                invalid += 1
            else:
                not_found += 1
    return valid, invalid, not_found


def _profile_shard(payload, shard):
    """Module-level shard runner for :func:`run_sharded`."""
    rib, roas, population = payload
    return _profile_rows(rib, roas, population[shard.start : shard.stop])


class RpkiValidationPipeline:
    """Snapshot-backed RFC 6811 profiling with serial and sharded engines.

    Counts are order-independent, so the population can be sharded
    freely; every mode produces a :class:`ValidationProfile` equal to
    :func:`validation_profile` (enforced by the equivalence tests).  The
    RIB snapshot comes from a shared :class:`AnalysisContext` when one is
    supplied, so the base inference and this profiler index BGP once.
    """

    def __init__(
        self,
        routing_table: RoutingTable,
        roas: RoaSet,
        context: Optional[AnalysisContext] = None,
    ) -> None:
        self.routing_table = routing_table
        self.roas = roas
        if context is not None:
            self.rib = context.rib
        else:
            self.rib = RibSnapshot.from_routing_table(routing_table)
        self.roa_snapshot = RoaSnapshot(roas)

    def profile(
        self,
        prefixes: Iterable[Prefix],
        workers: int = 1,
        shard_size: Optional[int] = None,
    ) -> ValidationProfile:
        """Profile the population; equal to :meth:`profile_reference`."""
        population = tuple(prefixes)
        pool_size = effective_workers(workers, len(population), shard_size)
        if pool_size <= 1:
            valid, invalid, not_found = _profile_rows(
                self.rib, self.roa_snapshot, population
            )
        else:
            _shards, outputs = run_sharded(
                (self.rib, self.roa_snapshot, population),
                _profile_shard,
                [len(population)],
                pool_size,
                shard_size,
            )
            valid = sum(row[0] for row in outputs)
            invalid = sum(row[1] for row in outputs)
            not_found = sum(row[2] for row in outputs)
        return ValidationProfile(
            valid=valid, invalid=invalid, not_found=not_found
        )

    def profile_reference(
        self, prefixes: Iterable[Prefix]
    ) -> ValidationProfile:
        """The frozen per-pair engine (executable specification)."""
        return validation_profile(prefixes, self.routing_table, self.roas)
