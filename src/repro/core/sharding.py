"""Sharded, process-parallel leaf classification.

The §5 pipeline is embarrassingly parallel across leaves: every verdict
depends only on the leaf, its root, and the (read-only) BGP/AS-data
substrates.  This module partitions each region's classifiable leaves
into shards, classifies shards across a ``ProcessPoolExecutor`` (fork
start method — workers inherit the substrates, nothing is pickled in),
and returns compact rows the pipeline reassembles into
:class:`~repro.core.results.LeafInference` objects bit-for-bit equal to
the serial output.

Each shard owns a :class:`ShardClassifier`: the memoized hot-path state
(exact-origin index probes, covering-root resolution cached per root,
assigned-ASN sets cached per organisation, category cache per origin
triple, relatedness cache per AS pair).  Caches are pure memoization —
they can never change a verdict, only the :class:`CacheStats` counters.
"""

from __future__ import annotations

import gc
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..bgp.rib import RoutingTable
from ..net import Prefix
from ..rir import RIR
from ..whois.database import WhoisDatabase
from .allocation_tree import TreeLeaf
from .classify import Category, MemoizedClassifier
from .relatedness import MemoizedRelatednessOracle, RelatednessOracle

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "CacheStats",
    "Shard",
    "ShardClassifier",
    "WorkUnit",
    "plan_shards",
    "effective_workers",
    "run_sharded",
]

#: Leaves per shard when ``--shard-size`` is not given.  Small enough to
#: balance five unevenly sized regions across four workers, large enough
#: that per-shard cache warm-up stays negligible.
DEFAULT_SHARD_SIZE = 2048

_EMPTY: FrozenSet[int] = frozenset()


@dataclass
class CacheStats:
    """Mergeable hit/miss counters for the per-shard caches."""

    relatedness_hits: int = 0
    relatedness_misses: int = 0
    category_hits: int = 0
    category_misses: int = 0
    root_origin_hits: int = 0
    root_origin_misses: int = 0
    assigned_hits: int = 0
    assigned_misses: int = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold another shard's counters into this one."""
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def hit_rates(self) -> Dict[str, float]:
        """Per-cache hit rates in [0, 1]."""
        return {
            "relatedness": self._rate(
                self.relatedness_hits, self.relatedness_misses
            ),
            "category": self._rate(self.category_hits, self.category_misses),
            "root_origin": self._rate(
                self.root_origin_hits, self.root_origin_misses
            ),
            "assigned": self._rate(self.assigned_hits, self.assigned_misses),
        }

    def as_dict(self) -> Dict[str, object]:
        """Counters plus hit rates, for reports and ``BENCH_*.json``."""
        payload: Dict[str, object] = {
            field.name: getattr(self, field.name) for field in fields(self)
        }
        payload["hit_rates"] = {
            name: round(rate, 4) for name, rate in self.hit_rates().items()
        }
        return payload


@dataclass(frozen=True)
class WorkUnit:
    """One region's classification input: its leaves plus its database."""

    rir: RIR
    database: WhoisDatabase
    leaves: Sequence[TreeLeaf]


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of one work unit's leaves."""

    work_index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


#: What a worker sends back per leaf: the category name plus the three
#: origin sets as sorted tuples.  Records and prefixes stay in the
#: parent (inherited via fork), so IPC moves only small immutables.
_Row = Tuple[str, Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]


class ShardClassifier:
    """Per-shard memoized classification state.

    Resolution per leaf mirrors ``LeaseInferencePipeline`` exactly:
    exact origins for the leaf, exact-then-covering (or exact-only, when
    the ablation flag is off) for the root, RIR-assigned ASNs of the
    root organisation, then the §5.2 decision procedure.
    """

    def __init__(
        self,
        database: WhoisDatabase,
        routing_table: RoutingTable,
        oracle: RelatednessOracle,
        use_covering_root_lookup: bool = True,
    ) -> None:
        self._database = database
        self._routing_table = routing_table
        self._exact = routing_table.exact_index()
        self._use_covering = use_covering_root_lookup
        self._oracle = MemoizedRelatednessOracle.wrapping(oracle)
        self._classifier = MemoizedClassifier(self._oracle)
        self._root_origins: Dict[Prefix, FrozenSet[int]] = {}
        self._assigned: Dict[Optional[str], FrozenSet[int]] = {}
        self._root_hits = 0
        self._root_misses = 0
        self._assigned_hits = 0
        self._assigned_misses = 0

    def classify(
        self, leaf: TreeLeaf
    ) -> Tuple[Category, FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
        """The verdict and origin triple for one leaf."""
        origins = self._exact.get(leaf.prefix)
        leaf_origins = frozenset(origins) if origins else _EMPTY
        root_origins = self._resolve_root_origins(leaf.root_prefix)
        root_assigned = self._resolve_assigned(leaf)
        category = self._classifier.classify(
            leaf_origins, root_origins, root_assigned
        )
        return category, leaf_origins, root_origins, root_assigned

    def _resolve_root_origins(
        self, root_prefix: Optional[Prefix]
    ) -> FrozenSet[int]:
        if root_prefix is None:
            return _EMPTY
        cached = self._root_origins.get(root_prefix)
        if cached is not None:
            self._root_hits += 1
            return cached
        self._root_misses += 1
        if self._use_covering:
            resolved = self._routing_table.covering_origins(root_prefix)
        else:
            origins = self._exact.get(root_prefix)
            resolved = frozenset(origins) if origins else _EMPTY
        self._root_origins[root_prefix] = resolved
        return resolved

    def _resolve_assigned(self, leaf: TreeLeaf) -> FrozenSet[int]:
        if leaf.root_record is None or leaf.root_record.org_id is None:
            return _EMPTY
        org_id = leaf.root_record.org_id
        cached = self._assigned.get(org_id)
        if cached is not None:
            self._assigned_hits += 1
            return cached
        self._assigned_misses += 1
        resolved = frozenset(self._database.asns_of_org(org_id))
        self._assigned[org_id] = resolved
        return resolved

    def stats(self) -> CacheStats:
        """This shard's cache counters."""
        return CacheStats(
            relatedness_hits=self._oracle.hits,
            relatedness_misses=self._oracle.misses,
            category_hits=self._classifier.hits,
            category_misses=self._classifier.misses,
            root_origin_hits=self._root_hits,
            root_origin_misses=self._root_misses,
            assigned_hits=self._assigned_hits,
            assigned_misses=self._assigned_misses,
        )


def plan_shards(
    leaf_counts: Sequence[int], shard_size: Optional[int] = None
) -> List[Shard]:
    """Slice each work unit into contiguous shards of ``shard_size``."""
    size = shard_size or DEFAULT_SHARD_SIZE
    if size < 1:
        raise ValueError(f"shard_size must be >= 1, got {size}")
    shards: List[Shard] = []
    for work_index, count in enumerate(leaf_counts):
        for start in range(0, count, size):
            shards.append(
                Shard(work_index, start, min(start + size, count))
            )
    return shards


def fork_available() -> bool:
    """True when the platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def effective_workers(
    workers: int, total_leaves: int, shard_size: Optional[int] = None
) -> int:
    """The worker count actually used: serial for small inputs.

    One shard's worth of leaves (or fewer) never pays pool start-up;
    platforms without fork (pickling the substrates to spawn workers
    would dwarf the classification itself) always run serial.
    """
    if workers <= 1:
        return 1
    if not fork_available():
        return 1
    if total_leaves <= (shard_size or DEFAULT_SHARD_SIZE):
        return 1
    return workers


# Worker-side state, inherited through fork.  Set in the parent
# immediately before the pool is created, cleared right after.
_WORKER_STATE: Optional[
    Tuple[Sequence[WorkUnit], RoutingTable, RelatednessOracle, bool]
] = None


def _classify_shard(shard: Shard) -> Tuple[List[_Row], CacheStats]:
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defensive; fork guarantees state
        raise RuntimeError("worker has no inherited classification state")
    work, routing_table, oracle, use_covering = state
    unit = work[shard.work_index]
    classifier = ShardClassifier(
        unit.database, routing_table, oracle, use_covering
    )
    rows: List[_Row] = []
    for leaf in unit.leaves[shard.start : shard.stop]:
        category, leaf_origins, root_origins, assigned = classifier.classify(
            leaf
        )
        rows.append(
            (
                category.name,
                tuple(sorted(leaf_origins)),
                tuple(sorted(root_origins)),
                tuple(sorted(assigned)),
            )
        )
    return rows, classifier.stats()


def run_sharded(
    work: Sequence[WorkUnit],
    routing_table: RoutingTable,
    oracle: RelatednessOracle,
    use_covering_root_lookup: bool,
    workers: int,
    shard_size: Optional[int] = None,
) -> Tuple[List[Shard], List[Tuple[List[_Row], CacheStats]]]:
    """Classify every work unit across a fork-based process pool.

    Returns the shard plan and, aligned with it, each shard's rows in
    leaf order — deterministic regardless of which worker ran what.
    """
    global _WORKER_STATE
    shards = plan_shards([len(unit.leaves) for unit in work], shard_size)
    if not shards:
        return [], []
    pool_size = min(workers, len(shards))
    context = multiprocessing.get_context("fork")
    _WORKER_STATE = (work, routing_table, oracle, use_covering_root_lookup)
    # Freeze the inherited heap so worker GC passes skip it: without
    # this, the first collection in each child walks every parent
    # object and copy-on-write duplicates the whole heap — on large
    # worlds that costs more than the classification itself.
    gc.collect()
    gc.freeze()
    try:
        with ProcessPoolExecutor(
            max_workers=pool_size, mp_context=context
        ) as pool:
            outputs = list(pool.map(_classify_shard, shards))
    finally:
        _WORKER_STATE = None
        gc.unfreeze()
    return shards, outputs
