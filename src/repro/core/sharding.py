"""Sharded, process-parallel execution for the analysis engines.

Every fast engine in this package is embarrassingly parallel across its
items: lease verdicts depend only on one leaf plus the read-only
:class:`~repro.core.context.AnalysisContext`, legacy verdicts on one
block, RPKI outcomes on one announcement.  This module provides the one
generic fan-out they all share — :func:`run_sharded` partitions the
items of every work unit into contiguous shards and runs a module-level
``runner(payload, shard)`` across a ``ProcessPoolExecutor``.

The pool is start-method agnostic.  Under **fork**, workers inherit the
payload through copy-on-write and nothing is pickled; under **spawn**
(platforms without fork), the initializer ships the payload exactly once
per worker — the payload is the pickle-cheap shared context plus compact
key tuples, never record objects.  Both modes return shard outputs in
plan order, so reassembly is deterministic regardless of scheduling.

:class:`ShardClassifier` is the §5.2 hot path: one per shard (or per
region, serially), all lookups served from the shared context, with
four pure-memoization caches whose counters land in :class:`CacheStats`.
"""

from __future__ import annotations

import gc
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, fields
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..net import Prefix
from ..rir import RIR
from .classify import Category
from .context import AnalysisContext, RibSnapshot

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "CacheStats",
    "Shard",
    "ShardClassifier",
    "plan_shards",
    "fork_available",
    "effective_workers",
    "run_sharded",
]

#: Items per shard when ``--shard-size`` is not given.  Small enough to
#: balance five unevenly sized regions across four workers, large enough
#: that per-shard cache warm-up stays negligible.
DEFAULT_SHARD_SIZE = 2048

_EMPTY: FrozenSet[int] = frozenset()


@dataclass
class CacheStats:
    """Mergeable hit/miss counters for the per-shard caches."""

    relatedness_hits: int = 0
    relatedness_misses: int = 0
    category_hits: int = 0
    category_misses: int = 0
    root_origin_hits: int = 0
    root_origin_misses: int = 0
    assigned_hits: int = 0
    assigned_misses: int = 0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Fold another shard's counters into this one."""
        for field in fields(self):
            setattr(
                self,
                field.name,
                getattr(self, field.name) + getattr(other, field.name),
            )
        return self

    @staticmethod
    def _rate(hits: int, misses: int) -> float:
        total = hits + misses
        return hits / total if total else 0.0

    def hit_rates(self) -> Dict[str, float]:
        """Per-cache hit rates in [0, 1]."""
        return {
            "relatedness": self._rate(
                self.relatedness_hits, self.relatedness_misses
            ),
            "category": self._rate(self.category_hits, self.category_misses),
            "root_origin": self._rate(
                self.root_origin_hits, self.root_origin_misses
            ),
            "assigned": self._rate(self.assigned_hits, self.assigned_misses),
        }

    def as_dict(self) -> Dict[str, object]:
        """Counters plus hit rates, for reports and ``BENCH_*.json``."""
        payload: Dict[str, object] = {
            field.name: getattr(self, field.name) for field in fields(self)
        }
        payload["hit_rates"] = {
            name: round(rate, 4) for name, rate in self.hit_rates().items()
        }
        return payload


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of one work unit's items."""

    work_index: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


#: What a classification worker sends back per leaf: the category name
#: plus the three origin sets as sorted tuples.  Records stay in the
#: parent, so IPC moves only small immutables.
_Row = Tuple[str, Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]

_CategoryKey = Tuple[FrozenSet[int], FrozenSet[int], FrozenSet[int]]


class ShardClassifier:
    """Per-shard memoized §5.2 classification over the shared context.

    Resolution per leaf mirrors the reference engine exactly: exact
    origins for the leaf, exact-then-covering (or exact-only, when the
    ablation flag is off) for the root, RIR-assigned ASNs of the root
    organisation, then the §5.2 decision procedure.

    The relatedness memo is keyed ``(leaf_origin, root_org)`` — "is this
    origin related to any AS the root organisation registered?" — and is
    consulted **eagerly for every originated leaf**, above the category
    cache.  The previous per-AS-pair memo sat below the category cache
    and never saw a repeated query (every ``BENCH_pipeline.json`` run
    recorded a 0.0 hit rate); sibling leaves under one root re-ask this
    origin/org question constantly, so this key actually hits.
    """

    def __init__(
        self,
        context: AnalysisContext,
        rir: RIR,
        use_covering_root_lookup: bool = True,
        rib: Optional[RibSnapshot] = None,
    ) -> None:
        self._context = context
        self._rib = context.rib if rib is None else rib
        self._assigned_of_org = context.assigned.get(rir, {})
        self._use_covering = use_covering_root_lookup
        self._root_origins: Dict[Prefix, FrozenSet[int]] = {}
        self._assigned: Dict[Optional[str], FrozenSet[int]] = {}
        self._related: Dict[Tuple[int, Optional[str]], bool] = {}
        self._categories: Dict[_CategoryKey, Category] = {}
        self._related_hits = 0
        self._related_misses = 0
        self._category_hits = 0
        self._category_misses = 0
        self._root_hits = 0
        self._root_misses = 0
        self._assigned_hits = 0
        self._assigned_misses = 0

    def classify(
        self,
        prefix: Prefix,
        root_prefix: Optional[Prefix],
        root_org: Optional[str],
    ) -> Tuple[Category, FrozenSet[int], FrozenSet[int], FrozenSet[int]]:
        """The verdict and origin triple for one leaf key."""
        leaf_origins = self._rib.exact_origins(prefix)
        root_origins = self._resolve_root_origins(root_prefix)
        root_assigned = self._resolve_assigned(root_org)
        related_assigned = False
        for origin in leaf_origins:
            if self._related_to_assigned(origin, root_org, root_assigned):
                related_assigned = True
        key = (leaf_origins, root_origins, root_assigned)
        category = self._categories.get(key)
        if category is None:
            self._category_misses += 1
            category = self._decide(
                leaf_origins, root_origins, related_assigned
            )
            self._categories[key] = category
        else:
            self._category_hits += 1
        return category, leaf_origins, root_origins, root_assigned

    def _decide(
        self,
        leaf_origins: FrozenSet[int],
        root_origins: FrozenSet[int],
        related_assigned: bool,
    ) -> Category:
        """§5.2 with the assigned-relatedness clause precomputed.

        ``related_assigned`` is exactly ``any_related(leaf_origins,
        root_assigned)``; group 4's target set is the union of assigned
        and root origins, so its test decomposes into ``related_assigned
        or any_related(leaf_origins, root_origins)``.
        """
        if not leaf_origins and not root_origins:
            return Category.UNUSED
        if not leaf_origins:
            return Category.AGGREGATED_CUSTOMER
        if not root_origins:
            if related_assigned:
                return Category.ISP_CUSTOMER
            return Category.LEASED_GROUP3
        if related_assigned or self._context.any_related(
            leaf_origins, root_origins
        ):
            return Category.DELEGATED_CUSTOMER
        return Category.LEASED_GROUP4

    def _related_to_assigned(
        self,
        origin: int,
        root_org: Optional[str],
        root_assigned: FrozenSet[int],
    ) -> bool:
        key = (origin, root_org)
        answer = self._related.get(key)
        if answer is None:
            self._related_misses += 1
            answer = not self._context.related_to(origin).isdisjoint(
                root_assigned
            )
            self._related[key] = answer
        else:
            self._related_hits += 1
        return answer

    def _resolve_root_origins(
        self, root_prefix: Optional[Prefix]
    ) -> FrozenSet[int]:
        if root_prefix is None:
            return _EMPTY
        cached = self._root_origins.get(root_prefix)
        if cached is not None:
            self._root_hits += 1
            return cached
        self._root_misses += 1
        if self._use_covering:
            resolved = self._rib.covering_origins(root_prefix)
        else:
            resolved = self._rib.exact_origins(root_prefix)
        self._root_origins[root_prefix] = resolved
        return resolved

    def _resolve_assigned(self, org_id: Optional[str]) -> FrozenSet[int]:
        if not org_id:
            return _EMPTY
        cached = self._assigned.get(org_id)
        if cached is not None:
            self._assigned_hits += 1
            return cached
        self._assigned_misses += 1
        resolved = self._assigned_of_org.get(org_id, _EMPTY)
        self._assigned[org_id] = resolved
        return resolved

    def invalidate_root(self, root_prefix: Prefix) -> bool:
        """Evict one root's resolved origins from the memo.

        The incremental engine calls this when a burst touched a prefix
        at or below *root_prefix*; every other memo survives (`_related`
        and `_assigned` are RIB-independent, `_categories` is pure in its
        key).  Returns True when an entry was actually evicted.
        """
        return self._root_origins.pop(root_prefix, None) is not None

    def stats(self) -> CacheStats:
        """This shard's cache counters."""
        return CacheStats(
            relatedness_hits=self._related_hits,
            relatedness_misses=self._related_misses,
            category_hits=self._category_hits,
            category_misses=self._category_misses,
            root_origin_hits=self._root_hits,
            root_origin_misses=self._root_misses,
            assigned_hits=self._assigned_hits,
            assigned_misses=self._assigned_misses,
        )


def plan_shards(
    unit_lengths: Sequence[int], shard_size: Optional[int] = None
) -> List[Shard]:
    """Slice each work unit into contiguous shards of ``shard_size``."""
    size = shard_size or DEFAULT_SHARD_SIZE
    if size < 1:
        raise ValueError(f"shard_size must be >= 1, got {size}")
    shards: List[Shard] = []
    for work_index, count in enumerate(unit_lengths):
        for start in range(0, count, size):
            shards.append(
                Shard(work_index, start, min(start + size, count))
            )
    return shards


def fork_available() -> bool:
    """True when the platform supports the fork start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def effective_workers(
    workers: int, total_items: int, shard_size: Optional[int] = None
) -> int:
    """The worker count actually used: serial for small inputs.

    One shard's worth of items (or fewer) never pays pool start-up.
    Platforms without fork no longer force serial: the shared context is
    spawn-safe, so the pool pickles it once per worker and proceeds.
    """
    if workers <= 1:
        return 1
    if total_items <= (shard_size or DEFAULT_SHARD_SIZE):
        return 1
    return workers


# Worker-side state.  Under fork the initializer arguments are inherited
# through the process image (nothing pickled); under spawn they are
# pickled once per worker by the executor.
_WORKER_STATE: Optional[Tuple[object, Callable[[object, Shard], object]]] = (
    None
)


def _init_worker(
    payload: object, runner: Callable[[object, Shard], object]
) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (payload, runner)


def _run_shard(shard: Shard) -> object:
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defensive; initializer sets it
        raise RuntimeError("worker pool was not initialized with a payload")
    payload, runner = state
    return runner(payload, shard)


def run_sharded(
    payload: object,
    runner: Callable[[object, Shard], object],
    unit_lengths: Sequence[int],
    workers: int,
    shard_size: Optional[int] = None,
    start_method: Optional[str] = None,
) -> Tuple[List[Shard], List[object]]:
    """Run ``runner(payload, shard)`` across a process pool.

    Returns the shard plan and, aligned with it, each shard's output in
    item order — deterministic regardless of which worker ran what.
    ``runner`` must be a module-level function (spawn pickles it by
    reference) and ``payload`` must be picklable on spawn platforms;
    under fork neither is ever serialized.

    ``start_method`` pins the pool's start method (``"fork"`` /
    ``"spawn"`` / ``"forkserver"``); the default picks fork where
    available.  Benchmarks and equivalence tests use the pin to measure
    both code paths on one platform.
    """
    shards = plan_shards(unit_lengths, shard_size)
    if not shards:
        return [], []
    pool_size = min(workers, len(shards))
    if start_method is None:
        use_fork = fork_available()
        method = "fork" if use_fork else "spawn"
    else:
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} unavailable on this "
                "platform"
            )
        method = start_method
        use_fork = method == "fork"
    mp_context = multiprocessing.get_context(method)
    if use_fork:
        # Freeze the inherited heap so worker GC passes skip it: without
        # this, the first collection in each child walks every parent
        # object and copy-on-write duplicates the whole heap — on large
        # worlds that costs more than the classification itself.
        gc.collect()
        gc.freeze()
    try:
        with ProcessPoolExecutor(
            max_workers=pool_size,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(payload, runner),
        ) as pool:
            outputs = list(pool.map(_run_shard, shards))
    finally:
        if use_fork:
            gc.unfreeze()
    return shards, outputs


def classify_shard_rows(
    payload: Tuple[AnalysisContext, bool, Tuple[RIR, ...]], shard: Shard
) -> Tuple[List[_Row], CacheStats]:
    """Classify one shard of leaf keys from the shared context.

    The module-level runner for the lease pipeline's parallel mode:
    ``payload`` is ``(context, use_covering_root_lookup, rir_order)``
    and ``shard.work_index`` indexes ``rir_order``.
    """
    context, use_covering, rir_order = payload
    rir = rir_order[shard.work_index]
    classifier = ShardClassifier(context, rir, use_covering)
    rows: List[_Row] = []
    for key in context.leaf_keys[rir][shard.start : shard.stop]:
        category, leaf_origins, root_origins, assigned = classifier.classify(
            *key
        )
        rows.append(
            (
                category.name,
                tuple(sorted(leaf_origins)),
                tuple(sorted(root_origins)),
                tuple(sorted(assigned)),
            )
        )
    return rows, classifier.stats()
