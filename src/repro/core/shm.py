"""Zero-copy shared-memory snapshot of the analysis substrate.

Spawn-based worker pools historically re-pickled the entire
:class:`~repro.core.context.AnalysisContext` — RIB, relatedness closure,
per-registry organisation maps, and every leaf key — once per worker.
On internet-scale worlds that is hundreds of megabytes of pickle per
pool start-up.  This module freezes those hot tables into flat sorted
arrays inside **one** ``multiprocessing.shared_memory`` segment:

* the RIB becomes :class:`FlatRib` — packed ``network << 8 | length``
  keys with per-prefix origin buckets, searched with the
  :mod:`repro.net.radix` flat-array helpers (binary search instead of
  dict probes, byte-identical results);
* the relatedness closure, the per-RIR ``org → assigned ASNs`` maps,
  and the per-RIR leaf-key sequences become offset-indexed arrays and
  interned string tables.

:class:`SharedAnalysisContext` duck-types ``AnalysisContext`` for the
classification hot path, so ``classify_shard_rows`` runs over it
unchanged.  Pickling it ships an O(1) descriptor — the segment *name*
plus a section directory — and ``__setstate__`` re-attaches by name, so
a spawn initializer's per-worker payload drops from O(table) to a few
hundred bytes.  Fork workers simply inherit the mapping.

Lifecycle: the creating process owns the segment and must call
:meth:`SharedAnalysisContext.destroy` (the pipeline does so in a
``finally``); a ``weakref.finalize`` guard unlinks on abnormal teardown,
and attach-side processes unregister from the resource tracker so a
worker exit can never unlink the parent's segment (bpo-38119).
"""

from __future__ import annotations

import os
import pickle
import weakref
from array import array
from multiprocessing import resource_tracker, shared_memory
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    cast,
)

from ..net import Prefix
from ..net.radix import flat_exact_index, pack_prefix, unpack_prefix
from ..rir import RIR
from .context import AnalysisContext, LeafKey, RibSnapshot

__all__ = [
    "FlatRib",
    "SharedAnalysisContext",
    "attached_segment_names",
    "payload_pickle_bytes",
]

_EMPTY: FrozenSet[int] = frozenset()

#: Sentinel packed-prefix value for "no root prefix" (no valid packed
#: key reaches 2**64 - 1: networks are 32-bit, lengths 8-bit).
_NO_PREFIX = (1 << 64) - 1
#: Sentinel string-table index for "no organisation".
_NO_ORG = 0xFFFFFFFF

#: Byte alignment of every section (covers the widest typecode, ``Q``).
_ALIGN = 8


def payload_pickle_bytes(payload: object) -> int:
    """The pickled size of *payload* — what spawn ships per worker.

    This is the number ``repro bench --memory`` reports for each mode:
    with the plain context it is O(every table); with
    :class:`SharedAnalysisContext` it is O(1) descriptor metadata.
    """
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


def attached_segment_names() -> List[str]:
    """Names of live ``/dev/shm`` segments created by this module.

    Test helper: after a pipeline run or pool crash the list must be
    empty (no leaked segments).  Only segments carrying this module's
    name prefix are reported, so concurrent unrelated shm users don't
    produce false positives.
    """
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-POSIX fallback
        return []
    return sorted(
        name
        for name in os.listdir(root)
        if name.lstrip("/").startswith(_NAME_PREFIX)
    )


#: Prefix of every segment name this module creates.
_NAME_PREFIX = "repro_ctx_"

#: Per-process counter distinguishing segments created by one process.
_SEGMENT_SERIAL = 0


def _create_segment(size: int) -> shared_memory.SharedMemory:
    """A fresh named segment: ``repro_ctx_<pid>_<serial>``.

    The pid keeps concurrent processes apart; the serial keeps repeated
    creations within one process apart.  Collisions (a stale leftover
    from a killed process with a recycled pid) are skipped over.
    """
    global _SEGMENT_SERIAL
    while True:
        _SEGMENT_SERIAL += 1
        name = f"{_NAME_PREFIX}{os.getpid()}_{_SEGMENT_SERIAL}"
        try:
            return shared_memory.SharedMemory(
                create=True, size=size, name=name
            )
        except FileExistsError:  # pragma: no cover - recycled-pid race
            continue


class _Arena:
    """Builds the flat byte image: named, aligned, typed sections."""

    def __init__(self) -> None:
        self._chunks: List[bytes] = []
        self._size = 0
        #: name -> (byte offset, element count, typecode; "B" = raw bytes)
        self.sections: Dict[str, Tuple[int, int, str]] = {}

    def _pad(self) -> None:
        remainder = self._size % _ALIGN
        if remainder:
            pad = _ALIGN - remainder
            self._chunks.append(b"\x00" * pad)
            self._size += pad

    def add_array(self, name: str, typecode: str, values: Iterable[int]) -> None:
        """Append one typed array section."""
        self._pad()
        data = array(typecode, values)
        raw = data.tobytes()
        self.sections[name] = (self._size, len(data), typecode)
        self._chunks.append(raw)
        self._size += len(raw)

    def add_bytes(self, name: str, blob: bytes) -> None:
        """Append one raw byte-blob section (string tables)."""
        self._pad()
        self.sections[name] = (self._size, len(blob), "B")
        self._chunks.append(blob)
        self._size += len(blob)

    @property
    def size(self) -> int:
        return self._size

    def write_to(self, buf: memoryview) -> None:
        cursor = 0
        for chunk in self._chunks:
            buf[cursor : cursor + len(chunk)] = chunk
            cursor += len(chunk)


class _Views:
    """Casted memoryviews over an attached segment, released in order.

    ``SharedMemory.close`` raises ``BufferError`` while any exported
    view is alive, so every cast is tracked and released first.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        sections: Dict[str, Tuple[int, int, str]],
    ) -> None:
        self._shm = shm
        self._sections = sections
        self._open: List[memoryview] = []

    def array(self, name: str) -> memoryview:
        offset, count, typecode = self._sections[name]
        width = array(typecode).itemsize
        view = self._shm.buf[offset : offset + count * width]
        self._open.append(view)
        cast = view.cast(typecode)
        self._open.append(cast)
        return cast

    def raw(self, name: str) -> memoryview:
        offset, count, _typecode = self._sections[name]
        view = self._shm.buf[offset : offset + count]
        self._open.append(view)
        return view

    def release(self) -> None:
        # Casts were appended after their parent slices; release newest
        # first so no view is released while a child cast is alive.
        while self._open:
            self._open.pop().release()


class FlatRib:
    """Frozen RIB lookups over flat sorted arrays.

    Same contract as :class:`~repro.core.context.RibSnapshot` —
    ``exact_origins`` / ``covering_origins`` / ``exact_items`` — but the
    exact index is a sorted array of packed prefix keys plus an
    offset-indexed origin pool, so the whole structure is three
    buffers that can live anywhere: local ``array`` objects or
    memoryviews over a shared segment.
    """

    __slots__ = ("_keys", "_offsets", "_origins", "_lengths")

    def __init__(
        self,
        keys: Sequence[int],
        offsets: Sequence[int],
        origins: Sequence[int],
        lengths: Tuple[int, ...],
    ) -> None:
        self._keys = keys
        self._offsets = offsets
        self._origins = origins
        self._lengths = lengths

    @classmethod
    def from_snapshot(cls, rib: RibSnapshot) -> "FlatRib":
        """Flatten a dict-backed snapshot (local arrays, no shm)."""
        entries = sorted(
            (pack_prefix(prefix), origins)
            for prefix, origins in rib.exact_items()
        )
        keys = array("Q", (packed for packed, _origins in entries))
        offsets = array("I", [0])
        origins = array("I")
        total = 0
        for _packed, bucket in entries:
            ordered = sorted(bucket)
            origins.extend(ordered)
            total += len(ordered)
            offsets.append(total)
        lengths = tuple(sorted({key & 0xFF for key in keys}))
        return cls(keys, offsets, origins, lengths)

    def _bucket(self, index: int) -> FrozenSet[int]:
        start = self._offsets[index]
        stop = self._offsets[index + 1]
        if start == stop:
            return _EMPTY
        return frozenset(self._origins[start:stop])

    def exact_origins(self, prefix: Prefix) -> FrozenSet[int]:
        """Origins of the exact-matching prefix (empty when absent)."""
        index = flat_exact_index(self._keys, prefix)
        if index is None:
            return _EMPTY
        return self._bucket(index)

    def covering_origins(self, prefix: Prefix) -> FrozenSet[int]:
        """Exact match, else the least-specific covering prefix's origins.

        Mirrors ``RibSnapshot.covering_origins`` exactly, including the
        subtlety that a *stored but empty* exact bucket falls through to
        the ascending truncation walk (where the prefix answers for
        itself at its own length unless a shorter cover exists).
        """
        index = flat_exact_index(self._keys, prefix)
        if index is not None:
            bucket = self._bucket(index)
            if bucket:
                return bucket
        for length in self._lengths:
            if length > prefix.length:
                break
            found = flat_exact_index(self._keys, prefix.supernet(length))
            if found is not None:
                return self._bucket(found)
        return _EMPTY

    def exact_items(self) -> Iterator[Tuple[Prefix, FrozenSet[int]]]:
        """The ``(prefix, origins)`` pairs, ascending by packed key."""
        for index in range(len(self._keys)):
            yield unpack_prefix(self._keys[index]), self._bucket(index)

    def __contains__(self, prefix: Prefix) -> bool:
        return flat_exact_index(self._keys, prefix) is not None

    def __len__(self) -> int:
        return len(self._keys)


class _StrTable:
    """An interned string table: offset array + UTF-8 blob."""

    __slots__ = ("_offsets", "_blob")

    def __init__(self, offsets: Sequence[int], blob: memoryview) -> None:
        self._offsets = offsets
        self._blob = blob

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index: int) -> str:
        start = self._offsets[index]
        stop = self._offsets[index + 1]
        return bytes(self._blob[start:stop]).decode("utf-8")

    def raw(self, index: int) -> bytes:
        start = self._offsets[index]
        stop = self._offsets[index + 1]
        return bytes(self._blob[start:stop])


class _FlatOrgMap:
    """One registry's ``org_id -> frozenset(assigned ASNs)`` mapping.

    Keys are kept as a lexicographically sorted UTF-8 string table and
    resolved by binary search on raw bytes — UTF-8 byte order equals
    code-point order, so lookups agree with the dict they replace.
    """

    __slots__ = ("_names", "_asn_offsets", "_asns")

    def __init__(
        self,
        names: _StrTable,
        asn_offsets: Sequence[int],
        asns: Sequence[int],
    ) -> None:
        self._names = names
        self._asn_offsets = asn_offsets
        self._asns = asns

    def __len__(self) -> int:
        return len(self._names)

    def get(
        self, org_id: str, default: Optional[FrozenSet[int]] = None
    ) -> Optional[FrozenSet[int]]:
        key = org_id.encode("utf-8")
        lo, hi = 0, len(self._names)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._names.raw(mid) < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(self._names) and self._names.raw(lo) == key:
            start = self._asn_offsets[lo]
            stop = self._asn_offsets[lo + 1]
            return frozenset(self._asns[start:stop])
        return default


class _FlatLeafKeys(Sequence[LeafKey]):
    """One registry's leaf-key sequence over three parallel arrays."""

    __slots__ = ("_leaves", "_roots", "_orgs", "_table")

    def __init__(
        self,
        leaves: Sequence[int],
        roots: Sequence[int],
        orgs: Sequence[int],
        table: _StrTable,
    ) -> None:
        self._leaves = leaves
        self._roots = roots
        self._orgs = orgs
        self._table = table

    def __len__(self) -> int:
        return len(self._leaves)

    def _key(self, index: int) -> LeafKey:
        packed_root = self._roots[index]
        org_index = self._orgs[index]
        return (
            unpack_prefix(self._leaves[index]),
            None if packed_root == _NO_PREFIX else unpack_prefix(packed_root),
            None if org_index == _NO_ORG else self._table[org_index],
        )

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            positions = range(*index.indices(len(self)))
            return [self._key(position) for position in positions]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return self._key(index)


def _detach(views: _Views, shm: shared_memory.SharedMemory) -> None:
    """Release every exported view, then close the mapping.

    Runs via ``weakref.finalize`` when a context is garbage-collected
    (worker-side attachments are rarely closed explicitly); without the
    ordered release, ``SharedMemory.__del__`` raises ``BufferError``
    over the still-exported casts at interpreter shutdown.
    """
    views.release()
    shm.close()


def _finalize_segment(name: str, creator_pid: int) -> None:
    """Last-resort unlink, skipped in forked children of the creator."""
    if os.getpid() != creator_pid:
        return
    try:
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    # repro-check: ignore[RC106] -- lost the unlink race; gone is the goal
    except FileNotFoundError:  # pragma: no cover - raced with another
        pass


def _untrack(name: str) -> None:
    """Detach an attached segment from this process's resource tracker.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's tracker, which would unlink it when *that* process exits —
    destroying the creator's data mid-run (bpo-38119).  Only the
    creating process may own unlink responsibility.
    """
    try:
        resource_tracker.unregister("/" + name, "shared_memory")
    # repro-check: ignore[RC106] -- unknown tracker entry needs no untracking
    except (KeyError, ValueError):  # pragma: no cover - tracker variance
        pass


class SharedAnalysisContext:
    """An ``AnalysisContext`` whose hot tables live in shared memory.

    Duck-types the context API the classification hot path uses —
    ``rib``, ``assigned``, ``leaf_keys``, ``related_to`` /
    ``any_related`` / ``related_pair``, ``assigned_asns``,
    ``total_leaves`` — so :func:`repro.core.sharding.classify_shard_rows`
    accepts either implementation.  ``leaves()`` raises, exactly like a
    worker-side stripped ``AnalysisContext``.
    """

    def __init__(
        self,
        descriptor: Dict[str, object],
        shm: shared_memory.SharedMemory,
        owner: bool,
    ) -> None:
        self._descriptor = descriptor
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._owner = owner
        self._finalizer = None
        if owner:
            self._finalizer = weakref.finalize(
                self, _finalize_segment, shm.name, os.getpid()
            )
        self._attach_views()

    # -- construction -----------------------------------------------------
    @classmethod
    def from_context(cls, context: AnalysisContext) -> "SharedAnalysisContext":
        """Pack *context*'s hot tables into a fresh shared segment."""
        arena = _Arena()

        flat = FlatRib.from_snapshot(context.rib)
        arena.add_array("rib_keys", "Q", flat._keys)
        arena.add_array("rib_offsets", "I", flat._offsets)
        arena.add_array("rib_origins", "I", flat._origins)

        related = context.related_sets
        rel_keys = sorted(related)
        rel_offsets = array("I", [0])
        rel_members = array("I")
        total = 0
        for asn in rel_keys:
            members = sorted(related[asn])
            rel_members.extend(members)
            total += len(members)
            rel_offsets.append(total)
        arena.add_array("rel_keys", "I", rel_keys)
        arena.add_array("rel_offsets", "I", rel_offsets)
        arena.add_array("rel_members", "I", rel_members)

        assigned_rirs: List[RIR] = []
        for rir in sorted(context.assigned, key=lambda item: item.name):
            org_map = context.assigned[rir]
            assigned_rirs.append(rir)
            encoded = sorted(
                (org.encode("utf-8"), org_map[org]) for org in org_map
            )
            blob = bytearray()
            name_offsets = array("I", [0])
            asn_offsets = array("I", [0])
            asns = array("I")
            count = 0
            for raw, members in encoded:
                blob.extend(raw)
                name_offsets.append(len(blob))
                asns.extend(sorted(members))
                count += len(members)
                asn_offsets.append(count)
            tag = rir.name
            arena.add_bytes(f"org_blob:{tag}", bytes(blob))
            arena.add_array(f"org_offsets:{tag}", "I", name_offsets)
            arena.add_array(f"org_asn_offsets:{tag}", "I", asn_offsets)
            arena.add_array(f"org_asns:{tag}", "I", asns)

        # Root-organisation ids are massively repeated across leaf keys;
        # intern them once and index per leaf.
        org_ids = sorted(
            {
                key[2]
                for keys in context.leaf_keys.values()
                for key in keys
                if key[2] is not None
            }
        )
        org_index = {org: position for position, org in enumerate(org_ids)}
        blob = bytearray()
        offsets = array("I", [0])
        for org in org_ids:
            blob.extend(org.encode("utf-8"))
            offsets.append(len(blob))
        arena.add_bytes("leaforg_blob", bytes(blob))
        arena.add_array("leaforg_offsets", "I", offsets)

        leaf_rirs: List[RIR] = []
        for rir in sorted(context.leaf_keys, key=lambda item: item.name):
            keys = context.leaf_keys[rir]
            leaf_rirs.append(rir)
            tag = rir.name
            arena.add_array(
                f"leaf_keys:{tag}", "Q", (pack_prefix(key[0]) for key in keys)
            )
            arena.add_array(
                f"leaf_roots:{tag}",
                "Q",
                (
                    _NO_PREFIX if key[1] is None else pack_prefix(key[1])
                    for key in keys
                ),
            )
            arena.add_array(
                f"leaf_orgs:{tag}",
                "I",
                (
                    _NO_ORG if key[2] is None else org_index[key[2]]
                    for key in keys
                ),
            )

        shm = _create_segment(max(1, arena.size))
        arena.write_to(shm.buf)
        descriptor: Dict[str, object] = {
            "name": shm.name.lstrip("/"),
            "sections": arena.sections,
            "rirs": context.rirs,
            "max_leaf_length": context.max_leaf_length,
            "stats": context.stats,
            "rib_lengths": flat._lengths,
            "assigned_rirs": tuple(assigned_rirs),
            "leaf_rirs": tuple(leaf_rirs),
        }
        return cls(descriptor, shm, owner=True)

    def _attach_views(self) -> None:
        assert self._shm is not None
        descriptor = self._descriptor
        sections = descriptor["sections"]
        views = _Views(self._shm, sections)  # type: ignore[arg-type]
        self._views = views
        # Registered after the owner's unlink finalizer, so on GC the
        # views release and the mapping closes before any unlink.
        self._detach_finalizer = weakref.finalize(
            self, _detach, views, self._shm
        )

        self.rirs = cast(Tuple[RIR, ...], descriptor["rirs"])
        self.max_leaf_length = cast(int, descriptor["max_leaf_length"])
        self.stats = cast(Dict[RIR, Dict[str, int]], descriptor["stats"])

        self.rib = FlatRib(
            views.array("rib_keys"),
            views.array("rib_offsets"),
            views.array("rib_origins"),
            tuple(descriptor["rib_lengths"]),  # type: ignore[arg-type]
        )
        self._rel_keys = views.array("rel_keys")
        self._rel_offsets = views.array("rel_offsets")
        self._rel_members = views.array("rel_members")

        self.assigned: Dict[RIR, _FlatOrgMap] = {}
        for rir in descriptor["assigned_rirs"]:  # type: ignore[union-attr]
            tag = rir.name
            names = _StrTable(
                views.array(f"org_offsets:{tag}"),
                views.raw(f"org_blob:{tag}"),
            )
            self.assigned[rir] = _FlatOrgMap(
                names,
                views.array(f"org_asn_offsets:{tag}"),
                views.array(f"org_asns:{tag}"),
            )

        table = _StrTable(
            views.array("leaforg_offsets"), views.raw("leaforg_blob")
        )
        self.leaf_keys: Dict[RIR, _FlatLeafKeys] = {}
        for rir in descriptor["leaf_rirs"]:  # type: ignore[union-attr]
            tag = rir.name
            self.leaf_keys[rir] = _FlatLeafKeys(
                views.array(f"leaf_keys:{tag}"),
                views.array(f"leaf_roots:{tag}"),
                views.array(f"leaf_orgs:{tag}"),
                table,
            )

    # -- AnalysisContext duck-type API ------------------------------------
    def related_to(self, asn: int) -> FrozenSet[int]:
        """The business family of *asn* (always contains *asn*)."""
        keys = self._rel_keys
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < asn:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(keys) and keys[lo] == asn:
            start = self._rel_offsets[lo]
            stop = self._rel_offsets[lo + 1]
            return frozenset(self._rel_members[start:stop])
        return frozenset((asn,))

    def any_related(
        self, lefts: Iterable[int], rights: FrozenSet[int]
    ) -> bool:
        """True when any left AS's family intersects *rights*."""
        return any(
            not self.related_to(left).isdisjoint(rights) for left in lefts
        )

    def related_pair(
        self, lefts: Iterable[int], rights: FrozenSet[int]
    ) -> Optional[Tuple[int, int]]:
        """The lowest-numbered related ``(left, right)`` pair, or None."""
        for left in sorted(lefts):
            hits = self.related_to(left) & rights
            if hits:
                return left, min(hits)
        return None

    def assigned_asns(self, rir: RIR, org_id: Optional[str]) -> FrozenSet[int]:
        """RIR-assigned ASNs of *org_id* in *rir* (§5.1 step 3)."""
        if not org_id:
            return _EMPTY
        org_map = self.assigned.get(rir)
        if org_map is None:
            return _EMPTY
        found = org_map.get(org_id, _EMPTY)
        return found if found is not None else _EMPTY

    def total_leaves(self) -> int:
        """Classifiable leaves across all snapshotted registries."""
        return sum(len(keys) for keys in self.leaf_keys.values())

    def leaves(self, rir: RIR):
        """Full leaf records never cross into shared memory."""
        raise RuntimeError(
            "SharedAnalysisContext holds flat classification keys only; "
            "the parent's AnalysisContext keeps the leaf records"
        )

    # -- lifecycle --------------------------------------------------------
    @property
    def segment_name(self) -> str:
        """The ``/dev/shm`` segment name workers attach to."""
        return str(self._descriptor["name"])

    @property
    def segment_bytes(self) -> int:
        """Total bytes of the shared segment."""
        shm = self._shm
        return shm.size if shm is not None else 0

    def close(self) -> None:
        """Release views and detach from the segment (keeps it linked)."""
        if self._shm is None:
            return
        self._detach_finalizer()
        self._shm = None

    def destroy(self) -> None:
        """Detach and unlink — creator-side teardown, idempotent."""
        name = self.segment_name
        owner = self._owner
        self.close()
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if not owner:
            return
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        segment.close()
        try:
            segment.unlink()
        # repro-check: ignore[RC106] -- already unlinked; destroy() is idempotent
        except FileNotFoundError:  # pragma: no cover - raced teardown
            pass

    # -- pickling: O(1) attach-by-name descriptor -------------------------
    def __getstate__(self) -> Dict[str, object]:
        return {"descriptor": self._descriptor}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._descriptor = state["descriptor"]  # type: ignore[assignment]
        name = str(self._descriptor["name"])
        self._shm = shared_memory.SharedMemory(name=name)
        _untrack(name)
        self._owner = False
        self._finalizer = None
        self._attach_views()
