"""Statistical support: bootstrap confidence intervals for shares and
risk ratios.

The paper reports point estimates ("five times more likely"); with a
1/50-scale substrate, absolute counts are small enough that interval
estimates matter, so the abuse benches report bootstrap CIs alongside
the ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["BootstrapCI", "share_ci", "risk_ratio_ci"]


@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        """True when *value* lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.low:.4f}, {self.high:.4f}]@{self.confidence:.0%}"
        )


def share_ci(
    successes: int,
    total: int,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Bootstrap CI for a binomial share ``successes/total``."""
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= successes <= total:
        raise ValueError("successes out of range")
    rng = np.random.default_rng(seed)
    draws = rng.binomial(total, successes / total, size=resamples) / total
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(draws, [alpha, 1.0 - alpha])
    return BootstrapCI(
        estimate=successes / total,
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def risk_ratio_ci(
    exposed_successes: int,
    exposed_total: int,
    control_successes: int,
    control_total: int,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Bootstrap CI for the ratio of two shares (risk ratio).

    Resamples both binomials independently; resamples where the control
    share is zero are discarded (the ratio is undefined there), matching
    standard practice for sparse counts.
    """
    for successes, total in (
        (exposed_successes, exposed_total),
        (control_successes, control_total),
    ):
        if total <= 0:
            raise ValueError("totals must be positive")
        if not 0 <= successes <= total:
            raise ValueError("successes out of range")
    if control_successes == 0:
        raise ValueError("control share is zero; ratio undefined")
    rng = np.random.default_rng(seed)
    exposed = (
        rng.binomial(
            exposed_total, exposed_successes / exposed_total, size=resamples
        )
        / exposed_total
    )
    control = (
        rng.binomial(
            control_total, control_successes / control_total, size=resamples
        )
        / control_total
    )
    valid = control > 0
    ratios = exposed[valid] / control[valid]
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(ratios, [alpha, 1.0 - alpha])
    estimate = (exposed_successes / exposed_total) / (
        control_successes / control_total
    )
    return BootstrapCI(
        estimate=estimate,
        low=float(low),
        high=float(high),
        confidence=confidence,
    )
