"""Per-prefix lease timelines (Fig. 3, §6.5).

Combines the historical BGP origins of one prefix with its RPKI
authorized-origin history to segment time into lease periods, AS0
markers (the between-leases "do not originate" state the paper observes
IPXO using), and gaps.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..net import Prefix
from ..rpki.archive import RpkiArchive
from ..rpki.roa import AS0

__all__ = [
    "BgpOriginHistory",
    "PeriodKind",
    "TimelinePeriod",
    "PrefixTimeline",
    "build_timeline",
]


class BgpOriginHistory:
    """Time series of BGP origin sets for one prefix."""

    def __init__(self) -> None:
        self._timestamps: List[int] = []
        self._origins: Dict[int, FrozenSet[int]] = {}

    def add_observation(self, timestamp: int, origins: Iterable[int]) -> None:
        """Record the origin set seen at *timestamp*."""
        frozen = frozenset(origins)
        if timestamp not in self._origins:
            bisect.insort(self._timestamps, timestamp)
        self._origins[timestamp] = frozen

    def history(self) -> List[Tuple[int, FrozenSet[int]]]:
        """All observations, ascending by time."""
        return [(ts, self._origins[ts]) for ts in self._timestamps]

    def origins_at(self, timestamp: int) -> FrozenSet[int]:
        """The most recent origin set at or before *timestamp*."""
        index = bisect.bisect_right(self._timestamps, timestamp)
        if index == 0:
            return frozenset()
        return self._origins[self._timestamps[index - 1]]

    def change_points(self) -> List[Tuple[int, FrozenSet[int]]]:
        """Observations where the origin set changed (first included)."""
        changes: List[Tuple[int, FrozenSet[int]]] = []
        previous: Optional[FrozenSet[int]] = None
        for timestamp, origins in self.history():
            if previous is None or origins != previous:
                changes.append((timestamp, origins))
                previous = origins
        return changes

    def __len__(self) -> int:
        return len(self._timestamps)


class PeriodKind(enum.Enum):
    """What a timeline segment represents."""

    LEASE = "lease"  # an AS is authorized and/or originating
    AS0 = "as0"  # only AS0 authorized: deliberate do-not-originate
    IDLE = "idle"  # no authorization and no origination


@dataclass(frozen=True)
class TimelinePeriod:
    """One homogeneous segment ``[start, end)`` of a prefix's history."""

    start: int
    end: Optional[int]  # None = open-ended (last observed state)
    kind: PeriodKind
    rpki_asns: FrozenSet[int]
    bgp_asns: FrozenSet[int]

    @property
    def asns(self) -> FrozenSet[int]:
        """All ASNs involved in the segment (RPKI union BGP, minus AS0)."""
        return frozenset(
            asn for asn in self.rpki_asns | self.bgp_asns if asn != AS0
        )


class PrefixTimeline:
    """Fig. 3 for one prefix: merged RPKI + BGP state over time."""

    def __init__(self, prefix: Prefix, periods: List[TimelinePeriod]) -> None:
        self.prefix = prefix
        self.periods = periods

    def lease_periods(self) -> List[TimelinePeriod]:
        """Segments where some AS held the prefix."""
        return [p for p in self.periods if p.kind is PeriodKind.LEASE]

    def as0_periods(self) -> List[TimelinePeriod]:
        """AS0 segments between leases (§6.5 defense)."""
        return [p for p in self.periods if p.kind is PeriodKind.AS0]

    def distinct_lessee_asns(self) -> Set[int]:
        """ASNs that ever held the prefix."""
        asns: Set[int] = set()
        for period in self.lease_periods():
            asns.update(period.asns)
        return asns

    def lease_count(self) -> int:
        """Number of distinct lease segments."""
        return len(self.lease_periods())

    def lease_durations(self) -> List[int]:
        """Durations (seconds) of the closed lease segments.

        The final, open-ended segment has no duration and is omitted —
        a market-dynamics metric (§8): how long does a lease last?
        """
        return [
            period.end - period.start
            for period in self.lease_periods()
            if period.end is not None
        ]

    def median_lease_duration(self) -> Optional[int]:
        """Median closed-lease duration, or None with no closed leases."""
        durations = sorted(self.lease_durations())
        if not durations:
            return None
        return durations[len(durations) // 2]

    def rows(self) -> Dict[int, List[Tuple[int, Optional[int], str]]]:
        """Per-ASN bars for rendering the figure.

        Maps each ASN (including AS0) to segments tagged ``"rpki"``,
        ``"bgp"``, or ``"both"`` — the two mark types of Fig. 3.
        """
        bars: Dict[int, List[Tuple[int, Optional[int], str]]] = {}
        for period in self.periods:
            for asn in period.rpki_asns | period.bgp_asns:
                in_rpki = asn in period.rpki_asns
                in_bgp = asn in period.bgp_asns
                tag = "both" if in_rpki and in_bgp else (
                    "rpki" if in_rpki else "bgp"
                )
                bars.setdefault(asn, []).append(
                    (period.start, period.end, tag)
                )
        return bars


def build_timeline(
    prefix: Prefix,
    bgp_history: BgpOriginHistory,
    rpki_archive: RpkiArchive,
) -> PrefixTimeline:
    """Segment a prefix's combined RPKI + BGP history into periods."""
    boundaries: Set[int] = set(ts for ts, _ in bgp_history.change_points())
    boundaries.update(ts for ts, _ in rpki_archive.change_points(prefix))
    ordered = sorted(boundaries)

    periods: List[TimelinePeriod] = []
    for index, start in enumerate(ordered):
        end = ordered[index + 1] if index + 1 < len(ordered) else None
        snapshot = rpki_archive.snapshot_at(start)
        rpki_asns = (
            snapshot.authorized_origins(prefix) if snapshot else frozenset()
        )
        bgp_asns = bgp_history.origins_at(start)
        periods.append(
            TimelinePeriod(
                start=start,
                end=end,
                kind=_kind_of(rpki_asns, bgp_asns),
                rpki_asns=rpki_asns,
                bgp_asns=bgp_asns,
            )
        )
    return PrefixTimeline(prefix=prefix, periods=_merge_adjacent(periods))


def _kind_of(rpki_asns: FrozenSet[int], bgp_asns: FrozenSet[int]) -> PeriodKind:
    real_rpki = {asn for asn in rpki_asns if asn != AS0}
    if real_rpki or bgp_asns:
        return PeriodKind.LEASE
    if AS0 in rpki_asns:
        return PeriodKind.AS0
    return PeriodKind.IDLE


def _merge_adjacent(periods: List[TimelinePeriod]) -> List[TimelinePeriod]:
    """Collapse consecutive segments with identical state."""
    merged: List[TimelinePeriod] = []
    for period in periods:
        if (
            merged
            and merged[-1].kind is period.kind
            and merged[-1].rpki_asns == period.rpki_asns
            and merged[-1].bgp_asns == period.bgp_asns
        ):
            previous = merged.pop()
            merged.append(
                TimelinePeriod(
                    start=previous.start,
                    end=period.end,
                    kind=previous.kind,
                    rpki_asns=previous.rpki_asns,
                    bgp_asns=previous.bgp_asns,
                )
            )
        else:
            merged.append(period)
    return merged
