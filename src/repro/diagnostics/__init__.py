"""Pluggable static-analysis diagnostics over the §4 datasets.

The correctness-tooling layer of the pipeline: a registry of small
rules (stable codes ``W101``/``B203``/...) executed by an engine over
whatever datasets are loaded — WHOIS, the merged RIB, the VRP set, AS
metadata, the assembled allocation tree — plus cross-dataset
consistency rules.  ``repro lint`` is the CLI front end;
``repro infer --strict`` gates inference on a clean error budget.

Typical use::

    from repro.diagnostics import DiagnosticContext, DiagnosticsEngine

    report = DiagnosticsEngine().run(DiagnosticContext.from_world(world))
    assert not report.errors()
"""

from .catalog import render_rule_catalog
from .config import DiagnosticsConfig
from .context import DiagnosticContext
from .engine import DiagnosticsEngine, DiagnosticsReport
from .model import (
    Dataset,
    Diagnostic,
    Rule,
    Severity,
    all_rules,
    register_rule,
    rule_for_code,
    rules_for_dataset,
)

__all__ = [
    "Dataset",
    "Diagnostic",
    "DiagnosticContext",
    "DiagnosticsConfig",
    "DiagnosticsEngine",
    "DiagnosticsReport",
    "Rule",
    "Severity",
    "all_rules",
    "register_rule",
    "render_rule_catalog",
    "rule_for_code",
    "rules_for_dataset",
]
