"""``python -m repro.diagnostics``: print the generated rule catalogue."""

from .catalog import render_rule_catalog

if __name__ == "__main__":
    print(render_rule_catalog(), end="")
