"""Per-run diagnostics policy: rule selection, suppression, overrides.

Mirrors how mature linters are configured: a run can *select* a subset
of rule codes, *suppress* codes entirely, and *override* the severity
of individual codes (e.g. promote ``W105`` duplicate ranges to an error
for a registry-QA gate).  The config is a plain value object; it can be
built programmatically, from a mapping, or from a JSON document::

    {
        "select": ["W101", "B202"],
        "suppress": ["R301"],
        "severity": {"W105": "error"}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Mapping, Optional

from .model import Severity

__all__ = ["DiagnosticsConfig"]


def _normalize_codes(codes: Optional[Iterable[str]]) -> FrozenSet[str]:
    return frozenset(code.strip().upper() for code in codes or () if code)


@dataclass(frozen=True)
class DiagnosticsConfig:
    """Immutable policy applied by the engine to every run."""

    #: When non-empty, only these codes run.
    select: FrozenSet[str] = frozenset()
    #: These codes never run (wins over ``select``).
    suppress: FrozenSet[str] = frozenset()
    #: Per-code severity overrides.
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        select: Optional[Iterable[str]] = None,
        suppress: Optional[Iterable[str]] = None,
        severity_overrides: Optional[Mapping[str, str]] = None,
    ) -> "DiagnosticsConfig":
        """Build from loosely typed inputs (CLI flags, parsed JSON)."""
        overrides = {
            code.strip().upper(): Severity.parse(level)
            for code, level in (severity_overrides or {}).items()
        }
        return cls(
            select=_normalize_codes(select),
            suppress=_normalize_codes(suppress),
            severity_overrides=overrides,
        )

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "DiagnosticsConfig":
        """Build from a ``{"select": [...], "suppress": [...], ...}`` dict."""
        unknown = set(mapping) - {"select", "suppress", "severity"}
        if unknown:
            raise ValueError(
                f"unknown diagnostics config keys: {sorted(unknown)}"
            )
        return cls.build(
            select=mapping.get("select"),
            suppress=mapping.get("suppress"),
            severity_overrides=mapping.get("severity"),
        )

    @classmethod
    def from_json(cls, text: str) -> "DiagnosticsConfig":
        """Build from a JSON document."""
        return cls.from_mapping(json.loads(text))

    # -- queries -----------------------------------------------------------
    def is_enabled(self, code: str) -> bool:
        """True when *code* should run under this policy."""
        if code in self.suppress:
            return False
        return not self.select or code in self.select

    def severity_for(self, code: str, default: Severity) -> Severity:
        """The effective severity of *code* (override or *default*)."""
        return self.severity_overrides.get(code, default)
