"""The dataset bundle a diagnostics run audits.

A :class:`DiagnosticContext` wraps whatever subset of the §4 inputs is
available — the five WHOIS databases, the merged routing table, the VRP
set, the AS-relationship graph, AS2org, the DROP list, the serial-
hijacker list — plus lazily built shared indexes (per-registry
allocation trees, a global registered-prefix trie, an ASN→org map) so
that individual rules stay cheap and index construction is paid once
per run, not once per rule.

Rules must tolerate missing datasets: every optional attribute may be
``None``, in which case rules needing it yield nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..core.allocation_tree import AllocationTree
from ..net import PrefixTrie
from ..rir import RIR
from ..whois.database import WhoisCollection, WhoisDatabase
from ..whois.objects import InetnumRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..abuse.dropdb import AsnDropList
    from ..asdata.as2org import AS2Org
    from ..asdata.hijackers import SerialHijackerList
    from ..asdata.relationships import ASRelationships
    from ..bgp.rib import RoutingTable
    from ..core.timeline import BgpOriginHistory
    from ..net import Prefix
    from ..rpki.archive import RpkiArchive
    from ..rpki.roa import RoaSet
    from ..simulation.io import DatasetBundle
    from ..simulation.world import World

__all__ = ["DiagnosticContext"]


class DiagnosticContext:
    """Everything a rule may inspect, with shared lazy indexes."""

    def __init__(
        self,
        whois: Optional[WhoisCollection] = None,
        routing_table: Optional["RoutingTable"] = None,
        roas: Optional["RoaSet"] = None,
        relationships: Optional["ASRelationships"] = None,
        as2org: Optional["AS2Org"] = None,
        drop: Optional["AsnDropList"] = None,
        hijackers: Optional["SerialHijackerList"] = None,
        rpki_archive: Optional["RpkiArchive"] = None,
        origin_histories: Optional[
            Dict["Prefix", "BgpOriginHistory"]
        ] = None,
    ) -> None:
        self.whois = whois
        self.routing_table = routing_table
        self.roas = roas
        self.relationships = relationships
        self.as2org = as2org
        self.drop = drop
        self.hijackers = hijackers
        #: Longitudinal inputs for the temporal (T4xx) rules: the ROA
        #: archive plus per-prefix BGP origin time series.  Both may be
        #: absent (rules yield nothing); today they carry the featured
        #: Fig. 3 prefix, but the shape supports any number of prefixes.
        self.rpki_archive = rpki_archive
        self.origin_histories = origin_histories or {}
        self._trees: Optional[Dict[RIR, AllocationTree]] = None
        self._registered: Optional[PrefixTrie[InetnumRecord]] = None
        self._asn_registrations: Optional[
            Dict[int, Tuple[RIR, Optional[str]]]
        ] = None

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_bundle(cls, bundle: "DatasetBundle") -> "DiagnosticContext":
        """Wrap an on-disk dataset bundle (the CLI path)."""
        rpki_archive = None
        origin_histories = None
        featured = bundle.featured
        if featured is not None:
            rpki_archive = featured.rpki_archive
            origin_histories = {
                featured.prefix: featured.updates.origin_history(
                    featured.prefix
                )
            }
        return cls(
            whois=bundle.whois,
            routing_table=bundle.routing_table,
            roas=bundle.roas,
            relationships=bundle.relationships,
            as2org=bundle.as2org,
            drop=bundle.drop_archive.union(),
            hijackers=bundle.hijackers,
            rpki_archive=rpki_archive,
            origin_histories=origin_histories,
        )

    @classmethod
    def from_world(cls, world: "World") -> "DiagnosticContext":
        """Wrap an in-memory simulated world (``run-all``/tests path)."""
        from ..core.timeline import BgpOriginHistory

        featured = world.featured
        history = BgpOriginHistory()
        for timestamp, origins in featured.bgp_observations:
            history.add_observation(timestamp, origins)
        return cls(
            whois=world.whois,
            routing_table=world.routing_table,
            roas=world.roas,
            relationships=world.relationships,
            as2org=world.as2org,
            drop=world.drop,
            hijackers=world.hijackers,
            rpki_archive=featured.rpki_archive,
            origin_histories={featured.prefix: history},
        )

    @classmethod
    def whois_only(cls, database: WhoisDatabase) -> "DiagnosticContext":
        """Wrap a single regional database (the legacy linter path)."""
        collection = WhoisCollection()
        collection.databases()[database.rir] = database
        return cls(whois=collection)

    # -- dataset accessors -------------------------------------------------
    def databases(self) -> List[WhoisDatabase]:
        """The non-empty regional WHOIS databases (empty list if absent)."""
        if self.whois is None:
            return []
        return [database for database in self.whois if len(database)]

    # -- shared lazy indexes -----------------------------------------------
    def trees(self) -> Dict[RIR, AllocationTree]:
        """Per-registry allocation trees (built once per run)."""
        if self._trees is None:
            self._trees = {
                database.rir: AllocationTree(database)
                for database in self.databases()
            }
        return self._trees

    def registered_trie(self) -> PrefixTrie[InetnumRecord]:
        """All registered prefixes across registries (first record wins)."""
        if self._registered is None:
            trie: PrefixTrie[InetnumRecord] = PrefixTrie()
            for database in self.databases():
                for record in database.inetnums:
                    if record.range.first > record.range.last:
                        continue  # inverted (W106) ranges can't decompose
                    for prefix in record.range.to_prefixes():
                        if trie.exact(prefix) is None:
                            trie.insert(prefix, record)
            self._registered = trie
        return self._registered

    def asn_registration(
        self, asn: int
    ) -> Optional[Tuple[RIR, Optional[str]]]:
        """The WHOIS registration of *asn* as ``(rir, org_id)``, or None."""
        if self._asn_registrations is None:
            registrations: Dict[int, Tuple[RIR, Optional[str]]] = {}
            for database in self.databases():
                for record in database.autnums:
                    registrations.setdefault(
                        record.asn, (database.rir, record.org_id)
                    )
            self._asn_registrations = registrations
        return self._asn_registrations.get(asn)

    def asn_org(self, asn: int) -> Optional[str]:
        """The organisation of *asn*: WHOIS first, then AS2org."""
        registration = self.asn_registration(asn)
        if registration is not None and registration[1]:
            return registration[1]
        if self.as2org is not None:
            return self.as2org.org_of(asn)
        return None
