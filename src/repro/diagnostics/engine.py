"""Running rule sets and aggregating their findings.

:class:`DiagnosticsEngine` instantiates every enabled rule with its
effective severity and executes it over one :class:`~repro.diagnostics.
context.DiagnosticContext`; the outcome is a :class:`DiagnosticsReport`
that callers interrogate for gating (``has_at_least``/``exit_code``),
render as text, or serialize to machine-readable JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Type

from .config import DiagnosticsConfig
from .context import DiagnosticContext
from .model import Diagnostic, Rule, Severity, all_rules

__all__ = ["DiagnosticsEngine", "DiagnosticsReport"]


@dataclass
class DiagnosticsReport:
    """Outcome of one engine run."""

    findings: List[Diagnostic] = field(default_factory=list)
    #: Codes of the rules that executed (whether or not they fired).
    rules_run: List[str] = field(default_factory=list)

    # -- queries -----------------------------------------------------------
    def errors(self) -> List[Diagnostic]:
        """Findings at ERROR severity."""
        return self.at_severity(Severity.ERROR)

    def warnings(self) -> List[Diagnostic]:
        """Findings at WARNING severity."""
        return self.at_severity(Severity.WARNING)

    def at_severity(self, severity: Severity) -> List[Diagnostic]:
        """Findings at exactly *severity*."""
        return [f for f in self.findings if f.severity is severity]

    def has_at_least(self, severity: Severity) -> bool:
        """True when any finding is at or above *severity*."""
        return any(f.severity.at_least(severity) for f in self.findings)

    def counts_by_severity(self) -> Dict[str, int]:
        """``{"error": n, "warning": m, "info": k}`` (zeroes included)."""
        counts = {severity.value: 0 for severity in Severity}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        return counts

    def counts_by_code(self) -> Dict[str, int]:
        """Findings per rule code, code-sorted."""
        counts: Dict[str, int] = {}
        for finding in sorted(self.findings, key=lambda f: f.code):
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def exit_code(self, fail_on: Optional[Severity]) -> int:
        """Process exit code under a ``--fail-on`` gate (None = never)."""
        if fail_on is not None and self.has_at_least(fail_on):
            return 1
        return 0

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready representation."""
        return {
            "rules_run": list(self.rules_run),
            "counts": self.counts_by_severity(),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)


class DiagnosticsEngine:
    """Executes a configured rule set over a context."""

    def __init__(
        self,
        config: Optional[DiagnosticsConfig] = None,
        rules: Optional[Iterable[Type[Rule]]] = None,
    ) -> None:
        self.config = config or DiagnosticsConfig()
        self._rule_classes: List[Type[Rule]] = list(
            rules if rules is not None else all_rules()
        )

    def enabled_rules(self) -> List[Rule]:
        """Instantiate the rules this config enables, config applied."""
        enabled: List[Rule] = []
        for rule_class in self._rule_classes:
            if not self.config.is_enabled(rule_class.code):
                continue
            severity = self.config.severity_for(
                rule_class.code, rule_class.default_severity
            )
            enabled.append(rule_class(severity=severity))
        return enabled

    def run(self, context: DiagnosticContext) -> DiagnosticsReport:
        """Execute every enabled rule; findings come back code-ordered."""
        report = DiagnosticsReport()
        for rule in sorted(self.enabled_rules(), key=lambda r: r.code):
            report.rules_run.append(rule.code)
            report.findings.extend(rule.check(context))
        return report
