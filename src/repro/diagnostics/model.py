"""Core types of the diagnostics engine: severities, findings, rules.

The engine generalizes the original WHOIS linter into a registry of
small, independent :class:`Rule` objects.  Every rule carries

* a stable **code** (``W101``, ``B203``, ...) that configs, suppressions
  and documentation refer to,
* a **dataset** naming the input it audits (WHOIS, BGP, RPKI, the
  AS-relationship data, the assembled allocation tree, or *cross* for
  rules that correlate several inputs),
* a default :class:`Severity` that a :class:`~repro.diagnostics.config.
  DiagnosticsConfig` may override, and
* a docstring whose first paragraph is the rationale and whose
  ``Remediation:`` paragraph tells an operator what to do about a
  finding — both are rendered verbatim into ``docs/DIAGNOSTICS.md``.

Rules yield :class:`Diagnostic` findings; they never mutate the data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .context import DiagnosticContext

__all__ = [
    "Severity",
    "Dataset",
    "Diagnostic",
    "Rule",
    "register_rule",
    "all_rules",
    "rule_for_code",
    "rules_for_dataset",
    "split_docstring",
]


class Severity(enum.Enum):
    """How serious a finding is.

    ``ERROR`` findings indicate data that will corrupt the inference and
    should gate a pipeline run; ``WARNING`` findings are suspicious but
    survivable; ``INFO`` findings are observations (often the leasing
    signals themselves) surfaced for situational awareness.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric ordering: info < warning < error."""
        return _SEVERITY_RANKS[self]

    def at_least(self, other: "Severity") -> bool:
        """True when this severity is *other* or worse."""
        return self.rank >= other.rank

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a severity name case-insensitively."""
        try:
            return cls(text.strip().lower())
        except ValueError:
            raise ValueError(f"unknown severity: {text!r}") from None


_SEVERITY_RANKS: Dict[Severity, int] = {
    Severity.INFO: 0,
    Severity.WARNING: 1,
    Severity.ERROR: 2,
}


class Dataset(enum.Enum):
    """The input a rule audits (``CROSS`` correlates several)."""

    WHOIS = "whois"
    BGP = "bgp"
    RPKI = "rpki"
    ASDATA = "asdata"
    TREE = "tree"
    TEMPORAL = "temporal"
    CROSS = "cross"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: what is wrong, where, and what to do about it.

    ``subject`` identifies the offending object (a prefix, an address
    range, ``AS64512``, an org handle); ``location`` narrows it to a
    data source (usually the registry name or ``rib``/``vrps``).
    """

    code: str
    severity: Severity
    dataset: Dataset
    subject: str
    message: str
    remediation: str = ""
    location: str = ""

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return (
            f"{self.severity.value}: {self.code}{where} "
            f"{self.subject}: {self.message}"
        )

    def to_dict(self) -> Dict[str, str]:
        """JSON-ready representation (stable key order)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "dataset": self.dataset.value,
            "location": self.location,
            "subject": self.subject,
            "message": self.message,
            "remediation": self.remediation,
        }


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set the class attributes and implement :meth:`check`.
    The subclass docstring documents the rule: first paragraph is the
    rationale, and an optional paragraph starting with ``Remediation:``
    is the operator guidance (also attached to every finding).
    """

    code: str = ""
    title: str = ""
    dataset: Dataset = Dataset.CROSS
    default_severity: Severity = Severity.WARNING

    def __init__(self, severity: Optional[Severity] = None) -> None:
        #: Effective severity for this run (config overrides applied
        #: by the engine at instantiation time).
        self.severity = severity or self.default_severity

    def check(self, context: "DiagnosticContext") -> Iterator[Diagnostic]:
        """Yield findings for *context* (empty iterator when clean)."""
        raise NotImplementedError

    def finding(
        self,
        subject: str,
        message: str,
        location: str = "",
    ) -> Diagnostic:
        """Build one :class:`Diagnostic` stamped with this rule's identity."""
        return Diagnostic(
            code=self.code,
            severity=self.severity,
            dataset=self.dataset,
            subject=subject,
            message=message,
            remediation=self.remediation(),
            location=location,
        )

    @classmethod
    def rationale(cls) -> str:
        """The docstring paragraphs before ``Remediation:``."""
        return split_docstring(cls)[0]

    @classmethod
    def remediation(cls) -> str:
        """The ``Remediation:`` paragraph of the docstring (or empty)."""
        return split_docstring(cls)[1]


def split_docstring(rule_class: type) -> List[str]:
    """``[rationale, remediation]`` from a rule class docstring.

    Shared by the dataset diagnostics registry and the ``repro check``
    source-analysis registry (:mod:`repro.check.model`): the first
    paragraphs are the rationale, an optional ``Remediation:`` paragraph
    is the operator guidance.
    """
    doc = (rule_class.__doc__ or "").strip()
    marker = "Remediation:"
    if marker in doc:
        rationale, _, remedy = doc.partition(marker)
        return [_collapse(rationale), _collapse(remedy)]
    return [_collapse(doc), ""]


def _collapse(text: str) -> str:
    """Normalize docstring whitespace into flowing paragraphs."""
    paragraphs = [
        " ".join(chunk.split())
        for chunk in text.split("\n\n")
        if chunk.strip()
    ]
    return "\n\n".join(paragraphs)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_class* to the global registry.

    Codes must be unique and follow ``<letter><3 digits>``; the letter
    groups rules per dataset (W/B/R/A/T/X) and stays stable forever —
    retired codes are never reused.
    """
    code = rule_class.code
    if not code or len(code) != 4 or not code[1:].isdigit():
        raise ValueError(f"malformed rule code: {code!r}")
    existing = _REGISTRY.get(code)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule code: {code}")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> List[Type[Rule]]:
    """Every registered rule class, ordered by code."""
    from . import rules as _rules  # noqa: F401  (registers on import)

    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_for_code(code: str) -> Optional[Type[Rule]]:
    """The rule class registered under *code*, or None."""
    from . import rules as _rules  # noqa: F401

    return _REGISTRY.get(code.strip().upper())


def rules_for_dataset(dataset: Dataset) -> List[Type[Rule]]:
    """Registered rules auditing *dataset*, ordered by code."""
    return [rule for rule in all_rules() if rule.dataset is dataset]
