"""IANA special-use number resources the rules check against.

Two small lookup helpers: reserved/private ASN ranges (RFC 7607, RFC
6996, RFC 5398, RFC 4893 AS_TRANS) and special-use IPv4 blocks (the
RFC 6890 registry) that must never appear in a public routing table.
"""

from __future__ import annotations

from typing import List, Tuple

from ..net import Prefix

__all__ = [
    "is_reserved_asn",
    "covering_bogon",
]

#: (first, last, label) ASN ranges that no public origin should use.
RESERVED_ASN_RANGES: Tuple[Tuple[int, int, str], ...] = (
    (0, 0, "AS0 (RFC 7607)"),
    (23456, 23456, "AS_TRANS (RFC 4893)"),
    (64496, 64511, "documentation (RFC 5398)"),
    (64512, 65534, "private use (RFC 6996)"),
    (65535, 65535, "reserved (RFC 7300)"),
    (65536, 65551, "documentation (RFC 5398)"),
    (4200000000, 4294967294, "private use (RFC 6996)"),
    (4294967295, 4294967295, "reserved (RFC 7300)"),
)

#: Special-use IPv4 space (RFC 6890 plus multicast/Class E).
BOGON_PREFIXES: Tuple[Tuple[Prefix, str], ...] = tuple(
    (Prefix.parse(text), label)
    for text, label in (
        ("0.0.0.0/8", "this network (RFC 1122)"),
        ("10.0.0.0/8", "private use (RFC 1918)"),
        ("100.64.0.0/10", "shared CGN space (RFC 6598)"),
        ("127.0.0.0/8", "loopback (RFC 1122)"),
        ("169.254.0.0/16", "link local (RFC 3927)"),
        ("172.16.0.0/12", "private use (RFC 1918)"),
        ("192.0.0.0/24", "IETF protocol assignments (RFC 6890)"),
        ("192.0.2.0/24", "documentation TEST-NET-1 (RFC 5737)"),
        ("192.88.99.0/24", "deprecated 6to4 relay (RFC 7526)"),
        ("192.168.0.0/16", "private use (RFC 1918)"),
        ("198.18.0.0/15", "benchmarking (RFC 2544)"),
        ("198.51.100.0/24", "documentation TEST-NET-2 (RFC 5737)"),
        ("203.0.113.0/24", "documentation TEST-NET-3 (RFC 5737)"),
        ("224.0.0.0/4", "multicast (RFC 5771)"),
        ("240.0.0.0/4", "reserved Class E (RFC 1112)"),
    )
)


def is_reserved_asn(asn: int) -> str:
    """The reservation label covering *asn*, or empty when assignable."""
    for first, last, label in RESERVED_ASN_RANGES:
        if first <= asn <= last:
            return label
    return ""


def covering_bogon(prefix: Prefix) -> List[str]:
    """Labels of special-use blocks *prefix* overlaps (usually 0 or 1)."""
    return [
        label
        for bogon, label in BOGON_PREFIXES
        if bogon.overlaps(prefix)
    ]
