"""The built-in rule set, registered on import.

Importing this package populates the global registry in
:mod:`repro.diagnostics.model`; series letters map to datasets:
``W`` WHOIS, ``B`` BGP, ``R`` RPKI, ``T`` allocation tree (T401–T404)
and the temporal series (T405+), ``A`` AS metadata, ``X``
cross-dataset.
"""

from . import asdata, bgp, cross, rpki, temporal, tree, whois

__all__ = [
    "asdata",
    "bgp",
    "cross",
    "rpki",
    "temporal",
    "tree",
    "whois",
]
