"""A-series rules: checks over the AS metadata datasets.

The relationship graph and AS2org mapping are the glue of the §5.2
relatedness test; holes between them degrade classifications silently.
"""

from __future__ import annotations

from typing import Iterator

from ..context import DiagnosticContext
from ..model import Dataset, Diagnostic, Rule, Severity, register_rule

__all__ = ["RelationshipOrphanAsnRule"]


@register_rule
class RelationshipOrphanAsnRule(Rule):
    """An ASN appears in the relationship graph but has no AS2org
    mapping.  The same-organisation test (§5.2 group 1) then cannot
    fire for it, and lease/transfer distinctions fall back to weaker
    evidence; widespread orphans mean the two CAIDA snapshots are from
    different months.

    Remediation: use the AS2org release matching the relationship
    snapshot's date.
    """

    code = "A601"
    title = "relationship-graph ASN missing from AS2org"
    default_severity = Severity.WARNING
    dataset = Dataset.ASDATA

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.relationships is None or context.as2org is None:
            return
        for asn in context.relationships.asns():
            if context.as2org.org_of(asn) is None:
                degree = len(context.relationships.neighbors(asn))
                yield self.finding(
                    subject=f"AS{asn}",
                    message=(
                        f"has {degree} relationship edge(s) but no "
                        "AS2org organisation"
                    ),
                    location="as-rel+as2org",
                )
