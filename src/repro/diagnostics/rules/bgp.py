"""B-series rules: plausibility checks over the merged BGP view.

A routing table assembled from collector dumps can carry garbage —
special-use space, reserved origin ASNs, hyper-specifics — that a
single bad peer session injects into the merged view the inference
consumes (§5.1 step 4).
"""

from __future__ import annotations

from typing import Iterator

from ..context import DiagnosticContext
from ..model import Dataset, Diagnostic, Rule, Severity, register_rule
from ..numbering import covering_bogon, is_reserved_asn

__all__ = [
    "BogonPrefixRule",
    "ReservedOriginAsnRule",
    "MoasConflictRule",
    "HyperSpecificAnnouncementRule",
    "UnknownOriginRelationshipRule",
    "AbusiveLeafOriginRule",
]


class _BgpRule(Rule):
    """Base for rules over the routing table; skip when absent."""

    dataset = Dataset.BGP


@register_rule
class BogonPrefixRule(_BgpRule):
    """An announced prefix overlaps IANA special-use space (RFC 1918,
    documentation nets, multicast, Class E, ...).  Such routes are leaks
    or collector artifacts; counting them inflates every
    routed-address-space denominator the paper reports.

    Remediation: drop the rows at ingest or fix the collector filter
    that admitted them.
    """

    code = "B201"
    title = "special-use (bogon) prefix announced"
    default_severity = Severity.ERROR

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.routing_table is None:
            return
        for prefix in context.routing_table.prefixes():
            for label in covering_bogon(prefix):
                yield self.finding(
                    subject=str(prefix),
                    message=f"overlaps {label}",
                    location="rib",
                )


@register_rule
class ReservedOriginAsnRule(_BgpRule):
    """A route is originated by a reserved or private-use ASN (AS0,
    AS_TRANS, RFC 6996 private ranges, documentation ASNs).  No holder
    can legitimately announce from these, so any origin-based
    classification of the route is meaningless.

    Remediation: strip the rows at ingest; if widespread, the MRT/table
    dump parser is mangling the AS path.
    """

    code = "B202"
    title = "route originated by reserved ASN"
    default_severity = Severity.ERROR

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.routing_table is None:
            return
        for origin in sorted(context.routing_table.origins()):
            label = is_reserved_asn(origin)
            if not label:
                continue
            count = len(context.routing_table.prefixes_of_origin(origin))
            yield self.finding(
                subject=f"AS{origin}",
                message=f"{label} originates {count} prefix(es)",
                location="rib",
            )


@register_rule
class MoasConflictRule(_BgpRule):
    """A prefix is originated by multiple ASes (MOAS).  Legitimate
    (anycast, provider migration) but each conflict makes the
    origin-to-holder step ambiguous, and lease churn is a known MOAS
    source — worth surfacing, not worth gating on.

    Remediation: none required; investigate clusters of conflicts
    around a single origin for hijack or misclassification risk.
    """

    code = "B203"
    title = "multi-origin (MOAS) prefix"
    default_severity = Severity.INFO

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.routing_table is None:
            return
        for prefix, origins in context.routing_table.moas_prefixes():
            names = ", ".join(f"AS{asn}" for asn in sorted(origins))
            yield self.finding(
                subject=str(prefix),
                message=f"originated by {names}",
                location="rib",
            )


@register_rule
class HyperSpecificAnnouncementRule(_BgpRule):
    """A prefix longer than /24 is announced.  Real networks filter
    these; their presence means a collector peer leaked internal or
    blackhole routes, and the paper's methodology removes them before
    building the allocation tree (§5.1).

    Remediation: filter announcements longer than /24 at ingest.
    """

    code = "B204"
    title = "hyper-specific announcement (longer than /24)"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.routing_table is None:
            return
        for prefix in context.routing_table.prefixes():
            if prefix.length > 24:
                yield self.finding(
                    subject=str(prefix),
                    message=f"/{prefix.length} exceeds the /24 "
                    "propagation norm",
                    location="rib",
                )


@register_rule
class UnknownOriginRelationshipRule(_BgpRule):
    """An origin AS announces routes but has no edge in the
    AS-relationship graph.  The §5.2 relatedness test degrades to
    "unrelated" for such origins, biasing classification toward the
    leased verdict; widespread hits mean the relationship snapshot and
    RIB are from different dates.

    Remediation: align the relationship dataset's snapshot date with
    the RIB's, or accept the documented incompleteness (§7).
    """

    code = "B205"
    title = "origin AS absent from the relationship graph"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.routing_table is None or context.relationships is None:
            return
        known = set(context.relationships.asns())
        for origin in sorted(context.routing_table.origins()):
            if origin not in known:
                count = len(
                    context.routing_table.prefixes_of_origin(origin)
                )
                yield self.finding(
                    subject=f"AS{origin}",
                    message=(
                        f"originates {count} prefix(es) but has no "
                        "relationship edges"
                    ),
                    location="as-rel",
                )


@register_rule
class AbusiveLeafOriginRule(_BgpRule):
    """An allocation-tree leaf is originated by an AS on the Spamhaus
    ASN-DROP list or the serial-hijacker list (§6.3).  The paper ties
    leased space to abuse precisely through this overlap, so a hit is
    not noise — but it means the leaf's classification rests on an
    origin whose announcements may themselves be hijacks, and the
    holder-to-origin relatedness verdict should be read with care.

    Remediation: none at ingest; cross-check the leaf against the
    facilitator attribution (§6) and, if the origin also fails RPKI
    validation, treat the announcement as a likely hijack rather than
    a lease.
    """

    code = "B206"
    title = "leaf originated by DROP-listed or serial-hijacker AS"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.routing_table is None:
            return
        if context.drop is None and context.hijackers is None:
            return
        for tree in context.trees().values():
            for leaf in tree.classifiable_leaves():
                origins = context.routing_table.exact_origins(leaf.prefix)
                for origin in sorted(origins):
                    lists = []
                    if context.drop is not None and origin in context.drop:
                        lists.append("ASN-DROP")
                    if (
                        context.hijackers is not None
                        and origin in context.hijackers
                    ):
                        lists.append("serial-hijacker")
                    if lists:
                        yield self.finding(
                            subject=str(leaf.prefix),
                            message=(
                                f"originated by AS{origin}, listed on "
                                f"{' and '.join(lists)}"
                            ),
                            location="rib",
                        )
