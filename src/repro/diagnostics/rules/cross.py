"""X-series rules: consistency checks no single-source linter can make.

These correlate WHOIS, BGP, RPKI and the abuse lists — the checks the
paper's §5 pipeline implicitly relies on when it joins the datasets.
"""

from __future__ import annotations

from typing import Iterator

from ..context import DiagnosticContext
from ..model import Dataset, Diagnostic, Rule, Severity, register_rule

__all__ = [
    "UnregisteredAnnouncementRule",
    "RoaOrgMismatchRule",
    "DropListedRootAsnRule",
    "HijackerOriginRule",
]


class _CrossRule(Rule):
    """Base for rules correlating several datasets."""

    dataset = Dataset.CROSS


@register_rule
class UnregisteredAnnouncementRule(_CrossRule):
    """A prefix is originated in BGP but no WHOIS record covers it.
    The allocation tree cannot attribute such space to any holder, so
    it falls out of the census entirely — on real data this flags dump/
    RIB date skew or a WHOIS parser dropping records.

    Remediation: confirm the WHOIS dumps and RIB snapshot share a date;
    if they do, the space is likely unallocated (possible hijack).
    """

    code = "X501"
    title = "announced prefix absent from WHOIS"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.routing_table is None or context.whois is None:
            return
        registered = context.registered_trie()
        for prefix, origins in context.routing_table.items():
            if registered.covering(prefix):
                continue
            names = ", ".join(f"AS{asn}" for asn in sorted(origins))
            yield self.finding(
                subject=str(prefix),
                message=(
                    f"originated by {names} but no WHOIS registration "
                    "covers it"
                ),
                location="rib+whois",
            )


@register_rule
class RoaOrgMismatchRule(_CrossRule):
    """A ROA authorizes an ASN that WHOIS assigns to a *different*
    organisation than the one registered for the covered address space.
    This is exactly the off-path origin the leasing inference hunts for
    — surfaced as information so a diagnostics run doubles as a quick
    census of delegation-vs-registration divergence.

    Remediation: none; a cluster of mismatches under one holder org is
    a leasing (or ROA misconfiguration) signal worth manual review.
    """

    code = "X502"
    title = "ROA origin org differs from address registrant org"
    default_severity = Severity.INFO

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.roas is None or context.whois is None:
            return
        registered = context.registered_trie()
        for roa in context.roas:
            if roa.is_as0:
                continue
            hit = registered.longest_match(roa.prefix)
            if hit is None:
                continue
            holder_org = hit[1].org_id
            if not holder_org:
                continue
            origin_org = context.asn_org(roa.asn)
            if origin_org is not None and origin_org != holder_org:
                yield self.finding(
                    subject=str(roa.prefix),
                    message=(
                        f"ROA authorizes AS{roa.asn} ({origin_org}) but "
                        f"the space is registered to {holder_org}"
                    ),
                    location="vrps+whois",
                )


@register_rule
class DropListedRootAsnRule(_CrossRule):
    """A Spamhaus-DROP-listed ASN is registered to an organisation that
    holds a portable root allocation.  Blocklisted networks should not
    *hold* address space directly; when they do, every leaf under that
    root inherits a tainted address provider (§6.4's correlation
    becomes an attribution error instead of a finding).

    Remediation: verify the DROP entry and the WHOIS org linkage by
    hand; consider excluding the org's space from holder statistics.
    """

    code = "X503"
    title = "DROP-listed ASN registered to a root-holding org"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.drop is None or context.whois is None:
            return
        root_orgs = {}
        for rir, tree in context.trees().items():
            for prefix, record in tree.portable_roots():
                if record.org_id:
                    root_orgs.setdefault(record.org_id, (rir, prefix))
        for asn in sorted(context.drop.asns()):
            registration = context.asn_registration(asn)
            if registration is None or not registration[1]:
                continue
            rir, org_id = registration
            if org_id in root_orgs:
                _root_rir, root_prefix = root_orgs[org_id]
                yield self.finding(
                    subject=f"AS{asn}",
                    message=(
                        f"DROP-listed but registered to {org_id}, holder "
                        f"of root {root_prefix}"
                    ),
                    location="drop+whois",
                )


@register_rule
class HijackerOriginRule(_CrossRule):
    """A serial-hijacker ASN (Testart et al.) originates routes in the
    RIB.  Expected at a low background rate — the paper's §6.3 measures
    precisely this overlap — but each origin is worth surfacing next to
    the structural findings it can explain (MOAS spikes, unregistered
    announcements).

    Remediation: none; cross-check against B203/X501 findings on the
    same prefixes before trusting their WHOIS attribution.
    """

    code = "X504"
    title = "serial-hijacker ASN originating routes"
    default_severity = Severity.INFO

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.hijackers is None or context.routing_table is None:
            return
        origins = context.routing_table.origins()
        for asn in sorted(context.hijackers):
            if asn in origins:
                count = len(context.routing_table.prefixes_of_origin(asn))
                yield self.finding(
                    subject=f"AS{asn}",
                    message=f"flagged serial hijacker originates "
                    f"{count} prefix(es)",
                    location="hijackers+rib",
                )
