"""R-series rules: sanity checks over the validated ROA (VRP) set.

The paper leans on RPKI twice — coverage statistics (§6.5) and the
AS0-between-leases signal (Fig. 3) — so a stale or implausible VRP
snapshot quietly skews both.
"""

from __future__ import annotations

from typing import Iterator

from ..context import DiagnosticContext
from ..model import Dataset, Diagnostic, Rule, Severity, register_rule
from ..numbering import is_reserved_asn

__all__ = [
    "StaleRoaRule",
    "As0CoveredAnnouncementRule",
    "RpkiInvalidAnnouncementRule",
    "ReservedAsnRoaRule",
]


class _RpkiRule(Rule):
    """Base for rules over the ROA set; skip when absent."""

    dataset = Dataset.RPKI


@register_rule
class StaleRoaRule(_RpkiRule):
    """A ROA covers address space that is not announced at all.  Often
    legitimate (pre-provisioned or between-lease space), but a large
    stale share indicates the VRP snapshot and the RIB are from
    different dates.

    Remediation: none per finding; if the stale share is large, re-pull
    the VRP snapshot matching the RIB timestamp.
    """

    code = "R301"
    title = "ROA covers no announced prefix"
    default_severity = Severity.INFO

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.roas is None or context.routing_table is None:
            return
        table = context.routing_table
        for roa in context.roas:
            if not table.covered_prefixes(roa.prefix):
                yield self.finding(
                    subject=str(roa.prefix),
                    message=(
                        f"ROA for AS{roa.asn} covers no announced prefix"
                    ),
                    location="vrps",
                )


@register_rule
class As0CoveredAnnouncementRule(_RpkiRule):
    """An announced prefix is covered by an AS0 ("never originate",
    RFC 7607) ROA and no other ROA authorizes its origin.  The paper
    observes lessors publishing AS0 ROAs *between* leases — an AS0-
    covered prefix that is simultaneously announced is either an
    expired-lease squatter or an operator mistake.

    Remediation: check whether the announcement outlived its lease;
    confirm with the holder before treating the route as legitimate.
    """

    code = "R302"
    title = "announced prefix covered by AS0 ROA"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.roas is None or context.routing_table is None:
            return
        for prefix, origins in context.routing_table.items():
            if not context.roas.has_as0(prefix):
                continue
            covering = context.roas.covering(prefix)
            authorized = any(
                roa.authorizes(prefix, origin)
                for origin in origins
                for roa in covering
            )
            if not authorized:
                names = ", ".join(f"AS{asn}" for asn in sorted(origins))
                yield self.finding(
                    subject=str(prefix),
                    message=f"announced by {names} under an AS0 ROA",
                    location="vrps",
                )


@register_rule
class RpkiInvalidAnnouncementRule(_RpkiRule):
    """An announced prefix is covered by ROAs, yet no covering ROA
    authorizes any of its observed origins (RPKI-invalid).  A background
    rate is normal; a spike usually means the VRP snapshot predates a
    wave of (re)leases and the §6.5 validity profile will be wrong.

    Remediation: none per finding; compare the invalid share against
    the published routinator/rpki-client dashboards for the RIB date.
    """

    code = "R303"
    title = "RPKI-invalid announcement"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.roas is None or context.routing_table is None:
            return
        for prefix, origins in context.routing_table.items():
            covering = context.roas.covering(prefix)
            if not covering or any(roa.is_as0 for roa in covering):
                continue  # not covered, or AS0 handled by R302
            authorized = any(
                roa.authorizes(prefix, origin)
                for origin in origins
                for roa in covering
            )
            if not authorized:
                names = ", ".join(f"AS{asn}" for asn in sorted(origins))
                if any(roa.asn in origins for roa in covering):
                    # Right origin, wrong length: a maxLength violation.
                    limits = ", ".join(
                        f"/{roa.effective_max_length}"
                        for roa in covering
                        if roa.asn in origins
                    )
                    reason = f"/{prefix.length} exceeds maxLength {limits}"
                else:
                    roa_asns = ", ".join(
                        f"AS{roa.asn}" for roa in covering[:3]
                    )
                    reason = f"ROAs authorize {roa_asns}"
                yield self.finding(
                    subject=str(prefix),
                    message=f"announced by {names} but {reason}",
                    location="vrps",
                )


@register_rule
class ReservedAsnRoaRule(_RpkiRule):
    """A ROA authorizes a reserved or private-use ASN (other than the
    deliberate AS0 marker).  Such a ROA can never validate a public
    announcement and usually means a typo'd ASN at ROA creation.

    Remediation: fix or revoke the ROA at the publishing CA.
    """

    code = "R304"
    title = "ROA authorizes reserved ASN"
    default_severity = Severity.ERROR

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.roas is None:
            return
        for roa in context.roas:
            if roa.is_as0:
                continue  # RFC 7607: deliberate "never originate"
            label = is_reserved_asn(roa.asn)
            if label:
                yield self.finding(
                    subject=str(roa.prefix),
                    message=f"ROA authorizes AS{roa.asn} ({label})",
                    location="vrps",
                )
