"""Temporal rules: longitudinal consistency across snapshot series.

Where the other rule families audit one snapshot, these correlate the
*time series* the longitudinal inputs carry — the ROA archive
(:class:`repro.rpki.archive.RpkiArchive`) against the per-prefix BGP
origin history (:class:`repro.core.timeline.BgpOriginHistory`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..model import Dataset, Diagnostic, Rule, Severity, register_rule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..context import DiagnosticContext

__all__ = ["RoaChurnWithoutOriginChange"]


@register_rule
class RoaChurnWithoutOriginChange(Rule):
    """ROA churn with no matching BGP origin change nearby.

    In the leasing timelines of §6, a ROA rewrite marks a custody
    change: the address holder re-authorizes a new origin and BGP
    follows within days.  A ROA change that *no* origin change
    accompanies — within a week on either side — means the control
    plane and the data plane disagree: a stale or premature ROA, a
    mis-dated archive snapshot, or authorization churn for a prefix
    that never moved.  Either way the lease-duration estimates built
    from these series inherit the inconsistency.

    Remediation: Check the ROA archive snapshot dates against the BGP
    update stream for the prefix.  If the archive is trustworthy, the
    finding documents real-world churn (an unused authorization being
    rotated); exclude the prefix from duration estimates or widen the
    correlation window deliberately.
    """

    code = "T405"
    title = "ROA churn without matching BGP origin change"
    dataset = Dataset.TEMPORAL
    default_severity = Severity.WARNING

    #: Half-width of the correlation window: a BGP origin change within
    #: this many seconds (one week) of the ROA change matches it.
    WINDOW_S = 7 * 24 * 3600

    def check(self, context: "DiagnosticContext") -> Iterator[Diagnostic]:
        archive = context.rpki_archive
        if archive is None or not context.origin_histories:
            return
        for prefix, history in context.origin_histories.items():
            bgp_changes = [ts for ts, _ in history.change_points()]
            roa_changes = archive.change_points(prefix)
            # The first archive snapshot is the initial state, not churn.
            for timestamp, origins in roa_changes[1:]:
                if any(
                    abs(timestamp - bgp_ts) <= self.WINDOW_S
                    for bgp_ts in bgp_changes
                ):
                    continue
                authorized = (
                    ",".join(f"AS{asn}" for asn in sorted(origins))
                    or "none"
                )
                yield self.finding(
                    str(prefix),
                    f"ROA change at t={timestamp} (now authorizing "
                    f"{authorized}) has no BGP origin change within "
                    f"{self.WINDOW_S // 86400} days",
                    location="rpki-archive",
                )
