"""T-series rules: invariants of the assembled allocation tree.

The §5.1 tree is where WHOIS structure becomes classification units:
roots should be portable direct allocations, leaves the non-portable
assignments the paper classifies, with no hyper-specifics and no
partially overlapping registrations muddying parent/child roles.
"""

from __future__ import annotations

from typing import Iterator, List

from ...whois.objects import InetnumRecord
from ...whois.statuses import Portability
from ..context import DiagnosticContext
from ..model import Dataset, Diagnostic, Rule, Severity, register_rule

__all__ = [
    "NonPortableRootRule",
    "HyperSpecificRegistrationRule",
    "PartialOverlapRule",
    "RootOrgWithoutAsnRule",
]


class _TreeRule(Rule):
    """Base for rules over the per-registry allocation trees."""

    dataset = Dataset.TREE


@register_rule
class NonPortableRootRule(_TreeRule):
    """A tree root — a prefix with no registered covering block — does
    not carry a portable status.  §2.1 defines roots as space an RIR
    distributed directly; a non-portable or unknown-status root means
    the covering allocation is missing from the dump and every leaf
    below it inherits a wrong address provider.

    Remediation: locate the missing covering allocation in the source
    registry, or correct the root record's status.
    """

    code = "T401"
    title = "allocation-tree root is not portable space"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        for rir, tree in context.trees().items():
            for prefix, record in tree.roots():
                if record.portability is not Portability.PORTABLE:
                    yield self.finding(
                        subject=str(prefix),
                        message=(
                            f"root status {record.status!r} is "
                            f"{record.portability.value}, expected portable"
                        ),
                        location=rir.name,
                    )


@register_rule
class HyperSpecificRegistrationRule(_TreeRule):
    """A registration decomposes into prefixes longer than /24.  The
    methodology drops hyper-specifics before building the tree, so this
    space silently vanishes from the census; a high count usually means
    ranges were parsed with off-by-one boundaries.

    Remediation: verify the range boundaries against the source dump;
    genuine hyper-specific assignments can be suppressed per config.
    """

    code = "T402"
    title = "registration finer than /24 (dropped from the tree)"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        for database in context.databases():
            for record in database.inetnums:
                if record.is_legacy:
                    continue  # legacy space never enters the tree
                if record.range.first > record.range.last:
                    continue  # inverted (W106) ranges can't decompose
                lengths = [
                    prefix.length
                    for prefix in record.range.to_prefixes()
                    if prefix.length > 24
                ]
                if lengths:
                    yield self.finding(
                        subject=str(record.range),
                        message=(
                            f"decomposes into {len(lengths)} hyper-specific "
                            f"prefix(es) up to /{max(lengths)}"
                        ),
                        location=database.rir.name,
                    )


@register_rule
class PartialOverlapRule(_TreeRule):
    """Two registered ranges overlap without one containing the other.
    CIDR decomposition then assigns the shared addresses to both
    records, the trie keeps whichever got inserted first, and sibling
    leaves double-count address space.

    Remediation: fix the range boundaries of one of the two records in
    the source registry dump.
    """

    code = "T403"
    title = "partially overlapping sibling registrations"
    default_severity = Severity.ERROR

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        for database in context.databases():
            # Sweep ranges sorted by start; a stack of enclosing ranges
            # makes partial overlap (start inside, end outside) O(n log n).
            records = sorted(
                database.inetnums,
                key=lambda r: (r.range.first, -r.range.last),
            )
            stack: List[InetnumRecord] = []
            for record in records:
                while stack and stack[-1].range.last < record.range.first:
                    stack.pop()
                if stack:
                    top = stack[-1]
                    if (
                        top.range.last < record.range.last
                        and top.range.first <= record.range.first
                        and record.range.first <= top.range.last
                        and top.range != record.range
                    ):
                        yield self.finding(
                            subject=str(record.range),
                            message=(
                                f"range {record.range} partially overlaps "
                                f"{top.range}"
                            ),
                            location=database.rir.name,
                        )
                stack.append(record)


@register_rule
class RootOrgWithoutAsnRule(_TreeRule):
    """A portable root's organisation has no resolvable AS number in
    WHOIS or AS2org.  §5.1 step 3 assigns origin ASNs through the root
    org; without any, every leaf under the root can only classify via
    the relatedness fallback, inflating the leased verdict.

    Remediation: check whether the registry dump dropped the org's
    aut-num objects; otherwise record the org as an ASN-less holder
    (common for pure address-holding shells).
    """

    code = "T404"
    title = "root organisation has no resolvable ASN"
    default_severity = Severity.WARNING

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        if context.whois is None:
            return
        for rir, tree in context.trees().items():
            database = context.whois[rir]
            seen = set()
            for prefix, record in tree.portable_roots():
                org_id = record.org_id
                if not org_id or org_id in seen:
                    continue
                seen.add(org_id)
                if database.asns_of_org(org_id):
                    continue
                if context.as2org is not None and context.as2org.members(
                    org_id
                ):
                    continue
                yield self.finding(
                    subject=org_id,
                    message=(
                        f"holds root {prefix} but no AS number resolves "
                        "to it"
                    ),
                    location=rir.name,
                )
