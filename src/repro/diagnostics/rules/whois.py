"""W-series rules: structural checks over the regional WHOIS databases.

These generalize the original ``repro.whois.lint`` linter; the legacy
``lint_database`` entry point now runs exactly this rule set through
the engine and converts the findings back to ``LintIssue`` objects.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ...net import PrefixTrie
from ...whois.database import WhoisDatabase
from ...whois.objects import InetnumRecord
from ...whois.statuses import Portability
from ..context import DiagnosticContext
from ..model import Dataset, Diagnostic, Rule, Severity, register_rule

__all__ = [
    "UnknownStatusRule",
    "DanglingInetnumOrgRule",
    "DanglingAutnumOrgRule",
    "OrphanNonPortableRule",
    "DuplicateRangeRule",
    "InvertedRangeRule",
]


class _WhoisRule(Rule):
    """Base for rules that iterate each regional database independently."""

    dataset = Dataset.WHOIS

    def check(self, context: DiagnosticContext) -> Iterator[Diagnostic]:
        for database in context.databases():
            yield from self.check_database(database)

    def check_database(
        self, database: WhoisDatabase
    ) -> Iterator[Diagnostic]:
        raise NotImplementedError


@register_rule
class UnknownStatusRule(_WhoisRule):
    """An address block carries a status string its registry does not
    define, so its portability — the backbone of the paper's §2.1
    taxonomy — cannot be determined and the block is excluded from
    classification.

    Remediation: map the status spelling in
    ``repro.whois.statuses.STATUS_TABLES`` or fix the source record.
    """

    code = "W101"
    title = "unrecognized WHOIS status"
    default_severity = Severity.WARNING

    def check_database(
        self, database: WhoisDatabase
    ) -> Iterator[Diagnostic]:
        for record in database.inetnums:
            if record.portability is Portability.UNKNOWN:
                yield self.finding(
                    subject=str(record.range),
                    message=(
                        f"status {record.status!r} not recognized for "
                        f"{database.rir.name}"
                    ),
                    location=database.rir.name,
                )


@register_rule
class DanglingInetnumOrgRule(_WhoisRule):
    """An address block references an organisation handle that does not
    exist in its registry, so holder attribution (§5.1 step 3) silently
    drops the block.

    Remediation: restore the missing organisation object or correct the
    ``org:`` reference on the block.
    """

    code = "W102"
    title = "address block references missing organisation"
    default_severity = Severity.ERROR

    def check_database(
        self, database: WhoisDatabase
    ) -> Iterator[Diagnostic]:
        for record in database.inetnums:
            if record.org_id and database.org(record.org_id) is None:
                yield self.finding(
                    subject=str(record.range),
                    message=f"references missing {record.org_id}",
                    location=database.rir.name,
                )


@register_rule
class DanglingAutnumOrgRule(_WhoisRule):
    """An AS registration references an organisation handle that does
    not exist in its registry, breaking the org→ASN resolution the
    same-org/related-org classification steps depend on.

    Remediation: restore the missing organisation object or correct the
    ``org:`` reference on the aut-num.
    """

    code = "W103"
    title = "AS registration references missing organisation"
    default_severity = Severity.ERROR

    def check_database(
        self, database: WhoisDatabase
    ) -> Iterator[Diagnostic]:
        for record in database.autnums:
            if record.org_id and database.org(record.org_id) is None:
                yield self.finding(
                    subject=f"AS{record.asn}",
                    message=f"references missing {record.org_id}",
                    location=database.rir.name,
                )


@register_rule
class OrphanNonPortableRule(_WhoisRule):
    """A non-portable block has no covering registered block: §2.1 space
    of this category is by definition carved out of a holder's portable
    allocation, so an orphan cannot be attributed to an address provider
    and never becomes a classifiable tree leaf.

    Remediation: register (or repair) the covering allocation, or fix
    the block's status if it is really portable space.
    """

    code = "W104"
    title = "non-portable block without covering allocation"
    default_severity = Severity.WARNING

    def check_database(
        self, database: WhoisDatabase
    ) -> Iterator[Diagnostic]:
        trie: PrefixTrie[bool] = PrefixTrie()
        for record in database.inetnums:
            if record.range.first > record.range.last:
                continue  # inverted; W106's problem, not decomposable
            for prefix in record.range.to_prefixes():
                trie.insert(prefix, True)
        for record in database.inetnums:
            if record.portability is not Portability.NON_PORTABLE:
                continue
            if record.range.first > record.range.last:
                continue
            for prefix in record.range.to_prefixes():
                if trie.parent(prefix) is None:
                    yield self.finding(
                        subject=str(prefix),
                        message=(
                            f"no covering registered block above "
                            f"{record.range}"
                        ),
                        location=database.rir.name,
                    )


@register_rule
class DuplicateRangeRule(_WhoisRule):
    """The exact same address range is registered more than once; the
    allocation tree keeps the first record and silently discards the
    rest, so conflicting holder data never surfaces downstream.

    Remediation: delete the stale duplicate registration (registries
    occasionally leak superseded objects into bulk dumps).
    """

    code = "W105"
    title = "duplicate address range registration"
    default_severity = Severity.WARNING

    def check_database(
        self, database: WhoisDatabase
    ) -> Iterator[Diagnostic]:
        seen: Dict[Tuple[int, int], InetnumRecord] = {}
        for record in database.inetnums:
            key = (record.range.first, record.range.last)
            original = seen.get(key)
            if original is not None:
                first_holder = original.org_id or original.net_name or (
                    "unknown holder"
                )
                holder = record.org_id or record.net_name or "unknown holder"
                yield self.finding(
                    subject=str(record.range),
                    message=(
                        f"range {record.range} ({holder}) already "
                        f"registered to {first_holder}"
                    ),
                    location=database.rir.name,
                )
            else:
                seen[key] = record


@register_rule
class InvertedRangeRule(_WhoisRule):
    """An address range ends before it starts.  Well-behaved parsers
    reject these at load time, but records assembled programmatically or
    through future zero-copy paths can bypass validation, and an
    inverted range poisons every trie the pipeline builds from it.

    Remediation: fix the source record; the range is unusable as stored.
    """

    code = "W106"
    title = "inverted address range"
    default_severity = Severity.ERROR

    def check_database(
        self, database: WhoisDatabase
    ) -> Iterator[Diagnostic]:
        for record in database.inetnums:
            if record.range.first > record.range.last:
                yield self.finding(
                    subject=str(record.range),
                    message=(
                        f"range {record.range} is inverted "
                        "(start after end)"
                    ),
                    location=database.rir.name,
                )
