"""Geolocation substrate: databases and the country/continent roll-up."""

from .database import CONTINENT_OF, GeoDatabase, continent_of, locate_across

__all__ = ["CONTINENT_OF", "GeoDatabase", "continent_of", "locate_across"]
