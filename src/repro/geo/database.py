"""IP geolocation databases.

§8 of the paper notes that IP leasing "may also contribute to
inconsistencies across geolocation databases; anecdotally we find
prefixes on the IPXO marketplace geolocate to four different continents
according to five geolocation databases."  This substrate models a
commercial geolocation database as a longest-prefix-match mapping to a
country, with the country→continent roll-up needed for the
inconsistency analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..net import Prefix, PrefixTrie

__all__ = ["CONTINENT_OF", "GeoDatabase", "continent_of"]

#: Country code → continent code for the countries the generator uses.
CONTINENT_OF: Dict[str, str] = {
    # Europe
    "DE": "EU", "NL": "EU", "GB": "EU", "FR": "EU", "SE": "EU", "LT": "EU",
    "RO": "EU", "CH": "EU", "ES": "EU", "PL": "EU",
    # North America
    "US": "NA", "CA": "NA", "MX": "NA", "PA": "NA", "CR": "NA",
    # South America
    "BR": "SA", "AR": "SA", "CL": "SA", "CO": "SA",
    # Asia
    "JP": "AS", "SG": "AS", "HK": "AS", "IN": "AS", "AE": "AS", "CN": "AS",
    # Africa
    "ZA": "AF", "TN": "AF", "EG": "AF", "NG": "AF", "MU": "AF",
    # Oceania
    "AU": "OC", "NZ": "OC",
}


def continent_of(country: str) -> str:
    """The continent code of *country* (``??`` when unknown)."""
    return CONTINENT_OF.get(country.upper(), "??")


class GeoDatabase:
    """One named geolocation database: prefix → country code."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._trie: PrefixTrie[str] = PrefixTrie()

    def add(self, prefix: Prefix, country: str) -> None:
        """Register (or overwrite) the country of *prefix*."""
        self._trie.insert(prefix, country.upper())

    def locate(self, prefix: Prefix) -> Optional[str]:
        """Country of the most-specific entry covering *prefix*."""
        hit = self._trie.longest_match(prefix)
        return hit[1] if hit else None

    def locate_continent(self, prefix: Prefix) -> Optional[str]:
        """Continent of the most-specific entry covering *prefix*."""
        country = self.locate(prefix)
        return continent_of(country) if country else None

    def __len__(self) -> int:
        return len(self._trie)

    # -- CSV format --------------------------------------------------------
    @classmethod
    def from_csv(cls, name: str, text: str) -> "GeoDatabase":
        """Parse ``prefix,country`` CSV (header optional)."""
        database = cls(name)
        for line in text.splitlines():
            line = line.strip()
            if not line or line.lower().startswith("prefix,"):
                continue
            prefix_text, _, country = line.partition(",")
            database.add(Prefix.parse(prefix_text), country.strip())
        return database

    def to_csv(self) -> str:
        """Serialize to ``prefix,country`` CSV with a header."""
        lines = ["prefix,country"]
        lines.extend(
            f"{prefix},{country}" for prefix, country in self._trie.items()
        )
        return "\n".join(lines) + "\n"


def locate_across(
    databases: Iterable[GeoDatabase], prefix: Prefix
) -> List[Tuple[str, Optional[str]]]:
    """``(database name, country)`` for *prefix* across all databases."""
    return [(db.name, db.locate(prefix)) for db in databases]
