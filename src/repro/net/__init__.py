"""IPv4 network primitives: addresses, prefixes, ranges, and a radix trie."""

from .ipaddr import (
    MAX_IPV4,
    AddressError,
    Prefix,
    address_to_int,
    int_to_address,
    parse_address,
)
from .ipset import IPSet
from .radix import PrefixTrie, resolve_covering_chain
from .ranges import AddressRange, prefixes_to_ranges, range_to_prefixes

__all__ = [
    "MAX_IPV4",
    "AddressError",
    "AddressRange",
    "IPSet",
    "Prefix",
    "PrefixTrie",
    "address_to_int",
    "int_to_address",
    "parse_address",
    "prefixes_to_ranges",
    "range_to_prefixes",
    "resolve_covering_chain",
]
