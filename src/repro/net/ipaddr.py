"""IPv4 address and prefix primitives.

These are integer-backed, hashable, and deliberately lighter-weight than
:mod:`ipaddress` because the inference pipeline manipulates hundreds of
thousands of prefixes; all hot paths operate on ``(network_int, length)``
pairs.  Conversion helpers to and from the standard library types exist for
interoperability.
"""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "AddressError",
    "MAX_IPV4",
    "Prefix",
    "address_to_int",
    "int_to_address",
    "parse_address",
]

#: Largest IPv4 address as an integer (255.255.255.255).
MAX_IPV4 = (1 << 32) - 1

_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class AddressError(ValueError):
    """Raised for malformed IPv4 addresses, prefixes, or ranges."""


def address_to_int(text: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer.

    >>> address_to_int("10.0.0.1")
    167772161
    """
    match = _DOTTED_QUAD.match(text.strip())
    if match is None:
        raise AddressError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for octet_text in match.groups():
        octet = int(octet_text)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def int_to_address(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address.

    >>> int_to_address(167772161)
    '10.0.0.1'
    """
    if not 0 <= value <= MAX_IPV4:
        raise AddressError(f"address integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_address(text: str) -> int:
    """Alias of :func:`address_to_int` kept for API symmetry."""
    return address_to_int(text)


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 CIDR prefix, stored as ``(network, length)``.

    Ordering sorts by network address first, then by length, which places a
    covering prefix immediately before its more-specifics — convenient for
    building allocation trees with a single sorted pass.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= MAX_IPV4:
            raise AddressError(f"network out of range: {self.network}")
        if self.network & ~self.netmask():
            raise AddressError(
                f"host bits set: {int_to_address(self.network)}/{self.length}"
            )

    # -- construction ----------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` (a bare address is treated as a /32)."""
        text = text.strip()
        if "/" in text:
            addr_text, _, len_text = text.partition("/")
            try:
                length = int(len_text)
            except ValueError:
                raise AddressError(f"bad prefix length in {text!r}") from None
        else:
            addr_text, length = text, 32
        return cls(address_to_int(addr_text), length)

    @classmethod
    def from_ipaddress(cls, network: ipaddress.IPv4Network) -> "Prefix":
        """Convert a standard-library :class:`ipaddress.IPv4Network`."""
        return cls(int(network.network_address), network.prefixlen)

    # -- formatting -------------------------------------------------------
    def __str__(self) -> str:
        return f"{int_to_address(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def to_ipaddress(self) -> ipaddress.IPv4Network:
        """Convert to a standard-library :class:`ipaddress.IPv4Network`."""
        return ipaddress.IPv4Network((self.network, self.length))

    # -- geometry ---------------------------------------------------------
    def netmask(self) -> int:
        """The prefix netmask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (MAX_IPV4 << (32 - self.length)) & MAX_IPV4

    @property
    def first_address(self) -> int:
        """First address covered (the network address)."""
        return self.network

    @property
    def last_address(self) -> int:
        """Last address covered (the broadcast address)."""
        return self.network | (~self.netmask() & MAX_IPV4)

    @property
    def num_addresses(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def contains(self, other: "Prefix") -> bool:
        """True when *other* is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.netmask()) == self.network

    def contains_address(self, address: int) -> bool:
        """True when the 32-bit *address* falls inside this prefix."""
        return (address & self.netmask()) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    # -- navigation ---------------------------------------------------------
    def supernet(self, new_length: int | None = None) -> "Prefix":
        """The covering prefix of *new_length* (default: one bit shorter)."""
        if new_length is None:
            new_length = self.length - 1
        if not 0 <= new_length <= self.length:
            raise AddressError(
                f"cannot widen /{self.length} to /{new_length}"
            )
        mask = (MAX_IPV4 << (32 - new_length)) & MAX_IPV4 if new_length else 0
        return Prefix(self.network & mask, new_length)

    def subnets(self, new_length: int | None = None) -> Iterator["Prefix"]:
        """Iterate the subnets of *new_length* (default: one bit longer)."""
        if new_length is None:
            new_length = self.length + 1
        if not self.length <= new_length <= 32:
            raise AddressError(
                f"cannot split /{self.length} into /{new_length}"
            )
        step = 1 << (32 - new_length)
        for network in range(self.network, self.last_address + 1, step):
            yield Prefix(network, new_length)

    def nth_subnet(self, new_length: int, index: int) -> "Prefix":
        """The *index*-th subnet of *new_length* without iterating them all."""
        if not self.length <= new_length <= 32:
            raise AddressError(
                f"cannot split /{self.length} into /{new_length}"
            )
        count = 1 << (new_length - self.length)
        if not 0 <= index < count:
            raise AddressError(
                f"subnet index {index} out of range for "
                f"/{self.length}->/{new_length}"
            )
        step = 1 << (32 - new_length)
        return Prefix(self.network + index * step, new_length)

    def range(self) -> Tuple[int, int]:
        """The inclusive ``(first, last)`` integer address range."""
        return self.first_address, self.last_address
