"""Address-set algebra over IPv4 space.

An :class:`IPSet` is a set of addresses stored as disjoint inclusive
ranges, with union / intersection / difference and prefix decomposition.
The measurement code uses it for address-space accounting — e.g. "leased
space as a fraction of routed space" dedupes overlapping prefixes the
same way — and it is generally useful to downstream users of the
library.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple, Union

from .ipaddr import MAX_IPV4, Prefix
from .ranges import AddressRange, range_to_prefixes

__all__ = ["IPSet"]

SpanLike = Union[Prefix, AddressRange]


class IPSet:
    """An immutable set of IPv4 addresses held as sorted disjoint ranges."""

    __slots__ = ("_spans",)

    def __init__(self, items: Iterable[SpanLike] = ()) -> None:
        spans: List[Tuple[int, int]] = []
        for item in items:
            if isinstance(item, Prefix):
                spans.append(item.range())
            elif isinstance(item, AddressRange):
                spans.append((item.first, item.last))
            else:
                raise TypeError(f"unsupported item: {item!r}")
        self._spans: Tuple[Tuple[int, int], ...] = tuple(_normalize(spans))

    @classmethod
    def _from_spans(cls, spans: List[Tuple[int, int]]) -> "IPSet":
        instance = cls.__new__(cls)
        object.__setattr__(instance, "_spans", tuple(spans))
        return instance

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        """Number of addresses in the set."""
        return sum(last - first + 1 for first, last in self._spans)

    def __bool__(self) -> bool:
        return bool(self._spans)

    def __contains__(self, item: Union[int, Prefix]) -> bool:
        if isinstance(item, Prefix):
            first, last = item.range()
        else:
            first = last = item
        for span_first, span_last in self._spans:
            if span_first <= first and last <= span_last:
                return True
            if span_first > last:
                return False
        return False

    def ranges(self) -> List[AddressRange]:
        """The disjoint ranges, ascending."""
        return [AddressRange(first, last) for first, last in self._spans]

    def prefixes(self) -> Iterator[Prefix]:
        """Minimal CIDR decomposition of the whole set."""
        for first, last in self._spans:
            yield from range_to_prefixes(first, last)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPSet) and self._spans == other._spans

    def __hash__(self) -> int:
        return hash(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IPSet({len(self._spans)} ranges, {len(self):,} addresses)"

    # -- algebra -------------------------------------------------------------
    def union(self, other: "IPSet") -> "IPSet":
        """Addresses in either set."""
        return IPSet._from_spans(
            _normalize(list(self._spans) + list(other._spans))
        )

    def intersection(self, other: "IPSet") -> "IPSet":
        """Addresses in both sets."""
        result: List[Tuple[int, int]] = []
        i = j = 0
        left, right = self._spans, other._spans
        while i < len(left) and j < len(right):
            first = max(left[i][0], right[j][0])
            last = min(left[i][1], right[j][1])
            if first <= last:
                result.append((first, last))
            if left[i][1] < right[j][1]:
                i += 1
            else:
                j += 1
        return IPSet._from_spans(result)

    def difference(self, other: "IPSet") -> "IPSet":
        """Addresses in this set but not in *other*."""
        result: List[Tuple[int, int]] = []
        other_spans = list(other._spans)
        for first, last in self._spans:
            cursor = first
            for o_first, o_last in other_spans:
                if o_last < cursor:
                    continue
                if o_first > last:
                    break
                if o_first > cursor:
                    result.append((cursor, o_first - 1))
                cursor = max(cursor, o_last + 1)
                if cursor > last:
                    break
            if cursor <= last:
                result.append((cursor, last))
        return IPSet._from_spans(result)

    def __or__(self, other: "IPSet") -> "IPSet":
        return self.union(other)

    def __and__(self, other: "IPSet") -> "IPSet":
        return self.intersection(other)

    def __sub__(self, other: "IPSet") -> "IPSet":
        return self.difference(other)

    def isdisjoint(self, other: "IPSet") -> bool:
        """True when the sets share no address."""
        return not self.intersection(other)

    def issubset(self, other: "IPSet") -> bool:
        """True when every address here is also in *other*."""
        return not self.difference(other)


def _normalize(spans: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Sort, validate, and merge overlapping/adjacent spans."""
    for first, last in spans:
        if not 0 <= first <= last <= MAX_IPV4:
            raise ValueError(f"invalid span: ({first}, {last})")
    merged: List[Tuple[int, int]] = []
    for first, last in sorted(spans):
        if merged and first <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], last))
        else:
            merged.append((first, last))
    return merged
