"""A binary radix trie over IPv4 prefixes.

Supports the lookups the paper's inference needs:

* exact match (leaf-node BGP origins, §5.1 step 4),
* least-specific covering prefix (root-node fallback, §5.1 step 4),
* longest-prefix match (general routing-table semantics),
* enumeration of stored roots / leaves (allocation tree, §5.1 step 2).

The trie maps each stored :class:`~repro.net.ipaddr.Prefix` to an arbitrary
value; inserting the same prefix twice replaces the value.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from .ipaddr import Prefix

__all__ = [
    "PrefixTrie",
    "flat_covered_range",
    "flat_covering_index",
    "flat_exact_index",
    "flat_longest_match_index",
    "pack_prefix",
    "resolve_covering_chain",
    "unpack_prefix",
]

V = TypeVar("V")


class _Node(Generic[V]):
    """One bit-level trie node; ``prefix`` is set only on stored entries."""

    __slots__ = ("children", "prefix", "value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.prefix: Optional[Prefix] = None
        self.value: Optional[V] = None


def _bit(network: int, depth: int) -> int:
    """The *depth*-th most significant bit of a 32-bit network address."""
    return (network >> (31 - depth)) & 1


class PrefixTrie(Generic[V]):
    """Mutable mapping from IPv4 prefixes to values with covering lookups."""

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    # -- mutation ----------------------------------------------------------
    def insert(self, prefix: Prefix, value: V) -> None:
        """Store *value* under *prefix*, replacing any previous value."""
        node = self._root
        for depth in range(prefix.length):
            branch = _bit(prefix.network, depth)
            child = node.children[branch]
            if child is None:
                child = _Node()
                node.children[branch] = child
            node = child
        if node.prefix is None:
            self._size += 1
        node.prefix = prefix
        node.value = value

    def remove(self, prefix: Prefix) -> bool:
        """Delete *prefix*; returns False when it was not stored.

        Removal keeps every lookup exact: a removed interior entry no
        longer appears in ``covering``/``longest_match`` chains (its
        stored descendants are answered through it transparently), and
        childless branches left behind are pruned so that repeated
        insert/remove cycles — a hot-reload diffing snapshots — cannot
        grow the trie without bound.
        """
        path: List[Tuple[_Node[V], int]] = []
        node = self._root
        for depth in range(prefix.length):
            branch = _bit(prefix.network, depth)
            child = node.children[branch]
            if child is None:
                return False
            path.append((node, branch))
            node = child
        if node.prefix is None:
            return False
        node.prefix = None
        node.value = None
        self._size -= 1
        # Prune the now-useless tail: walk back towards the root, cutting
        # nodes that hold no entry and no children.
        for parent, branch in reversed(path):
            child = parent.children[branch]
            if child is not None and (
                child.prefix is not None
                or any(grand is not None for grand in child.children)
            ):
                break
            parent.children[branch] = None
        return True

    # -- basic queries -------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find_node(prefix)
        return node is not None and node.prefix is not None

    def _find_node(self, prefix: Prefix) -> Optional[_Node[V]]:
        node = self._root
        for depth in range(prefix.length):
            child = node.children[_bit(prefix.network, depth)]
            if child is None:
                return None
            node = child
        return node

    def exact(self, prefix: Prefix) -> Optional[V]:
        """The value stored at exactly *prefix*, or None."""
        node = self._find_node(prefix)
        if node is None or node.prefix is None:
            return None
        return node.value

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """Dict-style exact lookup with a default."""
        node = self._find_node(prefix)
        if node is None or node.prefix is None:
            return default
        return node.value

    # -- covering lookups ------------------------------------------------------
    def covering(self, prefix: Prefix) -> List[Tuple[Prefix, V]]:
        """All stored prefixes covering *prefix*, least-specific first.

        A stored prefix equal to *prefix* is included.
        """
        found: List[Tuple[Prefix, V]] = []
        node = self._root
        if node.prefix is not None:
            found.append((node.prefix, node.value))  # type: ignore[arg-type]
        for depth in range(prefix.length):
            child = node.children[_bit(prefix.network, depth)]
            if child is None:
                return found
            node = child
            if node.prefix is not None:
                found.append((node.prefix, node.value))  # type: ignore[arg-type]
        return found

    def longest_match(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """The most-specific stored prefix covering *prefix*, or None."""
        chain = self.covering(prefix)
        return chain[-1] if chain else None

    def least_specific_match(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """The least-specific stored prefix covering *prefix*, or None.

        This is the lookup the paper applies to root nodes whose exact
        prefix is absent from BGP: "search for its least-specific covering
        prefix and origin AS" (§5.1 step 4).
        """
        chain = self.covering(prefix)
        return chain[0] if chain else None

    def parent(self, prefix: Prefix) -> Optional[Tuple[Prefix, V]]:
        """The most-specific stored *strict* ancestor of *prefix*, or None."""
        chain = self.covering(prefix)
        while chain and chain[-1][0] == prefix:
            chain.pop()
        return chain[-1] if chain else None

    # -- subtree queries ----------------------------------------------------
    def covered(self, prefix: Prefix) -> Iterator[Tuple[Prefix, V]]:
        """Iterate stored prefixes equal to or more specific than *prefix*."""
        node = self._root
        for depth in range(prefix.length):
            child = node.children[_bit(prefix.network, depth)]
            if child is None:
                return
            node = child
        yield from self._iter_subtree(node)

    def children_of(self, prefix: Prefix) -> List[Tuple[Prefix, V]]:
        """Direct stored descendants of *prefix* (no stored prefix between)."""
        start = self._find_node(prefix)
        if start is None:
            return []
        result: List[Tuple[Prefix, V]] = []
        stack = [child for child in start.children if child is not None]
        while stack:
            node = stack.pop()
            if node.prefix is not None:
                result.append((node.prefix, node.value))  # type: ignore[arg-type]
                continue  # anything deeper is not a *direct* child
            stack.extend(
                child for child in node.children if child is not None
            )
        result.sort(key=lambda item: item[0])
        return result

    def _iter_subtree(self, start: _Node[V]) -> Iterator[Tuple[Prefix, V]]:
        stack = [start]
        while stack:
            node = stack.pop()
            if node.prefix is not None:
                yield node.prefix, node.value  # type: ignore[misc]
            for child in reversed(node.children):
                if child is not None:
                    stack.append(child)

    def items(self) -> Iterator[Tuple[Prefix, V]]:
        """Iterate all stored ``(prefix, value)`` pairs (trie order)."""
        yield from self._iter_subtree(self._root)

    def keys(self) -> Iterator[Prefix]:
        """Iterate all stored prefixes (trie order)."""
        for prefix, _value in self.items():
            yield prefix

    # -- structural roles (allocation tree) ----------------------------------
    def roots(self) -> List[Tuple[Prefix, V]]:
        """Stored prefixes with no stored strict ancestor."""
        result: List[Tuple[Prefix, V]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.prefix is not None:
                result.append((node.prefix, node.value))  # type: ignore[arg-type]
                continue  # descendants have an ancestor: this node
            stack.extend(
                child for child in node.children if child is not None
            )
        result.sort(key=lambda item: item[0])
        return result

    def leaves(self) -> List[Tuple[Prefix, V]]:
        """Stored prefixes with no stored strict descendant."""
        result: List[Tuple[Prefix, V]] = []
        stack: List[Tuple[_Node[V], Optional[_Node[V]]]] = [(self._root, None)]
        # Depth-first walk tracking, for each stored node, whether any stored
        # node exists beneath it.
        def walk(node: _Node[V]) -> bool:
            has_stored_below = False
            for child in node.children:
                if child is not None and walk(child):
                    has_stored_below = True
            if node.prefix is not None:
                if not has_stored_below:
                    result.append((node.prefix, node.value))  # type: ignore[arg-type]
                return True
            return has_stored_below

        walk(self._root)
        result.sort(key=lambda item: item[0])
        return result

    # -- conversion ---------------------------------------------------------
    def to_dict(self) -> Dict[Prefix, V]:
        """Materialize the trie as a plain dict."""
        return dict(self.items())

    @classmethod
    def from_items(cls, items) -> "PrefixTrie[V]":
        """Build a trie from an iterable of ``(prefix, value)`` pairs."""
        trie: PrefixTrie[V] = cls()
        for prefix, value in items:
            trie.insert(prefix, value)
        return trie


# -- flat sorted-array lookups ---------------------------------------------
#
# A prefix set can be frozen into one sorted array of packed uint64 keys
# (``network << 8 | length``) — the packing preserves ``Prefix`` order
# (network first, then length), so binary search replaces the trie walk
# and the array can live in shared memory as raw bytes.  These helpers
# run over any sorted integer sequence: a list, an ``array('Q')``, or a
# ``memoryview`` cast over a ``multiprocessing.shared_memory`` buffer.

#: Keys are 40-bit (32-bit network + 8-bit length) stored as uint64.
_KEY_LENGTH_MASK = 0xFF


def pack_prefix(prefix: Prefix) -> int:
    """*prefix* as a sortable integer key: ``network << 8 | length``."""
    return (prefix.network << 8) | prefix.length


def unpack_prefix(key: int) -> Prefix:
    """The :class:`Prefix` a packed key encodes."""
    return Prefix(key >> 8, key & _KEY_LENGTH_MASK)


def flat_exact_index(keys: Sequence[int], prefix: Prefix) -> Optional[int]:
    """Index of exactly *prefix* in the sorted key array, or None."""
    packed = pack_prefix(prefix)
    index = bisect_left(keys, packed)
    if index < len(keys) and keys[index] == packed:
        return index
    return None


def flat_covered_range(keys: Sequence[int], prefix: Prefix) -> Tuple[int, int]:
    """The contiguous slice of keys equal to or more specific than *prefix*.

    CIDR alignment makes the subtree contiguous in packed order: every
    prefix inside *prefix* has a network address in
    ``[prefix.network, prefix.last_address]`` and sorts at or after the
    packed *prefix* itself (shorter covering prefixes share the network
    address but sort strictly before it).  Returns ``(start, stop)``
    with ``start == stop`` when nothing is covered.
    """
    start = bisect_left(keys, pack_prefix(prefix))
    stop = bisect_left(keys, (prefix.last_address + 1) << 8)
    return start, stop


def flat_covering_index(
    keys: Sequence[int], lengths: Sequence[int], prefix: Prefix
) -> Optional[int]:
    """Index of the least-specific stored prefix covering *prefix*.

    *lengths* is the ascending set of lengths present in *keys* — the
    same truncation-probe trick as :meth:`RibSnapshot.covering_origins`:
    every cover of *prefix* is ``prefix.supernet(L)``, so probing each
    advertised length ascending finds the least-specific cover first.
    """
    for length in lengths:
        if length > prefix.length:
            break
        index = flat_exact_index(keys, prefix.supernet(length))
        if index is not None:
            return index
    return None


def flat_longest_match_index(
    keys: Sequence[int], lengths: Sequence[int], prefix: Prefix
) -> Optional[int]:
    """Index of the most-specific stored prefix covering *prefix* (LPM)."""
    for position in range(len(lengths) - 1, -1, -1):
        length = lengths[position]
        if length > prefix.length:
            continue
        index = flat_exact_index(keys, prefix.supernet(length))
        if index is not None:
            return index
    return None


def resolve_covering_chain(
    trie: PrefixTrie[V], prefix: Prefix
) -> Tuple[Optional[Tuple[Prefix, V]], List[Tuple[Prefix, V]]]:
    """Resolve *prefix* against *trie* as ``(best, chain)``.

    ``chain`` holds every stored entry covering *prefix*, least-specific
    first — the registry-style covering chain; ``best`` is its final,
    most-specific element (the longest-prefix match), or ``None`` when
    nothing covers the query.  The RFC 3912 WHOIS server and the lease
    lookup service share this helper so both resolve queries through
    identical semantics.
    """
    chain = trie.covering(prefix)
    best = chain[-1] if chain else None
    return best, chain
