"""Address-range handling: WHOIS range notation and CIDR decomposition.

RIR WHOIS databases describe ``inetnum`` objects as inclusive address
ranges (``213.210.0.0 - 213.210.63.255``) rather than CIDR prefixes.  The
paper's methodology (§5.1 step 2) "convert[s] the address-range notation
into CIDR-prefix notation"; this module implements that conversion exactly:
a range maps to the unique minimal list of CIDR prefixes covering it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from .ipaddr import (
    MAX_IPV4,
    AddressError,
    Prefix,
    address_to_int,
    int_to_address,
)

__all__ = ["AddressRange", "range_to_prefixes", "prefixes_to_ranges"]


@dataclass(frozen=True, order=True)
class AddressRange:
    """An inclusive IPv4 address range ``[first, last]``."""

    first: int
    last: int

    def __post_init__(self) -> None:
        if not 0 <= self.first <= MAX_IPV4:
            raise AddressError(f"range start out of bounds: {self.first}")
        if not 0 <= self.last <= MAX_IPV4:
            raise AddressError(f"range end out of bounds: {self.last}")
        if self.first > self.last:
            raise AddressError(
                f"inverted range: {int_to_address(self.first)} - "
                f"{int_to_address(self.last)}"
            )

    @classmethod
    def parse(cls, text: str) -> "AddressRange":
        """Parse WHOIS range notation ``a.b.c.d - e.f.g.h`` or a CIDR.

        Both spellings occur in RIR dumps; LACNIC and ARIN frequently use
        CIDR while RIPE/APNIC/AFRINIC inetnums use dashed ranges.
        """
        text = text.strip()
        if "-" in text:
            first_text, _, last_text = text.partition("-")
            return cls(address_to_int(first_text), address_to_int(last_text))
        prefix = Prefix.parse(text)
        return cls(prefix.first_address, prefix.last_address)

    @classmethod
    def from_prefix(cls, prefix: Prefix) -> "AddressRange":
        """The range exactly covering *prefix*."""
        return cls(prefix.first_address, prefix.last_address)

    def __str__(self) -> str:
        return f"{int_to_address(self.first)} - {int_to_address(self.last)}"

    @property
    def num_addresses(self) -> int:
        """Number of addresses in the range."""
        return self.last - self.first + 1

    def contains(self, other: "AddressRange") -> bool:
        """True when *other* lies entirely within this range."""
        return self.first <= other.first and other.last <= self.last

    def overlaps(self, other: "AddressRange") -> bool:
        """True when the ranges share at least one address."""
        return self.first <= other.last and other.first <= self.last

    def to_prefixes(self) -> List[Prefix]:
        """Minimal CIDR decomposition of this range."""
        return list(range_to_prefixes(self.first, self.last))

    def is_cidr_aligned(self) -> bool:
        """True when the range is exactly one CIDR prefix."""
        prefixes = self.to_prefixes()
        return len(prefixes) == 1


def range_to_prefixes(first: int, last: int) -> Iterator[Prefix]:
    """Yield the minimal CIDR prefixes covering ``[first, last]``.

    Classic greedy algorithm: at each step emit the largest prefix that is
    aligned at *first* and does not overshoot *last*.

    >>> [str(p) for p in range_to_prefixes(
    ...     address_to_int("10.0.0.0"), address_to_int("10.0.2.255"))]
    ['10.0.0.0/23', '10.0.2.0/24']
    """
    if first > last:
        raise AddressError("inverted range")
    cursor = first
    while cursor <= last:
        # Largest block size keeping `cursor` aligned.
        if cursor == 0:
            align_bits = 32
        else:
            align_bits = (cursor & -cursor).bit_length() - 1
        # Largest block size not overshooting `last`.
        span = last - cursor + 1
        span_bits = span.bit_length() - 1
        bits = min(align_bits, span_bits)
        yield Prefix(cursor, 32 - bits)
        cursor += 1 << bits


def prefixes_to_ranges(prefixes: Sequence[Prefix]) -> List[AddressRange]:
    """Coalesce prefixes into maximal disjoint inclusive ranges.

    The input need not be sorted or disjoint; overlapping and adjacent
    prefixes merge into a single range.
    """
    if not prefixes:
        return []
    spans = sorted(prefix.range() for prefix in prefixes)
    merged: List[AddressRange] = []
    current_first, current_last = spans[0]
    for first, last in spans[1:]:
        if first <= current_last + 1:
            current_last = max(current_last, last)
        else:
            merged.append(AddressRange(current_first, current_last))
            current_first, current_last = first, last
    merged.append(AddressRange(current_first, current_last))
    return merged
