"""Text reports reproducing the paper's tables and Fig. 3."""

from .bench import render_bench_report, render_serve_report
from .diagnostics import (
    render_diagnostics_summary,
    render_diagnostics_text,
)
from .export import table1_json, table2_json, to_csv, to_markdown
from .figures import render_timeline
from .report import build_full_report
from .tables import (
    render_drop_stats,
    render_hijacker_stats,
    render_roa_stats,
    render_table1,
    render_table2,
    render_table3,
)
from .text import render_table

__all__ = [
    "build_full_report",
    "render_bench_report",
    "render_diagnostics_summary",
    "render_diagnostics_text",
    "render_drop_stats",
    "render_hijacker_stats",
    "render_roa_stats",
    "render_serve_report",
    "render_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_timeline",
    "table1_json",
    "table2_json",
    "to_csv",
    "to_markdown",
]
