"""Terminal rendering of the pipeline and serve benchmark payloads."""

from __future__ import annotations

from typing import Any, Dict, List, cast

from .text import render_table

__all__ = ["render_bench_report", "render_serve_report"]


def render_bench_report(report: Dict[str, object]) -> str:
    """Tables per benched world: engine modes, then extension pipelines.

    Accepts a single run payload (``{"worlds": [...]}``) or a v2
    trajectory file (``{"runs": [...]}``), rendering the latest run.
    """
    runs = report.get("runs")  # type: ignore[union-attr]
    if isinstance(runs, list) and runs:
        report = runs[-1]
    sections: List[str] = []
    for world in report["worlds"]:  # type: ignore[union-attr]
        headers = (
            "mode",
            "workers",
            "wall s",
            "leaves/s",
            "vs reference",
            "vs serial",
            "payload",
            "peak rss",
            "cat hit%",
            "root hit%",
            "ok",
        )
        rows = []
        for mode in world["modes"]:  # type: ignore[index]
            cache = mode.get("cache") or {}
            rates = cache.get("hit_rates") or {}
            rows.append(
                (
                    mode["mode"],
                    mode["workers"],
                    f"{mode['wall_s']:.2f}",
                    f"{mode['leaves_per_s']:,.0f}",
                    f"{mode['speedup_vs_reference']:.2f}x",
                    _speedup(mode["speedup_vs_serial"]),
                    _bytes(mode.get("payload_bytes")),
                    _bytes(mode.get("peak_rss_bytes")),
                    _percent(rates.get("category")),
                    _percent(rates.get("root_origin")),
                    "yes" if mode["equivalent"] else "NO",
                )
            )
        title = (
            f"Pipeline bench — {world['size']} world: "
            f"{world['classifiable_leaves']:,} leaves, "
            f"generate {world['stages']['generate_s']:.2f}s"
        )
        sections.append(render_table(headers, rows, title=title))
        extensions = world.get("extensions")  # type: ignore[union-attr]
        if extensions:
            sections.append(_render_extensions(world["size"], extensions))
    return "\n\n".join(sections)


def _render_extensions(size: object, extensions: Dict[str, object]) -> str:
    headers = (
        "pipeline",
        "mode",
        "workers",
        "items",
        "wall s",
        "vs reference",
        "ok",
    )
    rows = []
    for pipeline in ("legacy", "rpki", "longitudinal"):
        section = extensions.get(pipeline)
        if not section:
            continue
        for mode in section["modes"]:  # type: ignore[index]
            rows.append(
                (
                    pipeline,
                    mode["mode"],
                    mode["workers"],
                    section["items"],  # type: ignore[index]
                    f"{mode['wall_s']:.4f}",
                    f"{mode['speedup_vs_reference']:.2f}x",
                    "yes" if mode["equivalent"] else "NO",
                )
            )
    return render_table(
        headers, rows, title=f"Extension pipelines — {size} world"
    )


def _percent(rate: object) -> str:
    if rate is None:
        return "-"
    return f"{float(rate) * 100:.0f}%"


def _speedup(value: object) -> str:
    """Schema-v3 ``speedup_vs_serial``: a ratio, a marker string
    (``"insufficient_cpus"``), or ``None`` for the reference mode."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    return f"{float(value):.2f}x"


def _bytes(value: object) -> str:
    if value is None:
        return "-"
    size = float(int(value))
    for unit in ("B", "KB", "MB", "GB"):
        if size < 1024 or unit == "GB":
            if unit == "B":
                return f"{int(size)} B"
            return f"{size:,.1f} {unit}"
        size /= 1024
    return f"{size:,.1f} GB"  # pragma: no cover - unreachable


def render_serve_report(report: Dict[str, object]) -> str:
    """One serve-bench run as a summary line plus a per-kind table.

    Accepts a single run payload or a trajectory file
    (``{"runs": [...]}``), rendering the latest run.
    """
    document = cast(Dict[str, Any], report)
    runs = document.get("runs")
    if isinstance(runs, list) and runs:
        document = runs[-1]
    totals = document["totals"]
    latency = document["latency_ms"]
    server = document["server"]
    config = document["config"]
    cache = server["cache"]
    rows = []
    for kind, entry in document["kinds"].items():
        rows.append(
            (
                kind,
                entry["requests"],
                entry["errors"],
                f"{entry['p50_ms']:.2f}",
                f"{entry['p99_ms']:.2f}",
            )
        )
    title = (
        f"Serve bench — {config['world']}: "
        f"{totals['requests']:,} requests in {totals['wall_s']:.2f}s "
        f"({totals['req_per_s']:,.0f} req/s, "
        f"{totals['errors']} errors)"
    )
    table = render_table(
        ("kind", "requests", "errors", "p50 ms", "p99 ms"),
        rows,
        title=title,
    )
    probes = int(cache["hits"]) + int(cache["misses"])
    summary = (
        f"latency p50 {latency['p50']:.2f}ms  "
        f"p99 {latency['p99']:.2f}ms  max {latency['max']:.2f}ms  |  "
        f"cache hit rate {_percent(cache.get('hit_rate'))} "
        f"({cache['hits']}/{probes})  |  "
        f"generation {server['generation']}"
    )
    return table + "\n" + summary
