"""Rendering diagnostics reports for the ``repro lint`` front end."""

from __future__ import annotations

from typing import List

from ..diagnostics.engine import DiagnosticsReport

__all__ = ["render_diagnostics_summary", "render_diagnostics_text"]


def render_diagnostics_summary(report: DiagnosticsReport) -> str:
    """One-line wrap-up: rule count plus findings per severity.

    The error slot reads ``no errors`` when the run is clean so shell
    pipelines (and humans) can grep for success.
    """
    counts = report.counts_by_severity()
    errors = counts["error"]
    error_text = f"{errors} error(s)" if errors else "no errors"
    return (
        f"{len(report.rules_run)} rule(s) run: {error_text}, "
        f"{counts['warning']} warning(s), {counts['info']} info"
    )


def render_diagnostics_text(report: DiagnosticsReport) -> str:
    """Full text report: one line per finding, then the summary line."""
    lines: List[str] = [str(finding) for finding in report.findings]
    lines.append(render_diagnostics_summary(report))
    return "\n".join(lines)
