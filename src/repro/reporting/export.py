"""Machine-readable table exports: CSV and Markdown.

The text tables of :mod:`repro.reporting.tables` are for terminals; this
module renders the same data for spreadsheets and papers.
"""

from __future__ import annotations

import csv
import io
from typing import List, Sequence

__all__ = ["to_csv", "to_markdown"]


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a header + rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([_plain(value) for value in row])
    return buffer.getvalue()


def to_markdown(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a header + rows as a GitHub-flavoured Markdown table."""
    lines: List[str] = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _h in headers) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format(value) for value in row) + " |"
        )
    return "\n".join(lines) + "\n"


def _plain(value: object) -> object:
    if isinstance(value, float):
        return round(value, 6)
    return value


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
