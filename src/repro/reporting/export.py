"""Machine-readable table exports: CSV and Markdown.

The text tables of :mod:`repro.reporting.tables` are for terminals; this
module renders the same data for spreadsheets and papers.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Dict, List, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..core.evaluation import EvaluationReport
    from ..core.results import InferenceResult

__all__ = ["to_csv", "to_markdown", "table1_json", "table2_json"]


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a header + rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow([_plain(value) for value in row])
    return buffer.getvalue()


def to_markdown(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a header + rows as a GitHub-flavoured Markdown table."""
    lines: List[str] = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _h in headers) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format(value) for value in row) + " |"
        )
    return "\n".join(lines) + "\n"


def table1_json(
    result: "InferenceResult", routed_prefixes: int
) -> Dict[str, object]:
    """Table 1 as integer-only JSON, for golden-regression fixtures.

    Counts only (no derived ratios): integers diff exactly across
    platforms and Python versions, so any change in this payload is a
    classification change, never a formatting one.
    """
    from ..core.classify import Category

    regions: Dict[str, Dict[str, object]] = {}
    for rir, tally in sorted(
        result.tallies().items(), key=lambda item: item[0].name
    ):
        regions[rir.name] = {
            "categories": {
                category.name: tally.counts[category]
                for category in Category
            },
            "total": tally.total,
            "leased": tally.leased,
        }
    return {
        "table": "table1",
        "regions": regions,
        "total_classified": result.total_classified(),
        "total_leased": result.total_leased(),
        "leased_address_space": result.leased_address_space(),
        "routed_prefixes": routed_prefixes,
    }


def table2_json(report: "EvaluationReport") -> Dict[str, object]:
    """Table 2 (confusion matrix + FN breakdown) as integer-only JSON."""
    matrix = report.matrix
    return {
        "table": "table2",
        "matrix": {
            "tp": matrix.tp,
            "fn": matrix.fn,
            "fp": matrix.fp,
            "tn": matrix.tn,
        },
        "false_negatives": {
            "unused": report.fn_unused,
            "invisible": report.fn_invisible,
        },
        "labelled": matrix.total,
    }


def _plain(value: object) -> object:
    if isinstance(value, float):
        return round(value, 6)
    return value


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
