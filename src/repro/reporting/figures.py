"""ASCII rendering of the Fig. 3 lease timeline."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.timeline import PrefixTimeline
from ..rpki.roa import AS0

__all__ = ["render_timeline"]

_MARKS = {"rpki": "r", "bgp": "b", "both": "#"}


def render_timeline(timeline: PrefixTimeline, width: int = 72) -> str:
    """Render per-ASN bars over time, Fig. 3 style.

    ``#`` marks periods where the ASN is both RPKI-authorized and the BGP
    origin, ``r`` RPKI-only, ``b`` BGP-only.  The AS0 row shows the
    deliberate do-not-originate gaps between leases.
    """
    if not timeline.periods:
        return f"{timeline.prefix}: no history"
    start = timeline.periods[0].start
    end = max(
        period.end if period.end is not None else period.start + 1
        for period in timeline.periods
    )
    span = max(1, end - start)

    def column(timestamp: int) -> int:
        return min(width - 1, (timestamp - start) * width // span)

    rows = timeline.rows()
    ordered_asns = sorted(rows, key=lambda asn: (asn == AS0, asn))
    label_width = max(len(_label(asn)) for asn in ordered_asns)
    lines = [f"Fig. 3 timeline for {timeline.prefix}"]
    for asn in ordered_asns:
        canvas = [" "] * width
        for seg_start, seg_end, tag in rows[asn]:
            first = column(seg_start)
            last = column(seg_end) if seg_end is not None else width - 1
            for index in range(first, max(first, last) + 1):
                canvas[index] = _MARKS[tag]
        lines.append(f"{_label(asn):>{label_width}} |{''.join(canvas)}|")
    lines.append(
        f"{'':>{label_width}}  {'#'} = RPKI+BGP, r = RPKI only, "
        "b = BGP only"
    )
    return "\n".join(lines)


def _label(asn: int) -> str:
    return "AS0" if asn == AS0 else f"AS{asn}"
