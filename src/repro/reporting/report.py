"""One-shot Markdown report covering every reproduced result.

:func:`build_full_report` runs all analyses over a world and renders a
single self-contained Markdown document — the shape of the paper's
evaluation section, regenerated.  Exposed on the CLI as ``repro report``.
"""

from __future__ import annotations

from typing import List

from ..core import (
    BgpOriginHistory,
    InferenceResult,
    build_timeline,
    curate_reference,
    drop_correlation,
    evaluate_inference,
    hijacker_overlap,
    roa_abuse_analysis,
    top_facilitators,
    top_holders,
    top_originators,
)
from ..core.classify import Category
from ..rir import ALL_RIRS
from ..simulation.world import World
from .export import to_markdown
from .figures import render_timeline

__all__ = ["build_full_report"]

_ROWS = [
    ("1 Unused", Category.UNUSED),
    ("2 Aggregated Customer", Category.AGGREGATED_CUSTOMER),
    ("3 ISP Customer", Category.ISP_CUSTOMER),
    ("3 Leased", Category.LEASED_GROUP3),
    ("4 Delegated Customer", Category.DELEGATED_CUSTOMER),
    ("4 Leased", Category.LEASED_GROUP4),
]


def build_full_report(world: World, result: InferenceResult) -> str:
    """The complete Markdown report for one world + inference run."""
    sections: List[str] = [
        "# IP Leasing Inference — full reproduction report",
        "",
        (
            f"World: seed {world.scenario.seed}, "
            f"{world.whois.total_inetnums():,} WHOIS blocks, "
            f"{world.routing_table.num_prefixes():,} advertised prefixes, "
            f"{len(world.topology):,} ASes."
        ),
        "",
        _table1_section(world, result),
        _table2_section(world, result),
        _table3_section(world, result),
        _ecosystem_section(world, result),
        _abuse_section(world, result),
        _timeline_section(world),
    ]
    return "\n".join(sections)


def _table1_section(world: World, result: InferenceResult) -> str:
    headers = ["Inference Group"] + [r.name for r in ALL_RIRS] + ["All"]
    rows = []
    for label, category in _ROWS:
        row: List[object] = [label]
        row.extend(result.tally(rir).counts[category] for rir in ALL_RIRS)
        row.append(sum(result.tally(rir).counts[category] for rir in ALL_RIRS))
        rows.append(row)
    share = 100.0 * result.total_leased() / world.routing_table.num_prefixes()
    return "\n".join(
        (
            "## Table 1 — prefixes per inference group",
            "",
            to_markdown(headers, rows),
            (
                f"**{result.total_leased():,} leased prefixes = "
                f"{share:.1f}% of all advertised prefixes** "
                "(paper: 4.1%)."
            ),
            "",
        )
    )


def _table2_section(world: World, result: InferenceResult) -> str:
    reference = curate_reference(
        world.whois,
        world.broker_registry,
        world.routing_table,
        not_leased_exclusions=world.curation_exclusions,
        negative_isp_org_ids=world.negative_isp_org_ids,
    )
    report = evaluate_inference(result, reference)
    matrix = report.matrix
    table = to_markdown(
        ["", "Inferred lease", "Inferred non-lease"],
        [
            ["Actual lease", matrix.tp, matrix.fn],
            ["Actual non-lease", matrix.fp, matrix.tn],
        ],
    )
    return "\n".join(
        (
            "## Table 2 — evaluation against the curated reference",
            "",
            table,
            (
                f"Precision {matrix.precision:.2f}, recall "
                f"{matrix.recall:.2f}, specificity {matrix.specificity:.2f}, "
                f"accuracy {matrix.accuracy:.2f} (paper: 0.98 / 0.82 / 0.98 "
                "/ 0.88). False negatives: "
                f"{report.fn_unused} inactive leases (Unused) and "
                f"{report.fn_invisible} legacy blocks."
            ),
            "",
        )
    )


def _table3_section(world: World, result: InferenceResult) -> str:
    ranking = top_holders(result, world.whois, 3)
    rows = []
    for rir in ALL_RIRS:
        for index, (name, count) in enumerate(ranking[rir]):
            rows.append([rir.name if index == 0 else "", name, count])
    return "\n".join(
        (
            "## Table 3 — top IP holders by inferred leases",
            "",
            to_markdown(["RIR", "Organization", "Leases"], rows),
            "",
        )
    )


def _ecosystem_section(world: World, result: InferenceResult) -> str:
    facilitators = top_facilitators(result, k=3)
    originators = top_originators(result, k=3)
    rows = []
    for rir in ALL_RIRS:
        fac = ", ".join(f"{h} ({c})" for h, c in facilitators[rir]) or "—"
        orig = ", ".join(f"AS{a} ({c})" for a, c in originators[rir]) or "—"
        rows.append([rir.name, fac, orig])
    overlap = hijacker_overlap(result, world.routing_table, world.hijackers)
    return "\n".join(
        (
            "## §6.3 — ecosystem",
            "",
            to_markdown(["RIR", "Top facilitators", "Top originators"], rows),
            (
                f"Serial hijackers: {overlap.hijacker_originators}/"
                f"{overlap.lease_originators} originators "
                f"({100 * overlap.originator_share:.1f}%), originating "
                f"{100 * overlap.leased_share:.1f}% of leased vs "
                f"{100 * overlap.non_leased_share:.1f}% of non-leased "
                "prefixes (paper: 2.9%, 13.3%, 3.1%)."
            ),
            "",
        )
    )


def _abuse_section(world: World, result: InferenceResult) -> str:
    drop = world.drop
    stats = drop_correlation(result, world.routing_table, drop)
    leased = result.leased_prefixes()
    non_leased = set(world.routing_table.prefixes()) - leased
    roa_leased = roa_abuse_analysis(leased, world.roas, drop)
    roa_other = roa_abuse_analysis(non_leased, world.roas, drop)
    return "\n".join(
        (
            "## §6.4 — abuse",
            "",
            (
                f"* DROP-originated: {100 * stats.leased_share:.1f}% of "
                f"leased vs {100 * stats.non_leased_share:.1f}% of "
                f"non-leased — **{stats.risk_ratio:.1f}× more likely** "
                "(paper: ≈5×)."
            ),
            (
                f"* ROAs naming a blocklisted AS: "
                f"{100 * roa_leased.blocklisted_share:.1f}% of leased-space "
                f"ROAs vs {100 * roa_other.blocklisted_share:.1f}% "
                "(paper: 1.6% vs 0.2%)."
            ),
            "",
        )
    )


def _timeline_section(world: World) -> str:
    featured = world.featured
    bgp = BgpOriginHistory()
    for timestamp, origins in featured.bgp_observations:
        bgp.add_observation(timestamp, origins)
    timeline = build_timeline(featured.prefix, bgp, featured.rpki_archive)
    return "\n".join(
        (
            "## Fig. 3 — lease timeline of the featured prefix",
            "",
            "```",
            render_timeline(timeline),
            "```",
            (
                f"{timeline.lease_count()} leases, "
                f"{len(timeline.as0_periods())} AS0 windows between them "
                "(§6.5)."
            ),
            "",
        )
    )
