"""Paper-style reports: Tables 1-3 and the §6.3/§6.4 statistics."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.abuse import DropCorrelation, RoaAbuseStats
from ..core.classify import Category
from ..core.ecosystem import HijackerOverlap
from ..core.metrics import ConfusionMatrix
from ..core.results import InferenceResult
from ..rir import ALL_RIRS, RIR
from .text import render_table

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "render_hijacker_stats",
    "render_drop_stats",
    "render_roa_stats",
]

_ROW_ORDER = [
    ("1 Unused", (Category.UNUSED,)),
    ("2 Aggregated Customer", (Category.AGGREGATED_CUSTOMER,)),
    ("3 ISP Customer", (Category.ISP_CUSTOMER,)),
    ("3 Leased", (Category.LEASED_GROUP3,)),
    ("4 Delegated Customer", (Category.DELEGATED_CUSTOMER,)),
    ("4 Leased", (Category.LEASED_GROUP4,)),
]


def render_table1(result: InferenceResult, total_bgp_prefixes: int = 0) -> str:
    """Table 1: prefix counts per inference group per region."""
    headers = ["Inference Group"] + [rir.name for rir in ALL_RIRS] + [
        "All Regions"
    ]
    rows: List[List[object]] = []
    for label, categories in _ROW_ORDER:
        row: List[object] = [label]
        total = 0
        for rir in ALL_RIRS:
            count = sum(
                result.tally(rir).counts[category] for category in categories
            )
            row.append(count)
            total += count
        row.append(total)
        rows.append(row)
    leased_row: List[object] = ["Leased/Total"]
    for rir in ALL_RIRS:
        tally = result.tally(rir)
        leased_row.append(f"{tally.leased:,}/{tally.total:,}")
    leased_row.append(f"{result.total_leased():,}/{result.total_classified():,}")
    rows.append(leased_row)
    title = "Table 1: Number of prefixes in each category"
    if total_bgp_prefixes:
        share = 100.0 * result.total_leased() / total_bgp_prefixes
        title += (
            f" ({result.total_leased():,} leased = {share:.1f}% of "
            f"{total_bgp_prefixes:,} routed prefixes)"
        )
    return render_table(headers, rows, title=title)


def render_table2(matrix: ConfusionMatrix) -> str:
    """Table 2: the confusion matrix with Appendix-A metrics."""
    rows = [
        ["Actual Lease", matrix.tp, matrix.fn, f"Recall {matrix.recall:.2f}"],
        [
            "Actual Non-lease",
            matrix.fp,
            matrix.tn,
            f"Specificity {matrix.specificity:.2f}",
        ],
        [
            "",
            f"Precision {matrix.precision:.2f}",
            f"NPV {matrix.npv:.2f}",
            f"Accuracy {matrix.accuracy:.2f}",
        ],
    ]
    return render_table(
        ["", "Inferred Lease", "Inferred Non-lease", ""],
        rows,
        title=(
            f"Table 2: Confusion matrix over {matrix.total:,} validated "
            "prefixes"
        ),
    )


def render_table3(ranking: Dict[RIR, List[Tuple[str, int]]]) -> str:
    """Table 3: top IP holders by inferred lease count per region."""
    rows: List[List[object]] = []
    for rir in ALL_RIRS:
        for index, (name, count) in enumerate(ranking.get(rir, [])):
            rows.append([rir.name if index == 0 else "", name, count])
    return render_table(
        ["RIR", "Organization", "Count"],
        rows,
        title="Table 3: Top IP holders by number of inferred leases",
    )


def render_hijacker_stats(stats: HijackerOverlap) -> str:
    """§6.3: serial-hijacker overlap lines."""
    return "\n".join(
        (
            "Serial-hijacker overlap (§6.3):",
            (
                f"  {stats.hijacker_originators}/{stats.lease_originators} "
                f"({100 * stats.originator_share:.1f}%) lease originators "
                "are serial hijackers"
            ),
            (
                f"  {stats.leased_by_hijackers}/{stats.leased_prefixes} "
                f"({100 * stats.leased_share:.1f}%) leased prefixes "
                "originated by serial hijackers"
            ),
            (
                f"  {stats.non_leased_by_hijackers}/"
                f"{stats.non_leased_prefixes} "
                f"({100 * stats.non_leased_share:.1f}%) non-leased prefixes "
                "originated by serial hijackers"
            ),
        )
    )


def render_drop_stats(stats: DropCorrelation) -> str:
    """§6.4: ASN-DROP origination comparison."""
    return "\n".join(
        (
            "Spamhaus ASN-DROP origination (§6.4):",
            (
                f"  leased: {stats.leased_by_blocklisted}/"
                f"{stats.leased_prefixes} "
                f"({100 * stats.leased_share:.1f}%)"
            ),
            (
                f"  non-leased: {stats.non_leased_by_blocklisted}/"
                f"{stats.non_leased_prefixes} "
                f"({100 * stats.non_leased_share:.1f}%)"
            ),
            f"  leased space is {stats.risk_ratio:.1f}x more likely abused",
        )
    )


def render_roa_stats(leased: RoaAbuseStats, non_leased: RoaAbuseStats) -> str:
    """§6.4: ROAs authorizing blocklisted ASes."""
    return "\n".join(
        (
            "ROAs naming blocklisted ASes (§6.4):",
            (
                f"  leased prefixes: {leased.roas_blocklisted}/"
                f"{leased.roas_total} ROAs "
                f"({100 * leased.blocklisted_share:.1f}%)"
            ),
            (
                f"  non-leased prefixes: {non_leased.roas_blocklisted}/"
                f"{non_leased.roas_total} ROAs "
                f"({100 * non_leased.blocklisted_share:.1f}%)"
            ),
        )
    )
