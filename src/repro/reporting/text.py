"""Minimal text-table rendering for terminal reports."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a right-padded ASCII table.

    Numeric cells are right-aligned; everything else left-aligned.
    """
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells.append([_format(value) for value in row])
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    for index, row in enumerate(cells):
        rendered = " | ".join(
            value.rjust(width) if _is_numeric(value) else value.ljust(width)
            for value, width in zip(row, widths)
        )
        lines.append(rendered.rstrip())
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _is_numeric(value: str) -> bool:
    stripped = value.replace(",", "").replace(".", "").replace("%", "")
    return stripped.lstrip("-").isdigit() if stripped else False
