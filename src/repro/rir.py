"""The five Regional Internet Registries and their display metadata."""

from __future__ import annotations

import enum
from typing import List

__all__ = ["RIR", "ALL_RIRS"]


class RIR(enum.Enum):
    """A Regional Internet Registry.

    Member order follows the paper's tables (Table 1, Table 3): RIPE, ARIN,
    APNIC, AFRINIC, LACNIC.
    """

    RIPE = "ripe"
    ARIN = "arin"
    APNIC = "apnic"
    AFRINIC = "afrinic"
    LACNIC = "lacnic"

    @property
    def display_name(self) -> str:
        """Name as printed in the paper's tables."""
        return self.name

    @property
    def whois_source(self) -> str:
        """Value of the RPSL ``source:`` attribute for this registry."""
        return self.name

    @classmethod
    def parse(cls, text: str) -> "RIR":
        """Parse a registry name case-insensitively."""
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(f"unknown RIR: {text!r}") from None


#: All registries in table order.
ALL_RIRS: List[RIR] = list(RIR)
