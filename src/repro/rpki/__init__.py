"""RPKI substrate: ROAs, snapshots, archives, and origin validation."""

from .archive import RpkiArchive
from .roa import AS0, ROA, RoaSet
from .validation import ValidationState, validate_origin

__all__ = [
    "AS0",
    "ROA",
    "RoaSet",
    "RpkiArchive",
    "ValidationState",
    "validate_origin",
]
