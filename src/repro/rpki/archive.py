"""Time-series archive of RPKI snapshots.

Models the 30-minute-granularity RPKI archive of §4: an ordered sequence
of ``(timestamp, RoaSet)`` snapshots with point-in-time lookup and
per-prefix history extraction — the ingredients of the Fig. 3 lease
timeline.  On disk an archive is a directory of ``vrps-<timestamp>.csv``
files, one VRP CSV per snapshot, mirroring how public RPKI archives are
published.
"""

from __future__ import annotations

import bisect
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..net import Prefix
from .roa import RoaSet

__all__ = ["RpkiArchive"]


class RpkiArchive:
    """An append-only, timestamp-ordered series of ROA snapshots."""

    def __init__(self) -> None:
        self._timestamps: List[int] = []
        self._snapshots: Dict[int, RoaSet] = {}

    def add_snapshot(self, timestamp: int, roas: RoaSet) -> None:
        """Record the snapshot taken at *timestamp* (seconds)."""
        if timestamp in self._snapshots:
            self._snapshots[timestamp] = roas
            return
        bisect.insort(self._timestamps, timestamp)
        self._snapshots[timestamp] = roas

    def timestamps(self) -> List[int]:
        """All snapshot timestamps, ascending."""
        return list(self._timestamps)

    def snapshot_at(self, timestamp: int) -> Optional[RoaSet]:
        """The most recent snapshot at or before *timestamp*, or None."""
        index = bisect.bisect_right(self._timestamps, timestamp)
        if index == 0:
            return None
        return self._snapshots[self._timestamps[index - 1]]

    def latest(self) -> Optional[RoaSet]:
        """The newest snapshot, or None when empty."""
        if not self._timestamps:
            return None
        return self._snapshots[self._timestamps[-1]]

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[Tuple[int, RoaSet]]:
        for timestamp in self._timestamps:
            yield timestamp, self._snapshots[timestamp]

    # -- per-prefix history -----------------------------------------------
    def authorized_origin_history(
        self, prefix: Prefix
    ) -> List[Tuple[int, FrozenSet[int]]]:
        """For each snapshot, the ASNs some covering ROA names for *prefix*.

        This is the RPKI series plotted in Fig. 3: the set of authorized
        origins over time, including AS0 markers between leases.
        """
        return [
            (timestamp, roas.authorized_origins(prefix))
            for timestamp, roas in self
        ]

    # -- directory format ---------------------------------------------------
    def to_directory(self, directory: Path) -> None:
        """Write one ``vrps-<timestamp>.csv`` per snapshot."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for timestamp, snapshot in self:
            path = directory / f"vrps-{timestamp:012d}.csv"
            path.write_text(snapshot.to_csv())

    @classmethod
    def from_directory(cls, directory: Path) -> "RpkiArchive":
        """Load an archive written by :meth:`to_directory`."""
        archive = cls()
        for path in sorted(Path(directory).glob("vrps-*.csv")):
            timestamp = int(path.stem.replace("vrps-", ""))
            archive.add_snapshot(timestamp, RoaSet.from_csv(path.read_text()))
        return archive

    def change_points(self, prefix: Prefix) -> List[Tuple[int, FrozenSet[int]]]:
        """Snapshots where the authorized-origin set changed.

        The first snapshot always appears.  Collapses the 30-minute series
        into the lease-boundary events of §6.5.
        """
        changes: List[Tuple[int, FrozenSet[int]]] = []
        previous: Optional[FrozenSet[int]] = None
        for timestamp, origins in self.authorized_origin_history(prefix):
            if previous is None or origins != previous:
                changes.append((timestamp, origins))
                previous = origins
        return changes
