"""Route Origin Authorizations and VRP sets.

A ROA authorizes one AS to originate a prefix (up to ``max_length``);
``asn == 0`` (AS0) is the RFC 7607 "never originate" marker the paper
observes IPXO using between leases (§6.5, Fig. 3).  A :class:`RoaSet` is
one validated snapshot — the 30-minute archive granularity of §4 is
modelled by :mod:`repro.rpki.archive`.

On-disk format is the conventional VRP CSV: ``ASN,IP Prefix,Max Length``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..net import Prefix, PrefixTrie

__all__ = ["AS0", "ROA", "RoaSet"]

#: RFC 7607 AS0: a ROA that authorizes nobody.
AS0 = 0


@dataclass(frozen=True, order=True)
class ROA:
    """One validated ROA payload (VRP)."""

    prefix: Prefix
    asn: int
    max_length: Optional[int] = None

    def __post_init__(self) -> None:
        if self.asn < 0:
            raise ValueError(f"negative ASN: {self.asn}")
        if self.max_length is None:
            # Normalize the RFC 6482 default so ROA(p, a) == ROA(p, a, p.length).
            object.__setattr__(self, "max_length", self.prefix.length)
        if not self.prefix.length <= self.max_length <= 32:
            raise ValueError(
                f"maxLength {self.max_length} invalid for {self.prefix}"
            )

    @property
    def effective_max_length(self) -> int:
        """maxLength (normalized to the prefix length when omitted)."""
        return self.max_length  # type: ignore[return-value]

    @property
    def is_as0(self) -> bool:
        """True for AS0 ("do not originate") ROAs."""
        return self.asn == AS0

    def authorizes(self, prefix: Prefix, origin: int) -> bool:
        """True when this ROA makes (prefix, origin) RPKI-valid."""
        if self.asn != origin or self.is_as0:
            return False
        return (
            self.prefix.contains(prefix)
            and prefix.length <= self.effective_max_length
        )

    def covers(self, prefix: Prefix) -> bool:
        """True when this ROA covers *prefix* (regardless of origin)."""
        return self.prefix.contains(prefix)

    def to_csv_row(self) -> str:
        """Render as a VRP CSV row."""
        return f"AS{self.asn},{self.prefix},{self.effective_max_length}"

    @classmethod
    def from_csv_row(cls, row: str) -> "ROA":
        """Parse a VRP CSV row (``AS`` prefix optional on the ASN)."""
        fields = [field.strip() for field in row.split(",")]
        if len(fields) < 3:
            raise ValueError(f"malformed VRP row: {row!r}")
        asn_text = fields[0].upper()
        if asn_text.startswith("AS"):
            asn_text = asn_text[2:]
        return cls(
            prefix=Prefix.parse(fields[1]),
            asn=int(asn_text),
            max_length=int(fields[2]),
        )


class RoaSet:
    """One RPKI snapshot with covering-prefix indexes."""

    def __init__(self, roas: Iterable[ROA] = ()) -> None:
        self._roas: Set[ROA] = set()
        self._trie: PrefixTrie[Set[ROA]] = PrefixTrie()
        for roa in roas:
            self.add(roa)

    def add(self, roa: ROA) -> None:
        """Insert one ROA (idempotent)."""
        if roa in self._roas:
            return
        self._roas.add(roa)
        bucket = self._trie.exact(roa.prefix)
        if bucket is None:
            bucket = set()
            self._trie.insert(roa.prefix, bucket)
        bucket.add(roa)

    def remove(self, roa: ROA) -> bool:
        """Delete one ROA; returns False if absent."""
        if roa not in self._roas:
            return False
        self._roas.discard(roa)
        bucket = self._trie.exact(roa.prefix)
        if bucket:
            bucket.discard(roa)
        return True

    def covering(self, prefix: Prefix) -> List[ROA]:
        """ROAs whose prefix covers *prefix* (least-specific first)."""
        found: List[ROA] = []
        for _roa_prefix, bucket in self._trie.covering(prefix):
            found.extend(sorted(bucket))
        return found

    def exact(self, prefix: Prefix) -> List[ROA]:
        """ROAs registered at exactly *prefix*."""
        bucket = self._trie.exact(prefix)
        return sorted(bucket) if bucket else []

    def authorized_origins(self, prefix: Prefix) -> FrozenSet[int]:
        """ASNs some covering ROA names for *prefix* (AS0 included)."""
        return frozenset(roa.asn for roa in self.covering(prefix))

    def has_as0(self, prefix: Prefix) -> bool:
        """True when an AS0 ROA covers *prefix*."""
        return any(roa.is_as0 for roa in self.covering(prefix))

    def __len__(self) -> int:
        return len(self._roas)

    def __iter__(self) -> Iterator[ROA]:
        return iter(sorted(self._roas))

    def __contains__(self, roa: ROA) -> bool:
        return roa in self._roas

    # -- VRP CSV ---------------------------------------------------------
    @classmethod
    def from_csv(cls, text: str) -> "RoaSet":
        """Parse a VRP CSV file (header line optional)."""
        roas: List[ROA] = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.lower().startswith(("uri,", "asn,")):
                continue
            roas.append(ROA.from_csv_row(line))
        return cls(roas)

    def to_csv(self) -> str:
        """Serialize to VRP CSV with a header."""
        lines = ["ASN,IP Prefix,Max Length"]
        lines.extend(roa.to_csv_row() for roa in sorted(self._roas))
        return "\n".join(lines) + "\n"
