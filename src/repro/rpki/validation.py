"""RFC 6811 route origin validation against a ROA snapshot."""

from __future__ import annotations

import enum

from ..net import Prefix
from .roa import RoaSet

__all__ = ["ValidationState", "validate_origin"]


class ValidationState(enum.Enum):
    """The three RFC 6811 outcomes."""

    VALID = "valid"
    INVALID = "invalid"
    NOT_FOUND = "not-found"


def validate_origin(
    roas: RoaSet, prefix: Prefix, origin: int
) -> ValidationState:
    """Validate an announced ``(prefix, origin)`` pair.

    * NOT_FOUND — no ROA covers the prefix.
    * VALID — some covering ROA names the origin and its maxLength admits
      the announced length.
    * INVALID — covered, but no ROA authorizes the pair.  AS0 ROAs can
      never authorize anything (RFC 7607), so space covered only by AS0
      is INVALID for every origin — the drop-and-ROA defense of §6.5.
    """
    covering = roas.covering(prefix)
    if not covering:
        return ValidationState.NOT_FOUND
    for roa in covering:
        if roa.authorizes(prefix, origin):
            return ValidationState.VALID
    return ValidationState.INVALID
