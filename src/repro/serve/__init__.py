"""The lease-lookup query service over precomputed inference snapshots.

The batch pipeline produces tables; this subsystem makes them *askable*:
one run is frozen into an immutable :class:`LeaseIndex` snapshot
(:mod:`~repro.serve.index`), served over an asyncio HTTP/JSON API
(:mod:`~repro.serve.http`), hot-swapped atomically between generations
(:mod:`~repro.serve.reload`), and benchmarked by a seeded closed-loop
load generator (:mod:`~repro.serve.loadgen`).  See ``docs/SERVING.md``.
"""

from .http import DEFAULT_CACHE_SIZE, MAX_BULK, LeaseQueryServer
from .index import DeltaLeaseIndex, LeaseIndex
from .loadgen import run_loadgen, validate_serve_run
from .reload import SnapshotManager

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "MAX_BULK",
    "DeltaLeaseIndex",
    "LeaseIndex",
    "LeaseQueryServer",
    "SnapshotManager",
    "run_loadgen",
    "validate_serve_run",
]
