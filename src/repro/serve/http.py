"""The lease-lookup HTTP/JSON API over ``asyncio`` streams (stdlib only).

Endpoints (all responses are JSON unless noted):

* ``GET /v1/prefix/{cidr}`` — exact / longest-prefix answer with the
  covering chain and full classification evidence,
* ``GET /v1/asn/{asn}`` — every leaf originated by the AS,
* ``GET /v1/org/{handle}`` — every leaf held by the organisation,
* ``POST /v1/bulk`` — batched prefix lookups
  (``{"prefixes": [...]}``, at most :data:`MAX_BULK` per call),
* ``GET /v1/stats`` — snapshot, cache, and per-endpoint counters,
* ``GET /healthz`` — liveness plus the published generation,
* ``GET /metrics`` — Prometheus-style text exposition.

Lookup responses are served through a bounded LRU cache keyed by
``(generation, path)`` — a hot-reload implicitly invalidates it because
new generations never match old keys, while the LRU bound evicts stale
generations' entries under pressure.  Per-endpoint request, error, and
latency counters feed ``/v1/stats`` and ``/metrics``.

The server runs on one event loop.  :meth:`LeaseQueryServer.start`
spins that loop on a daemon thread (tests, the load generator);
:meth:`LeaseQueryServer.run_async` serves in the caller's loop
(``repro serve``).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple
from urllib.parse import unquote

from .index import LeaseIndex, parse_asn_text
from .reload import SnapshotManager

__all__ = ["LeaseQueryServer", "DEFAULT_CACHE_SIZE", "MAX_BULK"]

#: LRU response-cache capacity (entries) unless overridden.
DEFAULT_CACHE_SIZE = 1024

#: Largest accepted ``/v1/bulk`` batch.
MAX_BULK = 256

#: Largest accepted request body (bytes).
_MAX_BODY = 1 << 20

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _etag_of(generation: int) -> str:
    """The strong validator for one published generation."""
    return f'"g{generation}"'

Payload = Dict[str, object]


class ResponseCache:
    """A bounded LRU over computed lookup answers."""

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, capacity)
        self._entries: "OrderedDict[Tuple[int, str], Tuple[int, Payload]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple[int, str]) -> Optional[Tuple[int, Payload]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Tuple[int, str], value: Tuple[int, Payload]) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Payload:
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


class EndpointCounters:
    """Request / error / latency tallies per logical endpoint."""

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[str, float]] = {}

    def observe(self, endpoint: str, status: int, elapsed_s: float) -> None:
        entry = self._counters.setdefault(
            endpoint,
            {"requests": 0, "errors": 0, "total_s": 0.0, "max_s": 0.0},
        )
        entry["requests"] += 1
        if status >= 400:
            entry["errors"] += 1
        entry["total_s"] += elapsed_s
        entry["max_s"] = max(entry["max_s"], elapsed_s)

    def as_dict(self) -> Dict[str, Payload]:
        result: Dict[str, Payload] = {}
        for endpoint in sorted(self._counters):
            entry = self._counters[endpoint]
            result[endpoint] = {
                "requests": int(entry["requests"]),
                "errors": int(entry["errors"]),
                "total_ms": round(entry["total_s"] * 1000.0, 3),
                "max_ms": round(entry["max_s"] * 1000.0, 3),
            }
        return result


class LeaseQueryServer:
    """Serves :class:`LeaseIndex` snapshots over HTTP/1.1 (keep-alive)."""

    def __init__(
        self,
        manager: SnapshotManager,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.cache = ResponseCache(cache_size)
        self.counters = EndpointCounters()
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        #: Test hook: when positive, every request sleeps this long
        #: *after* capturing its snapshot — lets tests land a hot-swap
        #: mid-flight deterministically.
        self._snapshot_hold_s = 0.0

    # -- lifecycle (caller's event loop) -----------------------------------
    async def start_async(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    async def run_async(self) -> None:
        """Bind (if needed) and serve until cancelled (``repro serve``)."""
        if self._server is None:
            await self.start_async()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- lifecycle (background thread) -------------------------------------
    def start(self) -> "LeaseQueryServer":
        """Serve on a daemon thread with its own loop; returns self."""
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        self._started.wait(timeout=10)
        if not self._started.is_set():  # pragma: no cover - defensive
            raise RuntimeError("lease query server failed to start")
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self.start_async())
        self._started.set()
        try:
            loop.run_forever()
        finally:
            assert self._server is not None
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Stop the background thread's loop and join it."""
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._thread = None
            self._loop = None

    def __enter__(self) -> "LeaseQueryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    # -- connection handling ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                try:
                    status, payload, content_type, generation = (
                        await self._dispatch(method, target, headers, body)
                    )
                except Exception:  # noqa: BLE001 - request must get an answer
                    status = 500
                    payload = json.dumps(
                        {"error": "internal server error"}
                    ).encode("utf-8")
                    content_type = "application/json"
                    generation = None
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                extra_headers: Dict[str, str] = {}
                if generation is not None:
                    extra_headers["ETag"] = _etag_of(generation)
                    extra_headers["X-Generation"] = str(generation)
                await self._write_response(
                    writer, status, payload, content_type, keep_alive,
                    extra_headers,
                )
                if not keep_alive:
                    break
        # repro-check: ignore[RC106] -- client hangups are routine, not errors
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # the peer is gone; nothing to answer, nothing to log
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            # repro-check: ignore[RC106] -- close-time resets are expected
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One parsed request, or None at end-of-stream."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return "GET", "/__malformed__", {"connection": "close"}, b""
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            header_line = await reader.readline()
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length", "0")
        length = int(length_text) if length_text.isdigit() else 0
        if length:
            if length > _MAX_BODY:
                return method, "/__too_large__", {"connection": "close"}, b""
            body = await reader.readexactly(length)
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {connection}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, str, int]:
        """Route one request: ``(status, body, content type, generation)``.

        The snapshot — and with it the generation stamped into the
        ``ETag``/``X-Generation`` headers — is captured exactly once per
        request, so a delta apply landing mid-flight never tears an
        answer.  A conditional GET whose ``If-None-Match`` names the
        current generation short-circuits to an empty 304 after routing
        resolved a cacheable 200.
        """
        started = time.perf_counter()
        generation, index = self.manager.snapshot()
        if self._snapshot_hold_s > 0:
            await asyncio.sleep(self._snapshot_hold_s)
        path = target.split("?", 1)[0]
        endpoint, status, payload, text = self._route(
            method, path, body, generation, index
        )
        if (
            method == "GET"
            and status == 200
            and headers.get("if-none-match") == _etag_of(generation)
        ):
            status = 304
            rendered = b""
            content_type = "application/json"
        elif text is not None:
            rendered = text.encode("utf-8")
            content_type = "text/plain; version=0.0.4"
        else:
            rendered = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        self.counters.observe(
            endpoint, status, time.perf_counter() - started
        )
        return status, rendered, content_type, generation

    def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        generation: int,
        index: LeaseIndex,
    ) -> Tuple[str, int, Payload, Optional[str]]:
        """``(endpoint, status, json payload, text payload)`` for *path*."""
        if path == "/__malformed__":
            return "other", 400, {"error": "malformed request line"}, None
        if path == "/__too_large__":
            return "other", 413, {"error": "request body too large"}, None
        if path == "/healthz":
            if method != "GET":
                return "health", 405, {"error": "use GET"}, None
            payload = {"status": "ok", "generation": generation}
            return "health", 200, payload, None
        if path == "/metrics":
            return "metrics", 200, {}, self._render_metrics(generation, index)
        if path == "/v1/stats":
            return "stats", 200, self._render_stats(generation, index), None
        if path.startswith("/v1/prefix/"):
            text = unquote(path[len("/v1/prefix/"):])
            status, payload = self._cached(
                generation, path, "prefix",
                lambda: self._answer_prefix(index, generation, text),
            )
            return "prefix", status, payload, None
        if path.startswith("/v1/asn/"):
            text = unquote(path[len("/v1/asn/"):])
            status, payload = self._cached(
                generation, path, "asn",
                lambda: self._answer_asn(index, generation, text),
            )
            return "asn", status, payload, None
        if path.startswith("/v1/org/"):
            text = unquote(path[len("/v1/org/"):])
            status, payload = self._cached(
                generation, path, "org",
                lambda: self._answer_org(index, generation, text),
            )
            return "org", status, payload, None
        if path == "/v1/bulk":
            if method != "POST":
                return "bulk", 405, {"error": "use POST"}, None
            status, payload = self._answer_bulk(index, generation, body)
            return "bulk", status, payload, None
        return "other", 404, {"error": f"no such endpoint: {path}"}, None

    def _cached(
        self,
        generation: int,
        path: str,
        endpoint: str,
        compute,
    ) -> Tuple[int, Payload]:
        key = (generation, path)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        value = compute()
        self.cache.put(key, value)
        return value

    # -- endpoint answers ----------------------------------------------------
    def _answer_prefix(
        self, index: LeaseIndex, generation: int, text: str
    ) -> Tuple[int, Payload]:
        status, payload = index.resolve_text(text)
        payload["generation"] = generation
        return status, payload

    def _answer_asn(
        self, index: LeaseIndex, generation: int, text: str
    ) -> Tuple[int, Payload]:
        asn = parse_asn_text(text)
        if asn is None:
            return 400, {"error": f"bad ASN: {text!r}",
                         "generation": generation}
        listing = index.by_asn(asn)
        if listing is None:
            return 404, {
                "error": "AS originates no classified leaf",
                "asn": asn,
                "generation": generation,
            }
        listing["generation"] = generation
        return 200, listing

    def _answer_org(
        self, index: LeaseIndex, generation: int, text: str
    ) -> Tuple[int, Payload]:
        if not text.strip():
            return 400, {"error": "empty organisation handle",
                         "generation": generation}
        listing = index.by_org(text)
        if listing is None:
            return 404, {
                "error": "organisation holds no classified leaf",
                "org": text,
                "generation": generation,
            }
        listing["generation"] = generation
        return 200, listing

    def _answer_bulk(
        self, index: LeaseIndex, generation: int, body: bytes
    ) -> Tuple[int, Payload]:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body is not valid JSON"}
        prefixes = parsed.get("prefixes") if isinstance(parsed, dict) else None
        if not isinstance(prefixes, list) or not all(
            isinstance(item, str) for item in prefixes
        ):
            return 400, {
                "error": 'expected {"prefixes": ["a.b.c.d/len", ...]}'
            }
        if len(prefixes) > MAX_BULK:
            return 413, {
                "error": f"at most {MAX_BULK} prefixes per bulk call",
                "got": len(prefixes),
            }
        results = []
        for text in prefixes:
            status, payload = self._cached(
                generation,
                "/v1/prefix/" + text,
                "prefix",
                lambda t=text: self._answer_prefix(index, generation, t),
            )
            results.append({"status": status, "result": payload})
        return 200, {"generation": generation, "results": results}

    # -- observability -------------------------------------------------------
    def _render_stats(self, generation: int, index: LeaseIndex) -> Payload:
        return {
            "generation": generation,
            "snapshot": index.stats(),
            "cache": self.cache.stats(),
            "endpoints": self.counters.as_dict(),
        }

    def _render_metrics(self, generation: int, index: LeaseIndex) -> str:
        lines = [
            f"repro_serve_generation {generation}",
            f"repro_serve_snapshot_leaves {len(index)}",
            f"repro_serve_cache_hits_total {self.cache.hits}",
            f"repro_serve_cache_misses_total {self.cache.misses}",
            f"repro_serve_cache_evictions_total {self.cache.evictions}",
        ]
        for endpoint, entry in self.counters.as_dict().items():
            label = f'{{endpoint="{endpoint}"}}'
            lines.append(
                f"repro_serve_requests_total{label} {entry['requests']}"
            )
            lines.append(
                f"repro_serve_request_errors_total{label} {entry['errors']}"
            )
            lines.append(
                f"repro_serve_request_ms_total{label} {entry['total_ms']}"
            )
        return "\n".join(lines) + "\n"
