"""The lease-lookup HTTP/JSON API over ``asyncio`` streams (stdlib only).

Endpoints (all responses are JSON unless noted):

* ``GET /v1/prefix/{cidr}`` — exact / longest-prefix answer with the
  covering chain and full classification evidence,
* ``GET /v1/asn/{asn}`` — every leaf originated by the AS,
* ``GET /v1/org/{handle}`` — every leaf held by the organisation,
* ``POST /v1/bulk`` — batched prefix lookups
  (``{"prefixes": [...]}``, at most :data:`MAX_BULK` per call),
* ``GET /v1/prefix/{cidr}/history`` — the prefix's lease timeline
  (periods, AS0 gaps, lessees — §6.5), when a temporal product is
  mounted,
* ``GET /v1/churn[?rir=]`` — per-RIR lease-churn tallies,
* ``GET /v1/stats`` — snapshot, cache, and per-endpoint counters,
* ``GET /healthz`` — liveness plus the published generation,
* ``GET /metrics`` — Prometheus-style text exposition.

With a :class:`~repro.temporal.TemporalProduct` mounted, the three
lookup endpoints accept ``?at=<unix timestamp>`` and answer from the
delta-encoded historical view live at that instant; the response (and
its ``ETag``) then carries the resolved epoch — ``"g{gen}@e{epoch}"``
instead of ``"g{gen}"`` — so conditional GETs stay correct across both
axes of change.  Query parameters are validated strictly: unknown
names, non-integer / negative values, and out-of-range ``at``/``limit``
are 400s, never silently ignored.

Lookup responses are served through a bounded LRU cache keyed by
``(generation, canonical target)`` — the canonical target includes the
validated query parameters, so historical answers cache independently
of live ones.  A hot-reload implicitly invalidates the cache because
new generations never match old keys, while the LRU bound evicts stale
generations' entries under pressure.  Per-endpoint request, error, and
latency counters feed ``/v1/stats`` and ``/metrics``.

The server runs on one event loop.  :meth:`LeaseQueryServer.start`
spins that loop on a daemon thread (tests, the load generator);
:meth:`LeaseQueryServer.run_async` serves in the caller's loop
(``repro serve``).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional, Tuple
from urllib.parse import unquote

from ..net import AddressError, Prefix
from ..temporal import TemporalProduct
from .index import MAX_LISTING, LeaseIndex, parse_asn_text
from .reload import SnapshotManager

__all__ = ["LeaseQueryServer", "DEFAULT_CACHE_SIZE", "MAX_BULK"]

#: LRU response-cache capacity (entries) unless overridden.
DEFAULT_CACHE_SIZE = 1024

#: Largest accepted ``/v1/bulk`` batch.
MAX_BULK = 256

#: Largest accepted request body (bytes).
_MAX_BODY = 1 << 20

_REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def _etag_of(generation: int, epoch: Optional[int] = None) -> str:
    """The strong validator: generation, plus the epoch for ``?at=``."""
    if epoch is None:
        return f'"g{generation}"'
    return f'"g{generation}@e{epoch}"'

Payload = Dict[str, object]

#: Query parameters each query-accepting endpoint understands; anything
#: else on the target is a 400, never silently dropped.
_ALLOWED_PARAMS = {
    "prefix": frozenset({"at"}),
    "asn": frozenset({"at", "limit"}),
    "org": frozenset({"at", "limit"}),
    "churn": frozenset({"rir"}),
}


def _parse_query(
    query: str, allowed: frozenset
) -> Tuple[Optional[Dict[str, str]], Optional[str]]:
    """Parse ``a=1&b=2`` strictly: ``(params, error)``."""
    params: Dict[str, str] = {}
    if not query:
        return params, None
    for part in query.split("&"):
        if not part:
            continue
        name, _, value = part.partition("=")
        name = unquote(name)
        if name not in allowed:
            return None, f"unknown query parameter: {name!r}"
        if name in params:
            return None, f"duplicate query parameter: {name!r}"
        params[name] = unquote(value)
    return params, None


def _parse_int_param(
    params: Dict[str, str], name: str
) -> Tuple[Optional[int], Optional[str]]:
    """A non-negative integer parameter: ``(value, error)``."""
    text = params.get(name)
    if text is None:
        return None, None
    stripped = text.strip()
    digits = stripped[1:] if stripped[:1] == "-" else stripped
    if not digits.isdigit():
        return None, f"{name} must be an integer, got {text!r}"
    value = int(stripped)
    if value < 0:
        return None, f"{name} must be non-negative, got {value}"
    return value, None


class ResponseCache:
    """A bounded LRU over computed lookup answers."""

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, capacity)
        self._entries: "OrderedDict[Tuple[int, str], Tuple[int, Payload]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Tuple[int, str]) -> Optional[Tuple[int, Payload]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Tuple[int, str], value: Tuple[int, Payload]) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Payload:
        total = self.hits + self.misses
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }


class EndpointCounters:
    """Request / error / latency tallies per logical endpoint."""

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[str, float]] = {}

    def observe(self, endpoint: str, status: int, elapsed_s: float) -> None:
        entry = self._counters.setdefault(
            endpoint,
            {"requests": 0, "errors": 0, "total_s": 0.0, "max_s": 0.0},
        )
        entry["requests"] += 1
        if status >= 400:
            entry["errors"] += 1
        entry["total_s"] += elapsed_s
        entry["max_s"] = max(entry["max_s"], elapsed_s)

    def as_dict(self) -> Dict[str, Payload]:
        result: Dict[str, Payload] = {}
        for endpoint in sorted(self._counters):
            entry = self._counters[endpoint]
            result[endpoint] = {
                "requests": int(entry["requests"]),
                "errors": int(entry["errors"]),
                "total_ms": round(entry["total_s"] * 1000.0, 3),
                "max_ms": round(entry["max_s"] * 1000.0, 3),
            }
        return result


class LeaseQueryServer:
    """Serves :class:`LeaseIndex` snapshots over HTTP/1.1 (keep-alive)."""

    def __init__(
        self,
        manager: SnapshotManager,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = DEFAULT_CACHE_SIZE,
        temporal: Optional[TemporalProduct] = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.temporal = temporal
        self.cache = ResponseCache(cache_size)
        self.counters = EndpointCounters()
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        #: Test hook: when positive, every request sleeps this long
        #: *after* capturing its snapshot — lets tests land a hot-swap
        #: mid-flight deterministically.
        self._snapshot_hold_s = 0.0

    # -- lifecycle (caller's event loop) -----------------------------------
    async def start_async(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        # repro-check: ignore[RC115] -- startup-only write: runs once before the listening socket exists, so no handler can race it
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        # repro-check: ignore[RC115] -- startup-only write: the address is published exactly once before serving begins
        self._address = (sockname[0], sockname[1])
        return self._address

    async def run_async(self) -> None:
        """Bind (if needed) and serve until cancelled (``repro serve``)."""
        if self._server is None:
            await self.start_async()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- lifecycle (background thread) -------------------------------------
    def start(self) -> "LeaseQueryServer":
        """Serve on a daemon thread with its own loop; returns self."""
        self._thread = threading.Thread(target=self._thread_main, daemon=True)
        self._thread.start()
        self._started.wait(timeout=10)
        if not self._started.is_set():  # pragma: no cover - defensive
            raise RuntimeError("lease query server failed to start")
        return self

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        loop.run_until_complete(self.start_async())
        self._started.set()
        try:
            loop.run_forever()
        finally:
            assert self._server is not None
            self._server.close()
            loop.run_until_complete(self._server.wait_closed())
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self) -> None:
        """Stop the background thread's loop and join it."""
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            self._thread = None
            self._loop = None

    def __enter__(self) -> "LeaseQueryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        if self._address is None:
            raise RuntimeError("server not started")
        return self._address

    # -- connection handling ------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body = request
                try:
                    status, payload, content_type, validator = (
                        await self._dispatch(method, target, headers, body)
                    )
                except Exception:  # noqa: BLE001 - request must get an answer
                    status = 500
                    payload = json.dumps(
                        {"error": "internal server error"}
                    ).encode("utf-8")
                    content_type = "application/json"
                    validator = None
                keep_alive = (
                    headers.get("connection", "keep-alive").lower() != "close"
                )
                extra_headers: Dict[str, str] = {}
                if validator is not None:
                    generation, epoch = validator
                    extra_headers["ETag"] = _etag_of(generation, epoch)
                    extra_headers["X-Generation"] = str(generation)
                    if epoch is not None:
                        extra_headers["X-Epoch"] = str(epoch)
                await self._write_response(
                    writer, status, payload, content_type, keep_alive,
                    extra_headers,
                )
                if not keep_alive:
                    break
        # repro-check: ignore[RC106] -- client hangups are routine, not errors
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # the peer is gone; nothing to answer, nothing to log
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            # repro-check: ignore[RC106] -- close-time resets are expected
            except ConnectionError:  # pragma: no cover - platform dependent
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One parsed request, or None at end-of-stream."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return "GET", "/__malformed__", {"connection": "close"}, b""
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            header_line = await reader.readline()
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length", "0")
        length = int(length_text) if length_text.isdigit() else 0
        if length:
            if length > _MAX_BODY:
                return method, "/__too_large__", {"connection": "close"}, b""
            body = await reader.readexactly(length)
        return method, target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        keep_alive: bool,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {connection}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = "\r\n".join(lines) + "\r\n\r\n"
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- routing -------------------------------------------------------------
    async def _dispatch(
        self, method: str, target: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, bytes, str, Tuple[int, Optional[int]]]:
        """Route one request: ``(status, body, content type, validator)``.

        The snapshot — and with it the generation stamped into the
        ``ETag``/``X-Generation`` headers — is captured exactly once per
        request, so a delta apply landing mid-flight never tears an
        answer.  The returned validator is ``(generation, epoch)``;
        epoch is None except for ``?at=`` answers, where it joins the
        ETag as ``"g{gen}@e{epoch}"``.  A conditional GET whose
        ``If-None-Match`` names the current validator short-circuits to
        an empty 304 after routing resolved a cacheable 200.
        """
        started = time.perf_counter()
        generation, index = self.manager.snapshot()
        if self._snapshot_hold_s > 0:
            await asyncio.sleep(self._snapshot_hold_s)
        path, _, query = target.partition("?")
        endpoint, status, payload, text, epoch = self._route(
            method, path, query, body, generation, index
        )
        if (
            method == "GET"
            and status == 200
            and headers.get("if-none-match") == _etag_of(generation, epoch)
        ):
            status = 304
            rendered = b""
            content_type = "application/json"
        elif text is not None:
            rendered = text.encode("utf-8")
            content_type = "text/plain; version=0.0.4"
        else:
            rendered = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        self.counters.observe(
            endpoint, status, time.perf_counter() - started
        )
        return status, rendered, content_type, (generation, epoch)

    def _route(
        self,
        method: str,
        path: str,
        query: str,
        body: bytes,
        generation: int,
        index: LeaseIndex,
    ) -> Tuple[str, int, Payload, Optional[str], Optional[int]]:
        """``(endpoint, status, json, text, epoch)`` for one target."""
        if path == "/__malformed__":
            return "other", 400, {"error": "malformed request line"}, None, None
        if path == "/__too_large__":
            return "other", 413, {"error": "request body too large"}, None, None
        if path == "/healthz":
            if method != "GET":
                return "health", 405, {"error": "use GET"}, None, None
            payload = {"status": "ok", "generation": generation}
            return "health", 200, payload, None, None
        if path == "/metrics":
            text = self._render_metrics(generation, index)
            return "metrics", 200, {}, text, None
        if path == "/v1/stats":
            payload = self._render_stats(generation, index)
            return "stats", 200, payload, None, None
        if path == "/v1/churn":
            status, payload = self._answer_churn(generation, query)
            return "churn", status, payload, None, None
        if path.startswith("/v1/prefix/") and path.endswith("/history"):
            text = unquote(path[len("/v1/prefix/"):-len("/history")])
            if query:
                return (
                    "history", 400,
                    self._bad_query("history takes no query parameters",
                                    generation),
                    None, None,
                )
            status, payload = self._cached(
                generation, path, "history",
                lambda: self._answer_history(generation, text),
            )
            return "history", status, payload, None, None
        if path.startswith("/v1/prefix/"):
            text = unquote(path[len("/v1/prefix/"):])
            return self._lookup(
                "prefix", path, query, generation, index,
                lambda view: lambda: self._answer_prefix(
                    view, generation, text
                ),
            )
        if path.startswith("/v1/asn/"):
            text = unquote(path[len("/v1/asn/"):])
            return self._lookup(
                "asn", path, query, generation, index,
                lambda view, limit=None: lambda: self._answer_asn(
                    view, generation, text, limit
                ),
            )
        if path.startswith("/v1/org/"):
            text = unquote(path[len("/v1/org/"):])
            return self._lookup(
                "org", path, query, generation, index,
                lambda view, limit=None: lambda: self._answer_org(
                    view, generation, text, limit
                ),
            )
        if path == "/v1/bulk":
            if method != "POST":
                return "bulk", 405, {"error": "use POST"}, None, None
            if query:
                return (
                    "bulk", 400,
                    self._bad_query("bulk takes no query parameters",
                                    generation),
                    None, None,
                )
            status, payload = self._answer_bulk(index, generation, body)
            return "bulk", status, payload, None, None
        return "other", 404, {"error": f"no such endpoint: {path}"}, None, None

    def _bad_query(self, message: str, generation: int) -> Payload:
        return {"error": message, "generation": generation}

    def _lookup(
        self,
        endpoint: str,
        path: str,
        query: str,
        generation: int,
        index: LeaseIndex,
        make_compute,
    ) -> Tuple[str, int, Payload, Optional[str], Optional[int]]:
        """One validated live-or-historical lookup on an index endpoint.

        Validates the query parameters strictly (unknown name, bad
        integer, out-of-range value → 400), resolves ``?at=`` to an
        epoch view when given, and serves through the LRU under a
        canonical cache target that includes the validated parameters.
        """
        params, error = _parse_query(query, _ALLOWED_PARAMS[endpoint])
        if params is None:
            assert error is not None
            return (
                endpoint, 400, self._bad_query(error, generation), None, None,
            )
        at, error = _parse_int_param(params, "at")
        if error is not None:
            return (
                endpoint, 400, self._bad_query(error, generation), None, None,
            )
        limit, error = _parse_int_param(params, "limit")
        if error is not None:
            return (
                endpoint, 400, self._bad_query(error, generation), None, None,
            )
        if limit is not None and not 1 <= limit <= MAX_LISTING:
            return (
                endpoint, 400,
                self._bad_query(
                    f"limit must be between 1 and {MAX_LISTING}, got {limit}",
                    generation,
                ),
                None, None,
            )
        view = index
        epoch: Optional[int] = None
        if at is not None:
            if self.temporal is None:
                return (
                    endpoint, 400,
                    self._bad_query(
                        "no temporal history mounted; ?at= unavailable",
                        generation,
                    ),
                    None, None,
                )
            located = self.temporal.index.index_at(at)
            if located is None:
                first = self.temporal.epoch_timestamps()[0]
                return (
                    endpoint, 400,
                    self._bad_query(
                        f"at={at} precedes recorded history "
                        f"(first epoch at {first})",
                        generation,
                    ),
                    None, None,
                )
            epoch, view = located
        cache_target = path
        if at is not None:
            cache_target += f"?at_epoch={epoch}"
        if limit is not None:
            cache_target += f"&limit={limit}" if "?" in cache_target else (
                f"?limit={limit}"
            )
        compute = (
            make_compute(view) if endpoint == "prefix"
            else make_compute(view, limit)
        )
        status, payload = self._cached(
            generation, cache_target, endpoint, compute
        )
        if epoch is not None and "epoch" not in payload:
            payload = dict(payload)
            payload["epoch"] = epoch
            payload["at"] = at
        return endpoint, status, payload, None, epoch

    def _cached(
        self,
        generation: int,
        path: str,
        endpoint: str,
        compute,
    ) -> Tuple[int, Payload]:
        key = (generation, path)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        value = compute()
        self.cache.put(key, value)
        return value

    # -- endpoint answers ----------------------------------------------------
    def _answer_prefix(
        self, index: LeaseIndex, generation: int, text: str
    ) -> Tuple[int, Payload]:
        status, payload = index.resolve_text(text)
        payload["generation"] = generation
        return status, payload

    def _answer_asn(
        self,
        index: LeaseIndex,
        generation: int,
        text: str,
        limit: Optional[int] = None,
    ) -> Tuple[int, Payload]:
        asn = parse_asn_text(text)
        if asn is None:
            return 400, {"error": f"bad ASN: {text!r}",
                         "generation": generation}
        listing = index.by_asn(asn, limit=limit)
        if listing is None:
            return 404, {
                "error": "AS originates no classified leaf",
                "asn": asn,
                "generation": generation,
            }
        listing["generation"] = generation
        return 200, listing

    def _answer_org(
        self,
        index: LeaseIndex,
        generation: int,
        text: str,
        limit: Optional[int] = None,
    ) -> Tuple[int, Payload]:
        if not text.strip():
            return 400, {"error": "empty organisation handle",
                         "generation": generation}
        listing = index.by_org(text, limit=limit)
        if listing is None:
            return 404, {
                "error": "organisation holds no classified leaf",
                "org": text,
                "generation": generation,
            }
        listing["generation"] = generation
        return 200, listing

    def _answer_bulk(
        self, index: LeaseIndex, generation: int, body: bytes
    ) -> Tuple[int, Payload]:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            return 400, {"error": "body is not valid JSON"}
        prefixes = parsed.get("prefixes") if isinstance(parsed, dict) else None
        if not isinstance(prefixes, list) or not all(
            isinstance(item, str) for item in prefixes
        ):
            return 400, {
                "error": 'expected {"prefixes": ["a.b.c.d/len", ...]}'
            }
        if len(prefixes) > MAX_BULK:
            return 413, {
                "error": f"at most {MAX_BULK} prefixes per bulk call",
                "got": len(prefixes),
            }
        results = []
        for text in prefixes:
            status, payload = self._cached(
                generation,
                "/v1/prefix/" + text,
                "prefix",
                lambda t=text: self._answer_prefix(index, generation, t),
            )
            results.append({"status": status, "result": payload})
        return 200, {"generation": generation, "results": results}

    def _answer_history(
        self, generation: int, text: str
    ) -> Tuple[int, Payload]:
        """``/v1/prefix/{p}/history``: the prefix's lease timeline."""
        if self.temporal is None:
            return 400, {"error": "no temporal history mounted",
                         "generation": generation}
        try:
            prefix = Prefix.parse(text)
        except AddressError:
            return 400, {"error": f"bad prefix: {text!r}",
                         "generation": generation}
        payload = self.temporal.timelines.history_payload(prefix)
        if payload is None:
            return 404, {
                "error": "no timeline tracked for prefix",
                "query": str(prefix),
                "generation": generation,
            }
        payload["generation"] = generation
        return 200, payload

    def _answer_churn(
        self, generation: int, query: str
    ) -> Tuple[int, Payload]:
        """``/v1/churn[?rir=]``: per-RIR lease-churn tallies."""
        if self.temporal is None:
            return 400, {"error": "no temporal history mounted",
                         "generation": generation}
        params, error = _parse_query(query, _ALLOWED_PARAMS["churn"])
        if params is None:
            assert error is not None
            return 400, self._bad_query(error, generation)
        rir = params.get("rir")
        if rir is not None and not rir.strip():
            return 400, self._bad_query("empty rir parameter", generation)
        payload = self.temporal.timelines.churn_payload(rir)
        if payload is None:
            return 404, {
                "error": f"no timelines for RIR {rir!r}",
                "rirs": self.temporal.timelines.rirs(),
                "generation": generation,
            }
        payload["generation"] = generation
        return 200, payload

    # -- observability -------------------------------------------------------
    def _render_stats(self, generation: int, index: LeaseIndex) -> Payload:
        payload: Payload = {
            "generation": generation,
            "snapshot": index.stats(),
            "cache": self.cache.stats(),
            "endpoints": self.counters.as_dict(),
        }
        if self.temporal is not None:
            payload["temporal"] = self.temporal.stats()
        return payload

    def _render_metrics(self, generation: int, index: LeaseIndex) -> str:
        lines = [
            f"repro_serve_generation {generation}",
            f"repro_serve_snapshot_leaves {len(index)}",
            f"repro_serve_cache_hits_total {self.cache.hits}",
            f"repro_serve_cache_misses_total {self.cache.misses}",
            f"repro_serve_cache_evictions_total {self.cache.evictions}",
        ]
        if self.temporal is not None:
            lines.append(
                f"repro_serve_temporal_epochs {self.temporal.epochs}"
            )
        for endpoint, entry in self.counters.as_dict().items():
            label = f'{{endpoint="{endpoint}"}}'
            lines.append(
                f"repro_serve_requests_total{label} {entry['requests']}"
            )
            lines.append(
                f"repro_serve_request_errors_total{label} {entry['errors']}"
            )
            lines.append(
                f"repro_serve_request_ms_total{label} {entry['total_ms']}"
            )
        return "\n".join(lines) + "\n"
