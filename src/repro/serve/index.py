"""Compatibility shim: the lease snapshot types moved to core.

:class:`~repro.core.leaseindex.LeaseIndex` started life here, but the
time-travel subsystem (:mod:`repro.temporal`) also builds on it and the
layer map forbids ``temporal`` → ``serve`` imports, so the snapshot
machinery now lives in :mod:`repro.core.leaseindex`.  Serving code and
existing callers keep importing from this module unchanged.
"""

from __future__ import annotations

from ..core.leaseindex import (
    MAX_LISTING,
    DeltaLeaseIndex,
    LeaseIndex,
    parse_asn_text,
)

__all__ = ["DeltaLeaseIndex", "LeaseIndex", "MAX_LISTING", "parse_asn_text"]
