"""Closed-loop load generator for the lease-lookup service.

``repro loadgen`` self-hosts: it builds an index, starts a
:class:`~repro.serve.http.LeaseQueryServer` on an ephemeral port, and
drives it with *concurrency* closed-loop clients — each waits for its
response before issuing the next request, so the measured latency is
honest service time, not queueing backlog from an open-loop firehose.

The query mix is seeded and deterministic: every client owns a
``random.Random`` derived from the run seed, drawing from the same
weighted mix —

* **hot prefixes** (a small fixed pool, exercising the LRU cache),
* cold prefix lookups across the whole snapshot,
* deliberate misses (a prefix no classified leaf covers),
* ASN and organisation lookups,
* bulk batches, and
* ``/v1/stats`` polls.

Results — throughput, client-side latency percentiles per query kind,
and the server's own cache/endpoint counters — are appended to the
``BENCH_serve.json`` trajectory in the bench schema-v2 format, next to
``BENCH_pipeline.json``.
"""

from __future__ import annotations

import asyncio
import json
import platform
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..bench import _cpu_count
from ..net import Prefix
from .http import DEFAULT_CACHE_SIZE, LeaseQueryServer
from .index import LeaseIndex
from .reload import SnapshotManager

__all__ = [
    "SERVE_SCHEMA_VERSION",
    "run_loadgen",
    "validate_serve_run",
]

#: Version stamp of one ``BENCH_serve.json`` run payload.
SERVE_SCHEMA_VERSION = 2

#: Hot-pool size: repeated queries that must produce LRU cache hits.
_HOT_POOL = 8

#: Per-bulk-call batch size used by the generator.
_BULK_BATCH = 16

#: ``(kind, cumulative weight)`` — the deterministic query mix.
_MIX: Tuple[Tuple[str, float], ...] = (
    ("prefix_hot", 0.40),
    ("prefix", 0.60),
    ("miss", 0.70),
    ("asn", 0.80),
    ("org", 0.90),
    ("bulk", 0.95),
    ("stats", 1.00),
)

#: Expected status per query kind; anything else counts as an error.
_EXPECTED_STATUS = {
    "prefix_hot": 200,
    "prefix": 200,
    "miss": 404,
    "asn": 200,
    "org": 200,
    "bulk": 200,
    "stats": 200,
}


class _Workload:
    """Deterministic request factory over one snapshot's contents."""

    def __init__(self, index: LeaseIndex, seed: int) -> None:
        self.prefixes = [str(prefix) for prefix in index.prefixes()]
        self.asns = [str(asn) for asn in index.asns()]
        self.orgs = index.orgs()
        if not self.prefixes:
            raise ValueError("cannot generate load for an empty index")
        chooser = random.Random(seed)
        pool = list(self.prefixes)
        chooser.shuffle(pool)
        self.hot = pool[:_HOT_POOL]
        self.miss = self._find_miss(index)

    @staticmethod
    def _find_miss(index: LeaseIndex) -> str:
        """A prefix no classified leaf covers (404 by construction)."""
        for candidate in ("240.0.0.0/24", "0.0.0.0/32", "255.255.255.0/30"):
            if index.resolve(Prefix.parse(candidate)) is None:
                return candidate
        raise ValueError(
            "index covers every miss candidate"
        )  # pragma: no cover - needs /0-scale coverage

    def next_request(
        self, rng: random.Random
    ) -> Tuple[str, str, str, Optional[bytes]]:
        """One ``(kind, method, target, body)`` draw from the mix."""
        roll = rng.random()
        kind = _MIX[-1][0]
        for name, ceiling in _MIX:
            if roll < ceiling:
                kind = name
                break
        if kind == "prefix_hot":
            return kind, "GET", "/v1/prefix/" + rng.choice(self.hot), None
        if kind == "prefix":
            return kind, "GET", "/v1/prefix/" + rng.choice(self.prefixes), None
        if kind == "miss":
            return kind, "GET", "/v1/prefix/" + self.miss, None
        if kind == "asn" and self.asns:
            return kind, "GET", "/v1/asn/" + rng.choice(self.asns), None
        if kind == "org" and self.orgs:
            return kind, "GET", "/v1/org/" + rng.choice(self.orgs), None
        if kind == "bulk":
            batch = [
                rng.choice(self.prefixes) for _ in range(_BULK_BATCH)
            ]
            body = json.dumps({"prefixes": batch}).encode("utf-8")
            return kind, "POST", "/v1/bulk", body
        if kind == "stats":
            return kind, "GET", "/v1/stats", None
        # asn/org fallback when the snapshot has no such entries.
        return (
            "prefix_hot", "GET", "/v1/prefix/" + rng.choice(self.hot), None,
        )


async def _http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    target: str,
    body: Optional[bytes],
) -> Tuple[int, bytes]:
    """One keep-alive request/response on an open connection."""
    payload = body or b""
    head = (
        f"{method} {target} HTTP/1.1\r\n"
        "Host: loadgen\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: keep-alive\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    response = await reader.readexactly(length) if length else b""
    return status, response


async def _fetch_json(
    host: str, port: int, target: str
) -> Dict[str, object]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        _status, body = await _http_request(reader, writer, "GET", target, None)
    finally:
        writer.close()
    return json.loads(body.decode("utf-8"))


Sample = Tuple[str, int, float]


async def _worker(
    host: str,
    port: int,
    workload: _Workload,
    rng: random.Random,
    stop: "asyncio.Event",
    budget: Optional[List[int]],
    samples: List[Sample],
) -> None:
    """One closed-loop client: request, await, record, repeat."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        while not stop.is_set():
            if budget is not None:
                if budget[0] <= 0:
                    break
                budget[0] -= 1
            kind, method, target, body = workload.next_request(rng)
            started = time.perf_counter()
            status, _body = await _http_request(
                reader, writer, method, target, body
            )
            samples.append((kind, status, time.perf_counter() - started))
    finally:
        writer.close()


async def _drive(
    host: str,
    port: int,
    workload: _Workload,
    duration_s: float,
    requests: Optional[int],
    seed: int,
    concurrency: int,
) -> Tuple[List[Sample], float, Dict[str, object]]:
    """Run the workers; returns samples, wall time, and server stats."""
    samples: List[Sample] = []
    stop = asyncio.Event()
    budget = [requests] if requests is not None else None
    workers = [
        asyncio.ensure_future(
            _worker(
                host,
                port,
                workload,
                random.Random(seed * 1000 + lane),
                stop,
                budget,
                samples,
            )
        )
        for lane in range(max(1, concurrency))
    ]
    started = time.perf_counter()
    if requests is None:
        await asyncio.sleep(duration_s)
        stop.set()
    await asyncio.gather(*workers)
    wall = time.perf_counter() - started
    server_stats = await _fetch_json(host, port, "/v1/stats")
    return samples, wall, server_stats


def _percentile(sorted_values: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile over pre-sorted values (empty -> 0)."""
    if not sorted_values:
        return 0.0
    rank = round(quantile * (len(sorted_values) - 1))
    return sorted_values[int(rank)]


def _latency_summary(latencies_s: List[float]) -> Dict[str, float]:
    values = sorted(latencies_s)
    count = len(values)
    return {
        "mean": round(sum(values) / count * 1000.0, 3) if count else 0.0,
        "p50": round(_percentile(values, 0.50) * 1000.0, 3),
        "p90": round(_percentile(values, 0.90) * 1000.0, 3),
        "p99": round(_percentile(values, 0.99) * 1000.0, 3),
        "max": round(values[-1] * 1000.0, 3) if count else 0.0,
    }


def run_loadgen(
    index: LeaseIndex,
    duration_s: float = 5.0,
    requests: Optional[int] = None,
    seed: int = 7,
    concurrency: int = 4,
    cache_size: int = DEFAULT_CACHE_SIZE,
    world: str = "small",
) -> Dict[str, object]:
    """Self-host *index*, drive it, and return one bench run payload.

    ``requests`` bounds the run by request count (deterministic volume);
    otherwise ``duration_s`` bounds it by wall time.  ``world`` is
    provenance only — it names the snapshot's source in the record.
    """
    manager = SnapshotManager(index)
    server = LeaseQueryServer(manager, cache_size=cache_size)
    workload = _Workload(index, seed)
    with server:
        host, port = server.address
        samples, wall, server_stats = asyncio.run(
            _drive(
                host, port, workload, duration_s, requests, seed, concurrency
            )
        )

    by_kind: Dict[str, List[Sample]] = {}
    for sample in samples:
        by_kind.setdefault(sample[0], []).append(sample)
    errors = sum(
        1
        for kind, status, _latency in samples
        if status != _EXPECTED_STATUS[kind]
    )
    kinds: Dict[str, object] = {}
    for kind in sorted(by_kind):
        rows = by_kind[kind]
        kind_latency = _latency_summary([row[2] for row in rows])
        kinds[kind] = {
            "requests": len(rows),
            "errors": sum(
                1 for row in rows if row[1] != _EXPECTED_STATUS[kind]
            ),
            "p50_ms": kind_latency["p50"],
            "p99_ms": kind_latency["p99"],
        }

    return {
        "schema": {"name": "BENCH_serve", "version": SERVE_SCHEMA_VERSION},
        "config": {
            "seed": seed,
            "duration_s": duration_s,
            "requests": requests,
            "concurrency": max(1, concurrency),
            "cache_size": cache_size,
            "world": world,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpus": _cpu_count(),
        },
        "totals": {
            "requests": len(samples),
            "errors": errors,
            "wall_s": round(wall, 4),
            "req_per_s": round(len(samples) / wall, 1) if wall else 0.0,
        },
        "latency_ms": _latency_summary([row[2] for row in samples]),
        "kinds": kinds,
        "server": {
            "generation": server_stats["generation"],
            "cache": server_stats["cache"],
            "endpoints": server_stats["endpoints"],
        },
    }


def validate_serve_run(run: object) -> List[str]:
    """Structural validation of one ``BENCH_serve.json`` run record.

    Returns a list of problems (empty when the record is schema-valid);
    the CI smoke job and the tests gate on it.
    """
    problems: List[str] = []

    def require(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    if not isinstance(run, dict):
        return ["run record is not an object"]
    schema = run.get("schema")
    require(
        isinstance(schema, dict)
        and schema.get("name") == "BENCH_serve"
        and schema.get("version") == SERVE_SCHEMA_VERSION,
        "schema stamp missing or wrong "
        f"(want BENCH_serve v{SERVE_SCHEMA_VERSION})",
    )
    for section in ("config", "host", "totals", "latency_ms", "kinds",
                    "server"):
        require(isinstance(run.get(section), dict),
                f"missing section: {section}")
    totals = run.get("totals")
    if isinstance(totals, dict):
        for key in ("requests", "errors"):
            require(
                isinstance(totals.get(key), int) and totals[key] >= 0,
                f"totals.{key} must be a non-negative integer",
            )
        for key in ("wall_s", "req_per_s"):
            require(
                isinstance(totals.get(key), (int, float))
                and totals[key] >= 0,
                f"totals.{key} must be a non-negative number",
            )
    latency = run.get("latency_ms")
    if isinstance(latency, dict):
        for key in ("mean", "p50", "p90", "p99", "max"):
            require(
                isinstance(latency.get(key), (int, float))
                and latency[key] >= 0,
                f"latency_ms.{key} must be a non-negative number",
            )
        if not problems:
            require(
                latency["p50"] <= latency["p99"] <= latency["max"],
                "latency percentiles must be ordered p50 <= p99 <= max",
            )
    server = run.get("server")
    if isinstance(server, dict):
        require(
            isinstance(server.get("generation"), int)
            and server["generation"] >= 1,
            "server.generation must be a positive integer",
        )
        cache = server.get("cache")
        require(isinstance(cache, dict), "missing server.cache")
        if isinstance(cache, dict):
            for key in ("hits", "misses", "evictions", "size", "capacity"):
                require(
                    isinstance(cache.get(key), int) and cache[key] >= 0,
                    f"server.cache.{key} must be a non-negative integer",
                )
    return problems
