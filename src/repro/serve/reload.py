"""Atomic hot-swap of :class:`~repro.serve.index.LeaseIndex` snapshots.

The serving layer never mutates an index in place.  A new snapshot is
built **off the event loop** (in a worker thread — index construction
is pure CPU over immutable inputs), then :meth:`SnapshotManager.swap`
publishes it by replacing a single ``(generation, index)`` tuple
reference.  Readers capture that tuple once per request, so

* a request that started on generation *n* finishes on generation *n*
  even if a swap lands mid-flight — nothing is dropped or torn, and
* the swap itself is wait-free for readers; only concurrent swappers
  serialize on a lock (to keep generation numbers strictly increasing).

Generation numbers start at 1 for the first snapshot and are surfaced
in every ``/v1/stats`` and ``/healthz`` response so clients can detect
a reload.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Optional, Tuple

from .index import LeaseIndex

__all__ = ["SnapshotManager"]


class SnapshotManager:
    """Publishes immutable snapshots to readers, one generation at a time."""

    def __init__(self, initial: Optional[LeaseIndex] = None) -> None:
        self._lock = threading.Lock()
        self._current: Optional[Tuple[int, LeaseIndex]] = None
        self._generation = 0
        if initial is not None:
            self.swap(initial)

    # -- read side ---------------------------------------------------------
    def snapshot(self) -> Tuple[int, LeaseIndex]:
        """The current ``(generation, index)`` pair, captured atomically.

        Callers must hold on to the returned pair for the duration of
        one request instead of re-reading — that is what makes a
        mid-request swap invisible.
        """
        current = self._current
        if current is None:
            raise RuntimeError(
                "SnapshotManager has no snapshot yet; swap() one in first"
            )
        return current

    @property
    def generation(self) -> int:
        """The generation of the published snapshot (0 before the first)."""
        return self._generation

    # -- write side --------------------------------------------------------
    def swap(self, index: LeaseIndex) -> int:
        """Publish *index* as the new snapshot; returns its generation."""
        with self._lock:
            self._generation += 1
            self._current = (self._generation, index)
            return self._generation

    def apply_updates(
        self, updater: Callable[[LeaseIndex], LeaseIndex]
    ) -> int:
        """Publish a delta generation derived from the current snapshot.

        *updater* receives the published index and returns the patched
        one (typically :meth:`LeaseIndex.with_updates`).  It runs
        **inside** the swap lock so concurrent delta applies serialize —
        each updater sees its predecessor's output, generations stay
        strictly increasing, and no burst's patch is lost.  Readers stay
        wait-free throughout: in-flight requests keep the pair they
        captured.  Requires a published snapshot.
        """
        with self._lock:
            if self._current is None:
                raise RuntimeError(
                    "SnapshotManager has no snapshot yet; swap() one in "
                    "first"
                )
            index = updater(self._current[1])
            self._generation += 1
            self._current = (self._generation, index)
            return self._generation

    def reload_now(self, builder: Callable[[], LeaseIndex]) -> int:
        """Build synchronously (blocking the caller) and swap."""
        return self.swap(builder())

    async def reload(self, builder: Callable[[], LeaseIndex]) -> int:
        """Build the next snapshot off-thread, then swap it in.

        The event loop keeps serving the old generation while *builder*
        runs; the swap is a single reference replacement.
        """
        index = await asyncio.to_thread(builder)
        return self.swap(index)
