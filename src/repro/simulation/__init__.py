"""Synthetic-Internet generator: scenarios, ground truth, and the world."""

from .geo import build_geo_databases
from .groundtruth import GroundTruth, TruthEntry, TruthKind
from .irr import build_route_registry
from .scenario import (
    BENCH_SIZES,
    DEFAULT_BENCH_SIZES,
    MegaHolder,
    RegionSpec,
    Scenario,
    bench_world,
    internet_world,
    paper_world,
    small_world,
)
from .evolution import (
    DEFAULT_EPOCH_INTERVAL_S,
    WorldEvolution,
    evolve_world,
)
from .stream import (
    DEFAULT_STREAM_START,
    bursts_from_replay,
    render_replay_log,
    simulate_update_bursts,
)
from .world import FeaturedPrefix, World, WorldBuilder, build_world

__all__ = [
    "BENCH_SIZES",
    "DEFAULT_BENCH_SIZES",
    "DEFAULT_EPOCH_INTERVAL_S",
    "DEFAULT_STREAM_START",
    "FeaturedPrefix",
    "GroundTruth",
    "MegaHolder",
    "bench_world",
    "bursts_from_replay",
    "RegionSpec",
    "Scenario",
    "TruthEntry",
    "TruthKind",
    "World",
    "WorldBuilder",
    "WorldEvolution",
    "evolve_world",
    "build_geo_databases",
    "build_route_registry",
    "build_world",
    "internet_world",
    "paper_world",
    "render_replay_log",
    "simulate_update_bursts",
    "small_world",
]
