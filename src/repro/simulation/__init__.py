"""Synthetic-Internet generator: scenarios, ground truth, and the world."""

from .geo import build_geo_databases
from .groundtruth import GroundTruth, TruthEntry, TruthKind
from .irr import build_route_registry
from .scenario import (
    BENCH_SIZES,
    MegaHolder,
    RegionSpec,
    Scenario,
    bench_world,
    paper_world,
    small_world,
)
from .world import FeaturedPrefix, World, WorldBuilder, build_world

__all__ = [
    "BENCH_SIZES",
    "FeaturedPrefix",
    "GroundTruth",
    "MegaHolder",
    "bench_world",
    "RegionSpec",
    "Scenario",
    "TruthEntry",
    "TruthKind",
    "World",
    "WorldBuilder",
    "build_geo_databases",
    "build_route_registry",
    "build_world",
    "paper_world",
    "small_world",
]
