"""Seeded multi-epoch world evolution: lease churn with ground truth.

:mod:`repro.simulation.stream` generates minutes-scale update bursts
between collector dumps; this module generates **months** — a schedule
of lease turnover over a fixed set of candidate prefixes, rendered as
the three artifacts the temporal subsystem consumes:

* one BGP update burst per epoch (withdraws when a lease ends,
  announces from the new lessee when one begins),
* one RPKI snapshot per epoch in a dedicated
  :class:`~repro.rpki.archive.RpkiArchive` — ``ROA(prefix, lessee)``
  while leased, ``ROA(prefix, AS0)`` in the between-leases gap the
  paper observes IPXO publishing (§6.5), and
* the generating schedule itself, per prefix, so tests can assert the
  inferred timelines reproduce the ground truth exactly.

Each candidate walks a two-state machine: ``LEASED(asn)`` → withdraw +
AS0 ROA → ``GAP`` → announce from a *different* ASN + its ROA →
``LEASED(asn')``.  Every lease change therefore passes through an AS0
marker, the §6.5 signature.  Everything is deterministic in
``(world, candidates, seed)``: one ``random.Random``, sorted iteration
over all mutating state.

Layering note: this module (like all of ``simulation``) may not import
``core`` — callers supply *candidates* (typically the classifiable
leaves of an ``AnalysisContext``) instead of this module deriving them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bgp.aspath import ASPath
from ..bgp.history import AnnounceUpdate, Update, WithdrawUpdate
from ..bgp.updates import SequencedUpdate, SequenceGenerator
from ..net import Prefix
from ..rpki.archive import RpkiArchive
from ..rpki.roa import AS0, ROA, RoaSet
from .stream import DEFAULT_STREAM_START
from .world import World

__all__ = [
    "DEFAULT_EPOCH_INTERVAL_S",
    "WorldEvolution",
    "evolve_world",
]

#: Seconds between lease-churn epochs: one week, the cadence at which
#: the paper's longitudinal snapshots (§6.5) observe turnover.
DEFAULT_EPOCH_INTERVAL_S = 7 * 24 * 3600

#: Per-candidate, per-epoch chance of a state transition.
_TRANSITION_P = 0.45


@dataclass(frozen=True)
class WorldEvolution:
    """One generated multi-epoch history over a world's leased space.

    ``schedule`` is the ground truth: for each candidate, the
    ``(timestamp, lessee)`` change points of its lease state —
    ``lessee`` is the holding ASN while leased and ``None`` during an
    AS0 gap.  The first entry is always at ``base_timestamp``.
    """

    base_timestamp: int
    epoch_timestamps: Tuple[int, ...]
    base_burst: Tuple[SequencedUpdate, ...]
    epoch_bursts: Tuple[Tuple[SequencedUpdate, ...], ...]
    archive: RpkiArchive
    schedule: Dict[Prefix, Tuple[Tuple[int, Optional[int]], ...]]

    @property
    def epochs(self) -> int:
        return len(self.epoch_timestamps)

    def all_updates(self) -> List[SequencedUpdate]:
        """The whole feed (base burst first), for history replay."""
        flat: List[SequencedUpdate] = list(self.base_burst)
        for burst in self.epoch_bursts:
            flat.extend(burst)
        return flat

    def lease_counts(self) -> Dict[Prefix, int]:
        """Ground-truth number of lease periods per candidate."""
        return {
            prefix: sum(1 for _, lessee in entries if lessee is not None)
            for prefix, entries in self.schedule.items()
        }

    def gap_counts(self) -> Dict[Prefix, int]:
        """Ground-truth number of AS0 gaps per candidate."""
        return {
            prefix: sum(1 for _, lessee in entries if lessee is None)
            for prefix, entries in self.schedule.items()
        }


def evolve_world(
    world: World,
    candidates: Sequence[Prefix],
    epochs: int,
    seed: int,
    base_timestamp: int = DEFAULT_STREAM_START,
    epoch_interval: int = DEFAULT_EPOCH_INTERVAL_S,
) -> WorldEvolution:
    """Generate *epochs* epochs of lease churn over *candidates*.

    Candidates are filtered to prefixes the world's routing table
    advertises from exactly one origin (the clean single-origin leases
    the state machine models); at least one must survive.  Every epoch
    transitions a seeded subset of them and always at least one, so
    each epoch carries a non-empty change set.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if epoch_interval < 1:
        raise ValueError(
            f"epoch_interval must be >= 1, got {epoch_interval}"
        )
    table = world.routing_table
    targets: List[Prefix] = sorted(
        prefix
        for prefix in set(candidates)
        if len(table.exact_origins(prefix)) == 1
    )
    if not targets:
        raise ValueError(
            "no single-origin routed candidates to evolve"
        )
    pool: List[int] = sorted(
        {origin for _, origins in table.items() for origin in origins}
    )
    if len(pool) < 2:
        raise ValueError("world has fewer than two candidate lessees")

    rng = random.Random(seed)
    sequences = SequenceGenerator()
    peer = world.collector_peers[0]
    path_cache: Dict[int, Tuple[int, ...]] = {}

    def path_for(origin: int) -> ASPath:
        chain = path_cache.get(origin)
        if chain is None:
            hops = [origin]
            current = origin
            for _hop in range(12):
                providers = world.topology.providers(current)
                if not providers:
                    break
                current = min(providers)
                hops.append(current)
            chain = tuple(reversed(hops))
            if chain[0] != peer:
                chain = (peer,) + chain
            path_cache[origin] = chain
        return ASPath(chain)

    def stamp(update: Update) -> SequencedUpdate:
        return sequences.stamp(update)

    # State: current lessee per target (None = AS0 gap) and the lessee
    # to avoid when re-leasing (no back-to-back identical leases).
    lessee: Dict[Prefix, Optional[int]] = {}
    previous_lessee: Dict[Prefix, int] = {}
    schedule: Dict[Prefix, List[Tuple[int, Optional[int]]]] = {}

    base_burst: List[SequencedUpdate] = []
    base_roas = RoaSet()
    for target in targets:
        (origin,) = table.exact_origins(target)
        lessee[target] = origin
        previous_lessee[target] = origin
        schedule[target] = [(base_timestamp, origin)]
        base_burst.append(
            stamp(
                AnnounceUpdate(
                    timestamp=base_timestamp,
                    prefix=target,
                    path=path_for(origin),
                    peer_asn=peer,
                )
            )
        )
        base_roas.add(ROA(prefix=target, asn=origin))
    archive = RpkiArchive()
    archive.add_snapshot(base_timestamp, base_roas)

    def transition(target: Prefix, timestamp: int) -> SequencedUpdate:
        holder = lessee[target]
        if holder is not None:
            # Lease ends: withdraw, and mark the space AS0.
            previous_lessee[target] = holder
            lessee[target] = None
            schedule[target].append((timestamp, None))
            return stamp(
                WithdrawUpdate(
                    timestamp=timestamp, prefix=target, peer_asn=peer
                )
            )
        # Gap ends: a fresh lessee announces.
        avoid = previous_lessee[target]
        choices = [asn for asn in pool if asn != avoid]
        fresh = choices[rng.randrange(len(choices))]
        lessee[target] = fresh
        schedule[target].append((timestamp, fresh))
        return stamp(
            AnnounceUpdate(
                timestamp=timestamp,
                prefix=target,
                path=path_for(fresh),
                peer_asn=peer,
            )
        )

    epoch_timestamps: List[int] = []
    epoch_bursts: List[Tuple[SequencedUpdate, ...]] = []
    for number in range(1, epochs + 1):
        timestamp = base_timestamp + number * epoch_interval
        burst: List[SequencedUpdate] = []
        for target in targets:
            if rng.random() < _TRANSITION_P:
                burst.append(transition(target, timestamp))
        if not burst:
            # Every epoch must carry churn: force one transition.
            forced = targets[rng.randrange(len(targets))]
            burst.append(transition(forced, timestamp))
        snapshot = RoaSet()
        for target in targets:
            holder = lessee[target]
            snapshot.add(
                ROA(
                    prefix=target,
                    asn=AS0 if holder is None else holder,
                )
            )
        archive.add_snapshot(timestamp, snapshot)
        epoch_timestamps.append(timestamp)
        epoch_bursts.append(tuple(burst))

    return WorldEvolution(
        base_timestamp=base_timestamp,
        epoch_timestamps=tuple(epoch_timestamps),
        base_burst=tuple(base_burst),
        epoch_bursts=tuple(epoch_bursts),
        archive=archive,
        schedule={
            target: tuple(entries)
            for target, entries in schedule.items()
        },
    )
