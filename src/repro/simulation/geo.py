"""Synthetic geolocation databases for a generated world.

Models the §8 observation: for ordinary (connectivity-customer and
background) space the commercial geolocation databases largely agree,
while leased space drifts — some databases still carry the holder's
country, others have picked up the lessee's, and marketplace churn
leaves a few entries pointing somewhere else entirely.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..geo.database import CONTINENT_OF, GeoDatabase
from ..net import Prefix
from .groundtruth import TruthKind
from .world import World

__all__ = ["build_geo_databases"]

_DB_NAMES = ("maxmind-like", "ip2loc-like", "dbip-like", "ipinfo-like",
             "ipreg-like")


def build_geo_databases(
    world: World, db_count: int = 5, noise: float = 0.04
) -> List[GeoDatabase]:
    """Derive *db_count* geolocation databases from the world.

    * Non-leased blocks: every database reports the holder's country,
      except an occasional *noise* entry in a single database (same
      continent, wrong country) — normal commercial-DB disagreement.
    * Leased blocks: database 0 keeps the stale holder country, database
      1 has the lessee organisation's country, and the remaining
      databases mix in marketplace drift (random countries, often on
      other continents).
    """
    rng = random.Random(world.scenario.seed ^ 0x6E0)
    countries = sorted(CONTINENT_OF)
    org_country: Dict[str, str] = {}

    def country_of(org_id: str) -> str:
        if org_id not in org_country:
            org_country[org_id] = rng.choice(countries)
        return org_country[org_id]

    def same_continent_alternative(country: str) -> str:
        continent = CONTINENT_OF[country]
        peers = [
            c
            for c in countries
            if CONTINENT_OF[c] == continent and c != country
        ]
        return rng.choice(peers) if peers else country

    databases = [
        GeoDatabase(_DB_NAMES[i % len(_DB_NAMES)] + (f"-{i}" if i >= 5 else ""))
        for i in range(db_count)
    ]

    for entry in world.ground_truth:
        holder_country = country_of(entry.holder_org_id or "unknown")
        if entry.kind in (TruthKind.LEASED_ACTIVE, TruthKind.LEASED_LEGACY):
            lessee_country = country_of(f"AS{entry.lessee_asn}")
            for index, database in enumerate(databases):
                if index == 0:
                    database.add(entry.prefix, holder_country)
                elif index == 1:
                    database.add(entry.prefix, lessee_country)
                else:
                    database.add(entry.prefix, rng.choice(countries))
        else:
            for database in databases:
                if rng.random() < noise:
                    database.add(
                        entry.prefix,
                        same_continent_alternative(holder_country),
                    )
                else:
                    database.add(entry.prefix, holder_country)

    # Background prefixes: consistent per-origin countries.
    truth_prefixes = {entry.prefix for entry in world.ground_truth}
    for prefix, origins in world.routing_table.items():
        if prefix in truth_prefixes:
            continue
        country = country_of(f"AS{min(origins)}")
        for database in databases:
            if rng.random() < noise:
                database.add(prefix, same_continent_alternative(country))
            else:
                database.add(prefix, country)
    return databases
