"""Ground-truth labelling for the synthetic world.

Every generated leaf block carries a :class:`TruthKind` describing what
it *really* is, independent of what the inference will conclude.  The
evaluation benches compare inference output against these labels; the
deliberately-injected imperfections (inactive leases, legacy leases,
subsidiary customers) are exactly the cases where truth and inference
disagree, mirroring §6.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..net import Prefix
from ..rir import RIR

__all__ = ["TruthKind", "TruthEntry", "GroundTruth"]


class TruthKind(enum.Enum):
    """What a generated block actually is."""

    UNUSED = "unused"
    AGGREGATED_CUSTOMER = "aggregated-customer"
    ISP_CUSTOMER = "isp-customer"
    DELEGATED_CUSTOMER = "delegated-customer"
    LEASED_ACTIVE = "leased-active"
    LEASED_INACTIVE = "leased-inactive"  # leased, not yet in BGP (FN mode 1)
    LEASED_LEGACY = "leased-legacy"  # leased legacy space (FN mode 2)
    SUBSIDIARY_CUSTOMER = "subsidiary-customer"  # Vodafone effect (FP mode)
    BROKER_CONNECTIVITY = "broker-connectivity"  # broker-as-ISP customer
    MULTIHOMED_CUSTOMER = "multihomed-customer"  # §6.1 group-4 caveat

    @property
    def is_leased(self) -> bool:
        """True for blocks that are genuinely leased."""
        return self in (
            TruthKind.LEASED_ACTIVE,
            TruthKind.LEASED_INACTIVE,
            TruthKind.LEASED_LEGACY,
        )


@dataclass(frozen=True)
class TruthEntry:
    """The ground truth for one generated block."""

    prefix: Prefix
    rir: RIR
    kind: TruthKind
    holder_org_id: Optional[str] = None
    facilitator_handle: Optional[str] = None
    lessee_asn: Optional[int] = None


class GroundTruth:
    """Indexed collection of truth entries."""

    def __init__(self) -> None:
        self._entries: Dict[Prefix, TruthEntry] = {}
        self._by_kind: Dict[TruthKind, List[TruthEntry]] = {
            kind: [] for kind in TruthKind
        }

    def add(self, entry: TruthEntry) -> None:
        """Record one labelled block."""
        self._entries[entry.prefix] = entry
        self._by_kind[entry.kind].append(entry)

    def lookup(self, prefix: Prefix) -> Optional[TruthEntry]:
        """The truth for *prefix*, or None."""
        return self._entries.get(prefix)

    def of_kind(self, kind: TruthKind) -> List[TruthEntry]:
        """All entries with *kind*."""
        return list(self._by_kind[kind])

    def leased_prefixes(self) -> List[Prefix]:
        """All genuinely leased prefixes (active + inactive + legacy)."""
        return [
            entry.prefix
            for entry in self._entries.values()
            if entry.kind.is_leased
        ]

    def count(self, kind: TruthKind, rir: Optional[RIR] = None) -> int:
        """Entries of *kind*, optionally restricted to one region."""
        entries = self._by_kind[kind]
        if rir is None:
            return len(entries)
        return sum(1 for entry in entries if entry.rir is rir)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TruthEntry]:
        return iter(self._entries.values())
